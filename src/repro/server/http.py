"""Stdlib HTTP front end: ``ThreadingHTTPServer`` over the app core.

One handler thread per connection (the stdlib threading mixin), one
:class:`~repro.server.app.AnalysisApp` shared by all of them — the app's
locks (session registry, per-session, cache, stats) are the entire
concurrency story; the HTTP layer holds no mutable state of its own.

``repro-serve`` (see :func:`main`) builds a server, preloads sessions
for any ``--db``/``--workload`` arguments, prints the session ids, and
serves until interrupted.  With ``--self-profile PATH`` the process
traces its own request stages (decode, session lookup, view
construction, engine kernels, render, encode) and writes them as a
regular experiment database on shutdown — open it with ``repro-view``
to see the server in its own three views.
"""

from __future__ import annotations

import argparse
import json
import math
import re
import signal
import sys
import uuid
import zlib
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs import install, save_self_profile, span, uninstall
from repro.server.app import (
    DEFAULT_MAX_BODY,
    DEFAULT_MAX_INFLIGHT,
    AnalysisApp,
)
from repro.server.schema import BinaryBody, RawBody
from repro.server.sessions import WORKLOADS

__all__ = ["AnalysisRequestHandler", "AnalysisServer", "build_server", "main"]

#: the session id a request path addresses, for pool-mode affinity checks
#: (must agree with the parent's routing regex in repro.server.pool)
_POOL_SID_RE = re.compile(r"^(?:/v1)?/sessions/([^/?]+)")
#: corpus open-by-id with its claimed sid in the query string — affinity
#: follows the sid, like the parent's _CORPUS_SID_RE
_POOL_CORPUS_SID_RE = re.compile(r"^(?:/v1)?/corpus/[^ ]*[?&]sid=([^&#]+)")


class AnalysisRequestHandler(BaseHTTPRequestHandler):
    """Translate HTTP requests to app calls; always answer JSON."""

    server_version = "repro-serve/1.0"

    #: speak HTTP/1.1 so connections are keep-alive by default — the
    #: premise of the bounded body-drain logic below (every response
    #: carries an explicit Content-Length, so 1.1 framing is satisfied)
    protocol_version = "HTTP/1.1"

    #: largest unread body remainder we will drain to keep a connection
    #: reusable; anything bigger closes the connection instead
    DRAIN_LIMIT = 64 * 1024

    # ------------------------------------------------------------------ #
    def _affinity_guard(self) -> bool:
        """Pool-mode connection discipline; True when serving may proceed.

        The pool parent routes each *connection* once, by its first
        request line, but this handler speaks HTTP/1.1 keep-alive — so a
        reused connection could carry later requests for sessions whose
        state lives in a different worker.  The discipline: a connection
        stays alive while its requests name sessions this worker owns by
        affinity (the steady state — routing stays correct with zero
        per-request cost); anything else is served once (the parent sent
        the connection here on purpose, e.g. round-robin or failover)
        and then closed; and a kept-alive connection that *switches* to
        state this worker does not own is refused with ``421 Misdirected
        Request`` + close — answering it would silently fork the
        session.  Clients reconnect (or retry) and the parent re-routes.
        """
        slot = getattr(self.server, "affinity_slot", None)
        if slot is None:
            return True  # single-process server: no routing to protect
        match = (_POOL_SID_RE.match(self.path)
                 or _POOL_CORPUS_SID_RE.match(self.path))
        owned = (
            match is not None
            and zlib.crc32(match.group(1).encode("latin-1"))
            % self.server.pool_size == slot  # type: ignore[attr-defined]
        )
        served = getattr(self, "_pool_served", 0)
        self._pool_served = served + 1
        if owned:
            return True
        self.close_connection = True
        if served == 0:
            return True
        body = json.dumps({"error": {
            "status": 421,
            "code": "misrouted",
            "message": "this connection was routed for another session; "
                       "reconnect to reach the owning worker",
            "trace_id": uuid.uuid4().hex[:16],
        }}, sort_keys=True).encode("utf-8")
        self.send_response(421)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Connection", "close")
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass
        return False

    def _dispatch(self, method: str) -> None:
        app: AnalysisApp = self.server.app  # type: ignore[attr-defined]
        if not self._affinity_guard():
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = -1
        unread = 0
        extra_headers: dict[str, str] = {}
        if length < 0:
            status, payload = 400, {
                "error": {
                    "status": 400,
                    "code": "bad-content-length",
                    "message": "Content-Length is not an integer",
                }
            }
        else:
            # read at most one byte past the limit: enough for the app to
            # reject oversized bodies with 413 without buffering them
            raw = self.rfile.read(min(length, app.max_body + 1)) if length else b""
            unread = length - len(raw)
            status, payload, extra_headers = app.handle_full(
                method, self.path, raw, request_headers=self.headers
            )
        if unread > 0:
            # keep-alive hygiene: an oversized body was only partially
            # read, and the remainder would be parsed as the next request
            # on this connection.  Drain a bounded remainder; past the
            # bound, close the connection rather than buffer at will.
            if unread <= self.DRAIN_LIMIT:
                while unread > 0:
                    chunk = self.rfile.read(min(unread, 65536))
                    if not chunk:
                        break
                    unread -= len(chunk)
            if unread > 0:
                self.close_connection = True
        if isinstance(payload, BinaryBody):
            content_type = payload.content_type
            body = payload.data
        elif isinstance(payload, RawBody):
            content_type = payload.content_type
            body = payload.text.encode("utf-8")
        else:
            content_type = "application/json"
            with span("server.encode"):
                body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in extra_headers.items():
            self.send_header(name, value)
        retry_after = None
        if isinstance(payload, dict) and isinstance(payload.get("error"), dict):
            retry_after = payload["error"].get("retry_after")
        if isinstance(retry_after, (int, float)):
            self.send_header("Retry-After", str(max(1, math.ceil(retry_after))))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # client went away
            pass

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence the default stderr access log (see ``/stats`` instead)."""


class AnalysisServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`AnalysisApp`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], app: AnalysisApp) -> None:
        super().__init__(address, AnalysisRequestHandler)
        self.app = app


# --------------------------------------------------------------------- #
def build_server(
    host: str = "127.0.0.1",
    port: int = 0,
    databases: list[str] | None = None,
    workload: str | None = None,
    nranks: int = 1,
    seed: int = 12345,
    cache_size: int = 256,
    max_body: int = DEFAULT_MAX_BODY,
    max_inflight: int | None = DEFAULT_MAX_INFLIGHT,
    request_timeout_s: float | None = None,
    session_ttl_s: float | None = None,
    max_sessions: int | None = None,
    scope_budget: int | None = None,
    slow_ms: float | None = None,
    corpus_root: str | None = None,
    corpus_compact_interval_s: float | None = None,
    diff_cache_size: int = 8,
) -> AnalysisServer:
    """An :class:`AnalysisServer` with its initial sessions registered."""
    app = AnalysisApp(
        cache_size=cache_size,
        max_body=max_body,
        max_inflight=max_inflight,
        request_timeout_s=request_timeout_s,
        session_ttl_s=session_ttl_s,
        max_sessions=max_sessions,
        scope_budget=scope_budget,
        slow_ms=slow_ms,
        corpus_root=corpus_root,
        corpus_compact_interval_s=corpus_compact_interval_s,
        diff_cache_size=diff_cache_size,
    )
    for path in databases or []:
        app.registry.open_database(path)
    if workload is not None:
        app.registry.open_workload(workload, nranks=nranks, seed=seed)
    return AnalysisServer((host, port), app)


def main(argv: list[str] | None = None) -> int:
    """``repro-serve`` — serve experiment databases over HTTP."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Concurrent JSON analysis service over experiment "
                    "databases (the hpcviewer operations as an API).",
    )
    parser.add_argument("databases", nargs="*", metavar="DB",
                        help="experiment databases (.xml / .rpdb) to open "
                             "as sessions at startup")
    parser.add_argument("--workload", choices=WORKLOADS, default=None,
                        help="also open a synthetic workload session")
    parser.add_argument("-n", "--nranks", type=int, default=1)
    parser.add_argument("--seed", type=int, default=12345)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("-p", "--port", type=int, default=8377)
    parser.add_argument("--cache-size", type=int, default=256,
                        help="LRU render-cache capacity (0 disables)")
    parser.add_argument("--max-body", type=int, default=DEFAULT_MAX_BODY,
                        help="largest accepted request body, bytes")
    parser.add_argument("--max-inflight", type=int,
                        default=DEFAULT_MAX_INFLIGHT,
                        help="concurrent requests admitted before shedding "
                             "with 429 (0 disables the limit)")
    parser.add_argument("--request-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-request deadline; expired renders abort "
                             "with 503 deadline-exceeded")
    parser.add_argument("--session-ttl", type=float, default=None,
                        metavar="SECONDS",
                        help="evict sessions idle longer than this")
    parser.add_argument("--max-sessions", type=int, default=None,
                        help="LRU cap on resident sessions")
    parser.add_argument("--scope-budget", type=int, default=None,
                        help="total CCT scopes resident sessions may hold; "
                             "LRU eviction past the budget")
    parser.add_argument("--slow-ms", type=float, default=None,
                        metavar="MS",
                        help="log requests slower than this and keep them "
                             "in the /stats slow-request ring")
    parser.add_argument("--corpus", default=None, metavar="DIR",
                        help="serve a crash-safe multi-tenant profile "
                             "corpus rooted here (created if missing); "
                             "adds the /v1/corpus endpoints")
    parser.add_argument("--corpus-compact-interval", type=float,
                        default=None, metavar="SECONDS",
                        help="sweep corpus compaction groups in the "
                             "background this often (default: only on "
                             "explicit POST /v1/corpus/<tenant>/compact)")
    parser.add_argument("--diff-cache-size", type=int, default=8,
                        help="LRU capacity of the path-mode /v1/diff "
                             "alignment cache (0 disables)")
    parser.add_argument("--self-profile", default=None, metavar="PATH",
                        help="trace the server's own request stages and "
                             "write them as an experiment database on "
                             "shutdown (open it with repro-view)")
    parser.add_argument("-w", "--workers", type=int, default=1,
                        help="pre-forked worker processes; above 1 a "
                             "supervisor passes accepted connections to "
                             "workers by session affinity and aggregates "
                             "/stats and /metrics across the pool")
    args = parser.parse_args(argv)

    if not args.databases and args.workload is None and args.corpus is None:
        parser.error("nothing to serve: pass a database, --workload, "
                     "or --corpus")
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if args.workers > 1:
        if args.self_profile:
            parser.error("--self-profile traces one process; it is not "
                         "supported with --workers > 1")
        from repro.server.pool import run_pool

        return run_pool(args)
    tracer = install() if args.self_profile else None
    server = build_server(
        host=args.host,
        port=args.port,
        databases=args.databases,
        workload=args.workload,
        nranks=args.nranks,
        seed=args.seed,
        cache_size=args.cache_size,
        max_body=args.max_body,
        max_inflight=args.max_inflight or None,
        request_timeout_s=args.request_timeout,
        session_ttl_s=args.session_ttl,
        max_sessions=args.max_sessions,
        scope_budget=args.scope_budget,
        slow_ms=args.slow_ms,
        corpus_root=args.corpus,
        corpus_compact_interval_s=args.corpus_compact_interval,
        diff_cache_size=args.diff_cache_size,
    )
    host, port = server.server_address[:2]
    for info in server.app.registry.list_info():
        print(f"session {info['id']}: {info['label']} "
              f"({info['scopes']} scopes, {info['ranks']} rank(s))")
    extras = []
    if tracer is not None:
        extras.append(f"self-profiling to {args.self_profile}")
    if args.slow_ms is not None:
        extras.append(f"slow-query log at {args.slow_ms:g}ms")
    if args.corpus is not None:
        extras.append(f"corpus at {args.corpus}")
    suffix = f" [{'; '.join(extras)}]" if extras else ""
    print(f"repro-serve listening on http://{host}:{port}/ "
          f"(Ctrl-C to stop){suffix}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.server_close()
        server.app.close()
        if tracer is not None:
            uninstall()
            try:  # a second Ctrl-C must not lose the collected profile
                signal.signal(signal.SIGINT, signal.SIG_IGN)
            except ValueError:  # pragma: no cover - non-main thread
                pass
            _experiment, size = save_self_profile(tracer, args.self_profile)
            print(f"self-profile: {tracer.span_count()} spans -> "
                  f"{args.self_profile} ({size} bytes); inspect with "
                  f"'repro-view {args.self_profile} --view all'")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

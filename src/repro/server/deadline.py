"""Per-request deadlines with a cooperative render watchdog.

The analysis service cannot preemptively kill a render thread (threads
are not cancellable in CPython), so deadlines are *cooperative*: the
application installs a :class:`Deadline` for the current request
(:func:`deadline_scope`), and long-running stages — view construction,
snapshot rendering, anything the fault harness slows down — call
:func:`checkpoint` at natural yield points.  When the budget is gone,
the checkpoint raises :class:`~repro.errors.DeadlineExceeded`
(a 503 with code ``deadline-exceeded``); the partially-built response
is discarded by the normal exception path, and because the render
cache only stores completed successes, an aborted render never taints
the cache.

The ambient deadline lives in a :mod:`contextvars` context variable,
so each handler thread of the HTTP server sees only its own request's
deadline and library code needs no plumbed-through parameter.  Clocks
are injectable for deterministic expiry tests.
"""

from __future__ import annotations

import contextvars
import time
from contextlib import contextmanager
from typing import Callable

from repro.errors import DeadlineExceeded

__all__ = ["Deadline", "deadline_scope", "checkpoint", "current_deadline"]

_current: contextvars.ContextVar["Deadline | None"] = contextvars.ContextVar(
    "repro_request_deadline", default=None
)


class Deadline:
    """A monotonic expiry time with a cooperative check."""

    __slots__ = ("budget_s", "clock", "expires_at")

    def __init__(
        self, budget_s: float, clock: Callable[[], float] = time.monotonic
    ) -> None:
        self.budget_s = float(budget_s)
        self.clock = clock
        self.expires_at = clock() + self.budget_s

    def remaining(self) -> float:
        return self.expires_at - self.clock()

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired():
            raise DeadlineExceeded(
                f"{what} exceeded its deadline of {self.budget_s:.3f}s",
                retry_after=round(max(1.0, self.budget_s), 3),
            )


def current_deadline() -> Deadline | None:
    """The ambient deadline of the request being handled, if any."""
    return _current.get()


@contextmanager
def deadline_scope(deadline: Deadline | None):
    """Install *deadline* as the ambient deadline for the duration."""
    token = _current.set(deadline)
    try:
        yield deadline
    finally:
        _current.reset(token)


def checkpoint(what: str = "render") -> None:
    """Cooperative watchdog hook: abort if the ambient deadline expired.

    A no-op when no deadline is installed, so library code can call it
    unconditionally (CLI renders and tests run without deadlines).
    """
    deadline = _current.get()
    if deadline is not None:
        deadline.check(what)

"""The transport-independent application core of the analysis service.

:class:`AnalysisApp` maps ``(method, path, raw body)`` to
``(status, JSON payload)``; the HTTP layer in :mod:`repro.server.http`
is a thin adapter over it, which is what lets the fuzz and property
suites drive the full request pipeline — decoding, routing, validation,
caching, error translation — in-process without sockets.

Request handling contract:

* every response body is a JSON object; failures carry the
  :mod:`repro.server.errors` taxonomy and *never* a traceback;
* renders and hot-path queries are served through the LRU
  :class:`~repro.server.cache.RenderCache`, keyed on
  ``(session, generation, operation, view kind, sort spec, flatten
  depth, threshold, render knobs)``;
* mutations (derived metric, flatten, unflatten) bump the session
  generation and eagerly invalidate the session's cache entries;
* per-endpoint request counters and latency aggregates are kept under a
  dedicated lock and surfaced at ``GET /stats``.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Callable
from urllib.parse import parse_qsl, urlsplit

from repro.core.errors import ReproError
from repro.core.metrics import MetricFlavor
from repro.core.views import ViewKind
from repro.server.cache import RenderCache
from repro.server.deadline import Deadline, deadline_scope
from repro.server.errors import (
    ApiError,
    BadRequest,
    MethodNotAllowed,
    NotFound,
    PayloadTooLarge,
    ServiceUnavailable,
    TooManyRequests,
    translate_domain_error,
)
from repro.server.sessions import (
    SessionHandle,
    SessionRegistry,
    SortSpec,
    hot_path_snapshot,
    render_snapshot,
)

__all__ = [
    "AnalysisApp",
    "DEFAULT_MAX_BODY",
    "DEFAULT_MAX_INFLIGHT",
    "decode_json_body",
]

#: request bodies above this are rejected with 413 (overridable per app)
DEFAULT_MAX_BODY = 1 << 20

#: concurrent in-flight requests admitted before shedding with 429
DEFAULT_MAX_INFLIGHT = 64

#: endpoints that bypass admission control — monitoring must keep
#: working while the server sheds analysis load
_ADMISSION_EXEMPT = frozenset({("healthz",), ("stats",)})

_MISSING = object()

_VIEW_KINDS = {
    "cct": ViewKind.CALLING_CONTEXT,
    "calling-context": ViewKind.CALLING_CONTEXT,
    "callers": ViewKind.CALLERS,
    "flat": ViewKind.FLAT,
}

_FLAVORS = {
    "inclusive": MetricFlavor.INCLUSIVE,
    "exclusive": MetricFlavor.EXCLUSIVE,
    "i": MetricFlavor.INCLUSIVE,
    "e": MetricFlavor.EXCLUSIVE,
}


# --------------------------------------------------------------------- #
# request decoding
# --------------------------------------------------------------------- #
def decode_json_body(raw: bytes, max_body: int = DEFAULT_MAX_BODY) -> dict:
    """Decode a request body into a dict, or raise from the taxonomy.

    Empty bodies mean "no arguments"; anything else must be a UTF-8
    JSON *object* no larger than *max_body* bytes.
    """
    if len(raw) > max_body:
        raise PayloadTooLarge(
            f"request body of {len(raw)} bytes exceeds limit of {max_body}"
        )
    if not raw:
        return {}
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise BadRequest(
            f"request body is not valid UTF-8: {exc.reason}",
            code="malformed-encoding",
        ) from None
    try:
        body = json.loads(text)
    except json.JSONDecodeError as exc:
        raise BadRequest(
            f"request body is not valid JSON: {exc.msg} at offset {exc.pos}",
            code="malformed-json",
        ) from None
    if not isinstance(body, dict):
        raise BadRequest(
            f"request body must be a JSON object, got {type(body).__name__}",
            code="bad-request-shape",
        )
    return body


def _field(
    body: dict,
    name: str,
    kind: type,
    default=_MISSING,
    lo: float | None = None,
    hi: float | None = None,
):
    """Fetch and validate one request field.

    ``bool`` is rejected where a number is expected (it *is* an ``int``
    in Python, but ``{"depth": true}`` is a client bug, not depth 1).
    """
    value = body.get(name, _MISSING)
    if value is _MISSING or value is None:
        if default is _MISSING:
            raise BadRequest(
                f"missing required field {name!r}", code="missing-field"
            )
        return default
    ok = isinstance(value, kind)
    if kind is not bool and isinstance(value, bool):
        ok = False
    if kind is float and isinstance(value, int) and not isinstance(value, bool):
        ok, value = True, float(value)
    if not ok:
        raise BadRequest(
            f"field {name!r} must be {kind.__name__}, "
            f"got {type(value).__name__}",
            code="bad-field-type",
        )
    if kind in (int, float) and (
        (lo is not None and value < lo) or (hi is not None and value > hi)
    ):
        raise BadRequest(
            f"field {name!r} must be in [{lo}, {hi}], got {value!r}",
            code="bad-field-value",
        )
    return value


def _view_kind(body: dict, default: str = "cct") -> ViewKind:
    name = _field(body, "view", str, default=default)
    try:
        return _VIEW_KINDS[name.lower()]
    except KeyError:
        raise BadRequest(
            f"unknown view {name!r} (have: cct, callers, flat)",
            code="bad-view-kind",
        ) from None


def _flavor(body: dict, default: MetricFlavor) -> MetricFlavor:
    name = _field(body, "flavor", str, default=None)
    if name is None:
        return default
    try:
        return _FLAVORS[name.lower()]
    except KeyError:
        raise BadRequest(
            f"unknown metric flavor {name!r} (have: inclusive, exclusive)",
            code="bad-flavor",
        ) from None


def _query_dict(query: str) -> dict:
    """Decode a URL query string into body-equivalent typed fields.

    Values parse as JSON scalars when possible (``depth=4`` → int 4,
    ``hot_path=true`` → bool), else stay strings (``metric=cycles``).
    """
    out: dict = {}
    for key, value in parse_qsl(query, keep_blank_values=True):
        try:
            out[key] = json.loads(value)
        except json.JSONDecodeError:
            out[key] = value
    return out


# --------------------------------------------------------------------- #
# the application
# --------------------------------------------------------------------- #
class AnalysisApp:
    """Routing table, session registry, cache, and stats for one service."""

    def __init__(
        self,
        cache_size: int = 256,
        max_body: int = DEFAULT_MAX_BODY,
        max_inflight: int | None = DEFAULT_MAX_INFLIGHT,
        request_timeout_s: float | None = None,
        session_ttl_s: float | None = None,
        max_sessions: int | None = None,
        scope_budget: int | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.registry = SessionRegistry(
            max_sessions=max_sessions,
            ttl_s=session_ttl_s,
            scope_budget=scope_budget,
            clock=clock,
            on_evict=self._on_evict,
        )
        self.cache = RenderCache(cache_size)
        self.max_body = max_body
        self.max_inflight = max_inflight
        self.request_timeout_s = request_timeout_s
        self.clock = clock
        self._stats_lock = threading.Lock()
        self._stats: dict[str, dict] = {}
        self._inflight_lock = threading.Lock()
        self._inflight = 0
        self._shed = 0
        self._started = time.time()

    def _on_evict(self, handle: SessionHandle) -> None:
        """Evicted sessions leave no cache residue (same path as close)."""
        self.cache.invalidate_session(handle.sid)

    # ------------------------------------------------------------------ #
    # admission control
    # ------------------------------------------------------------------ #
    def _try_admit(self) -> bool:
        with self._inflight_lock:
            if (
                self.max_inflight is not None
                and self._inflight >= self.max_inflight
            ):
                self._shed += 1
                return False
            self._inflight += 1
            return True

    def _release(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1

    def inflight(self) -> int:
        with self._inflight_lock:
            return self._inflight

    # ------------------------------------------------------------------ #
    # entry point
    # ------------------------------------------------------------------ #
    def handle(self, method: str, path: str, raw: bytes = b"") -> tuple[int, dict]:
        """Process one request; always returns ``(status, payload)``."""
        t0 = time.perf_counter()
        label = "unmatched"
        parts = urlsplit(path)
        exempt = tuple(s for s in parts.path.split("/") if s) in _ADMISSION_EXEMPT
        admitted = False
        try:
            if not exempt:
                admitted = self._try_admit()
                if not admitted:
                    raise TooManyRequests(
                        f"server is at its in-flight limit of "
                        f"{self.max_inflight}; retry with backoff",
                        retry_after=1.0,
                    )
            handler, params, label = self._match(method, parts.path)
            body = decode_json_body(raw, self.max_body)
            if parts.query:
                merged = _query_dict(parts.query)
                merged.update(body)
                body = merged
            deadline = (
                Deadline(self.request_timeout_s, clock=self.clock)
                if self.request_timeout_s is not None and not exempt
                else None
            )
            with deadline_scope(deadline):
                status, payload = handler(params, body)
        except ApiError as exc:
            status, payload = exc.status, exc.to_payload()
        except ReproError as exc:
            api = translate_domain_error(exc)
            status, payload = api.status, api.to_payload()
        except Exception as exc:  # pragma: no cover - last-resort guard
            status = 500
            payload = {
                "error": {
                    "status": 500,
                    "code": "internal",
                    "message": f"internal error ({type(exc).__name__})",
                }
            }
        finally:
            if admitted:
                self._release()
        self._record(label, status, (time.perf_counter() - t0) * 1000.0)
        return status, payload

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def _match(
        self, method: str, path: str
    ) -> tuple[Callable[[dict, dict], tuple[int, dict]], dict, str]:
        segments = tuple(s for s in path.split("/") if s)
        candidates: dict[str, Callable] = {}
        params: dict = {}
        if segments == ():
            candidates = {"GET": self._ep_help}
            label = "/"
        elif segments == ("healthz",):
            candidates = {"GET": self._ep_healthz}
            label = "/healthz"
        elif segments == ("stats",):
            candidates = {"GET": self._ep_stats}
            label = "/stats"
        elif segments == ("sessions",):
            candidates = {"GET": self._ep_sessions_list,
                          "POST": self._ep_sessions_open}
            label = "/sessions"
        elif len(segments) >= 2 and segments[0] == "sessions":
            params = {"sid": segments[1]}
            tail = segments[2:]
            if tail == ():
                candidates = {"GET": self._ep_session_info,
                              "DELETE": self._ep_session_close}
                label = "/sessions/<sid>"
            elif tail == ("metrics",):
                candidates = {"GET": self._ep_metrics_list,
                              "POST": self._ep_metrics_derive}
                label = "/sessions/<sid>/metrics"
            elif tail == ("sort",):
                candidates = {"POST": self._ep_sort}
                label = "/sessions/<sid>/sort"
            elif tail == ("hotpath",):
                candidates = {"GET": self._ep_hotpath,
                              "POST": self._ep_hotpath}
                label = "/sessions/<sid>/hotpath"
            elif tail == ("flatten",):
                candidates = {"POST": self._ep_flatten}
                label = "/sessions/<sid>/flatten"
            elif tail == ("unflatten",):
                candidates = {"POST": self._ep_unflatten}
                label = "/sessions/<sid>/unflatten"
            elif tail == ("render",):
                candidates = {"GET": self._ep_render,
                              "POST": self._ep_render}
                label = "/sessions/<sid>/render"
            else:
                raise NotFound(
                    f"unknown endpoint {path!r}", code="unknown-endpoint"
                )
        else:
            raise NotFound(f"unknown endpoint {path!r}", code="unknown-endpoint")
        handler = candidates.get(method.upper())
        if handler is None:
            raise MethodNotAllowed(
                f"{method} not allowed on {label} "
                f"(allowed: {', '.join(sorted(candidates))})"
            )
        return handler, params, label

    # ------------------------------------------------------------------ #
    # stats
    # ------------------------------------------------------------------ #
    def _record(self, label: str, status: int, elapsed_ms: float) -> None:
        with self._stats_lock:
            entry = self._stats.setdefault(
                label,
                {"count": 0, "errors": 0,
                 "total_ms": 0.0, "min_ms": None, "max_ms": 0.0},
            )
            entry["count"] += 1
            if status >= 400:
                entry["errors"] += 1
            entry["total_ms"] += elapsed_ms
            entry["max_ms"] = max(entry["max_ms"], elapsed_ms)
            if entry["min_ms"] is None or elapsed_ms < entry["min_ms"]:
                entry["min_ms"] = elapsed_ms

    def stats_payload(self) -> dict:
        with self._stats_lock:
            endpoints = {}
            total = errors = 0
            for label, entry in sorted(self._stats.items()):
                count = entry["count"]
                total += count
                errors += entry["errors"]
                endpoints[label] = {
                    "count": count,
                    "errors": entry["errors"],
                    "latency_ms": {
                        "mean": entry["total_ms"] / count,
                        "min": entry["min_ms"] or 0.0,
                        "max": entry["max_ms"],
                    },
                }
        return {
            "uptime_s": time.time() - self._started,
            "requests": {"total": total, "errors": errors,
                         "shed": self._shed, "inflight": self.inflight()},
            "endpoints": endpoints,
            "cache": self.cache.stats(),
            "sessions": len(self.registry),
            "resident_scopes": self.registry.total_cost(),
            "evictions": self.registry.evictions,
        }

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #
    def _ep_help(self, params: dict, body: dict) -> tuple[int, dict]:
        return 200, {
            "service": "repro-serve",
            "doc": "docs/server.md",
            "endpoints": [
                "GET  /                         this listing",
                "GET  /healthz                  liveness + readiness probe",
                "GET  /stats                    request counters, latency, cache",
                "GET  /sessions                 list open sessions",
                "POST /sessions                 open {database | workload}",
                "GET  /sessions/<sid>           session info",
                "DELETE /sessions/<sid>         close a session",
                "GET  /sessions/<sid>/metrics   metric table",
                "POST /sessions/<sid>/metrics   define derived {name, formula}",
                "POST /sessions/<sid>/sort      {metric, flavor?, descending?}",
                "GET/POST /sessions/<sid>/hotpath  {view?, metric?, threshold?}",
                "POST /sessions/<sid>/flatten   flatten the Flat View",
                "POST /sessions/<sid>/unflatten undo one flatten",
                "GET/POST /sessions/<sid>/render  {view?, metric?, depth?, ...}",
            ],
        }

    def _ep_healthz(self, params: dict, body: dict) -> tuple[int, dict]:
        """Liveness (we answered) + readiness (we would admit a request).

        Exempt from admission control, so probes see 503 *with a reason*
        while analysis traffic is being shed, instead of being shed
        themselves — which is what lets a balancer distinguish
        "overloaded" from "dead".
        """
        inflight = self.inflight()
        ready = self.max_inflight is None or inflight < self.max_inflight
        if not ready:
            raise ServiceUnavailable(
                f"not ready: {inflight} requests in flight "
                f"(limit {self.max_inflight})",
                code="overloaded",
                retry_after=1.0,
            )
        return 200, {
            "status": "ok",
            "live": True,
            "ready": True,
            "inflight": inflight,
            "sessions": len(self.registry),
            "uptime_s": time.time() - self._started,
        }

    def _ep_stats(self, params: dict, body: dict) -> tuple[int, dict]:
        return 200, self.stats_payload()

    def _ep_sessions_list(self, params: dict, body: dict) -> tuple[int, dict]:
        return 200, {"sessions": self.registry.list_info()}

    def _ep_sessions_open(self, params: dict, body: dict) -> tuple[int, dict]:
        db = _field(body, "database", str, default=None)
        workload = _field(body, "workload", str, default=None)
        if (db is None) == (workload is None):
            raise BadRequest(
                "open a session with exactly one of 'database' or 'workload'",
                code="bad-session-source",
            )
        if db is not None:
            salvage = _field(body, "salvage", bool, default=False)
            handle = self.registry.open_database(db, strict=not salvage)
        else:
            handle = self.registry.open_workload(
                workload,
                nranks=_field(body, "nranks", int, default=1, lo=1, hi=256),
                seed=_field(body, "seed", int, default=12345),
            )
        payload = {"session": handle.info()}
        report = getattr(handle.session.experiment, "load_report", None)
        if report is not None:
            payload["load_report"] = report.to_payload()
        return 201, payload

    def _ep_session_info(self, params: dict, body: dict) -> tuple[int, dict]:
        return 200, {"session": self.registry.get(params["sid"]).info()}

    def _ep_session_close(self, params: dict, body: dict) -> tuple[int, dict]:
        handle = self.registry.close(params["sid"])
        self.cache.invalidate_session(handle.sid)
        return 200, {"closed": handle.sid}

    def _ep_metrics_list(self, params: dict, body: dict) -> tuple[int, dict]:
        handle = self.registry.get(params["sid"])
        with handle.lock:
            metrics = [
                {
                    "id": d.mid,
                    "name": d.name,
                    "kind": d.kind.value,
                    "unit": d.unit,
                    "formula": d.formula,
                }
                for d in handle.session.experiment.metrics
            ]
        return 200, {"metrics": metrics}

    def _ep_metrics_derive(self, params: dict, body: dict) -> tuple[int, dict]:
        handle = self.registry.get(params["sid"])
        name = _field(body, "name", str)
        formula = _field(body, "formula", str)
        unit = _field(body, "unit", str, default="")
        with handle.lock:
            desc = handle.session.experiment.add_derived_metric(
                name, formula, unit=unit
            )
            generation = handle.bump()
        self.cache.invalidate_session(handle.sid)
        return 201, {
            "metric": {"id": desc.mid, "name": desc.name,
                       "formula": desc.formula, "unit": desc.unit},
            "generation": generation,
        }

    def _ep_sort(self, params: dict, body: dict) -> tuple[int, dict]:
        handle = self.registry.get(params["sid"])
        metric = _field(body, "metric", str)
        flavor = _flavor(body, MetricFlavor.INCLUSIVE)
        descending = _field(body, "descending", bool, default=True)
        with handle.lock:
            # resolve before storing, so unknown metric names 404 here
            handle.session.experiment.metrics.by_name(metric)
            handle.sort = SortSpec(metric, flavor, descending)
            return 200, {"sort": handle.sort.to_payload()}

    def _ep_hotpath(self, params: dict, body: dict) -> tuple[int, dict]:
        handle = self.registry.get(params["sid"])
        kind = _view_kind(body)
        metric = _field(body, "metric", str, default=None)
        threshold = _field(body, "threshold", float, default=None)
        with handle.lock:
            if metric is None and handle.sort is not None:
                metric = handle.sort.metric
            key = (handle.sid, handle.generation, "hotpath",
                   kind.value, metric, threshold)
            cached = self.cache.get(key)
            if cached is None:
                cached = hot_path_snapshot(
                    handle.session, kind, metric=metric, threshold=threshold
                )
                self.cache.put(key, cached)
        return 200, dict(cached)

    def _ep_flatten(self, params: dict, body: dict) -> tuple[int, dict]:
        return self._flatten_op(params["sid"], "flatten")

    def _ep_unflatten(self, params: dict, body: dict) -> tuple[int, dict]:
        return self._flatten_op(params["sid"], "unflatten")

    def _flatten_op(self, sid: str, op: str) -> tuple[int, dict]:
        handle = self.registry.get(sid)
        with handle.lock:
            getattr(handle.session, op)()
            depth = handle.flatten_depth
            generation = handle.bump()
        self.cache.invalidate_session(handle.sid)
        return 200, {"flatten_depth": depth, "generation": generation}

    def _ep_render(self, params: dict, body: dict) -> tuple[int, dict]:
        handle = self.registry.get(params["sid"])
        kind = _view_kind(body)
        metric = _field(body, "metric", str, default=None)
        descending = _field(body, "descending", bool, default=None)
        depth = _field(body, "depth", int, default=3, lo=0, hi=1000)
        hot = _field(body, "hot_path", bool, default=False)
        threshold = _field(body, "threshold", float, default=None)
        max_rows = _field(body, "max_rows", int, default=60, lo=1, hi=100_000)
        with handle.lock:
            # resolve the effective sort column: explicit request fields
            # override the session's sort state, which overrides defaults
            sort = handle.sort
            flavor = _flavor(
                body, sort.flavor if sort and metric is None
                else MetricFlavor.INCLUSIVE
            )
            if metric is None and sort is not None:
                metric = sort.metric
            if descending is None:
                descending = sort.descending if sort is not None else True
            key = (
                handle.sid, handle.generation, "render", kind.value,
                metric, flavor.value, descending, depth, hot, threshold,
                max_rows, handle.flatten_depth,
            )
            cached = self.cache.get(key)
            if cached is None:
                cached = render_snapshot(
                    handle.session,
                    kind,
                    metric=metric,
                    flavor=flavor,
                    descending=descending,
                    depth=depth,
                    hot_path=hot,
                    threshold=threshold,
                    max_rows=max_rows,
                )
                self.cache.put(key, cached)
        payload = dict(cached)
        payload["session"] = handle.sid
        return 200, payload

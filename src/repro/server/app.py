"""The transport-independent application core of the analysis service.

:class:`AnalysisApp` maps ``(method, path, raw body)`` to
``(status, payload, headers)``; the HTTP layer in
:mod:`repro.server.http` is a thin adapter over it, which is what lets
the fuzz and property suites drive the full request pipeline —
decoding, routing, validation, caching, error translation —
in-process without sockets.

Request handling contract:

* the public surface is versioned: every endpoint's canonical mount
  point is ``/v1/...``; the bare (historical) path is a deprecated
  alias that serves the byte-identical body plus a ``Deprecation``
  header and a one-time server log warning;
* the routing table, request schemas, and response shapes live in
  :mod:`repro.server.schema` (:data:`~repro.server.schema.ENDPOINTS`),
  the same registry the generated ``docs/api.md`` and the public-API
  snapshot test are built from;
* every request gets a trace id, surfaced in the ``X-Trace-Id``
  response header, in every structured error payload, and in slow-log
  lines; while handling runs it is the ambient
  :func:`repro.obs.current_trace_id`;
* every response body is a JSON object — except ``GET /metrics``,
  which serves Prometheus text (a :class:`~repro.server.schema.RawBody`
  at this layer); failures carry the :mod:`repro.errors` taxonomy and
  *never* a traceback;
* renders and hot-path queries are served through the LRU
  :class:`~repro.server.cache.RenderCache`, keyed on
  ``(session, generation, operation, view kind, sort spec, flatten
  depth, threshold, render knobs)``;
* mutations (derived metric, flatten, unflatten) bump the session
  generation and eagerly invalidate the session's cache entries;
* per-endpoint request counters, latency aggregates, and latency
  histograms are kept under a dedicated lock and surfaced at
  ``GET /stats`` (JSON) and ``GET /metrics`` (Prometheus);
* request stages run under :func:`repro.obs.span` hooks
  (``server.request <label>``, ``server.decode``, …) — no-ops unless a
  tracer is installed (``repro-serve --self-profile``).
"""

from __future__ import annotations

import base64
import binascii
import json
import logging
import os
import threading
import time
import uuid
from collections import OrderedDict
from typing import Callable
from urllib.parse import parse_qsl, urlsplit

from repro.errors import ReproError
from repro.core.metrics import MetricFlavor
from repro.core.views import ViewKind
from repro.obs.promexport import Histogram, render_metrics
from repro.obs.slowlog import SlowLog
from repro.obs.spans import reset_trace_id, set_trace_id, span
from repro.server.cache import RenderCache
from repro.server.deadline import Deadline, deadline_scope
from repro.errors import (
    ApiError,
    BadRequest,
    MethodNotAllowed,
    NotFound,
    PayloadTooLarge,
    ServiceUnavailable,
    TooManyRequests,
    translate_domain_error,
)
from repro.server.schema import (
    API_VERSION,
    ENDPOINTS,
    BinaryBody,
    CompactionReport,
    CorpusCompactRequest,
    CorpusInfo,
    CorpusOpenRequest,
    CorpusOpened,
    CorpusPolicyRequest,
    CorpusSearchRequest,
    CorpusUploadRequest,
    DeriveMetricRequest,
    DerivedMetricCreated,
    DiffRequest,
    EndpointDef,
    EnsembleRequest,
    HotPathRequest,
    HotPathResult,
    MetricList,
    MutationResponse,
    OpenSessionRequest,
    PolicyResponse,
    ProfileDeleted,
    ProfileInfo,
    ProfileIngested,
    ProfileList,
    QueryRequest,
    RawBody,
    RenderRequest,
    RenderResponse,
    SessionClosed,
    SessionInfoResponse,
    SessionList,
    SessionOpened,
    SortRequest,
    SortResponse,
    TableRequest,
    TraceRequest,
)
from repro.server.sessions import (
    SessionHandle,
    SessionRegistry,
    SortSpec,
    hot_path_snapshot,
    render_snapshot,
    table_snapshot,
)
from repro.server.wire import (
    COLUMNAR_CONTENT_TYPE,
    accepts_columnar,
    encode_columnar,
)

__all__ = [
    "AnalysisApp",
    "DEFAULT_MAX_BODY",
    "DEFAULT_MAX_INFLIGHT",
    "decode_json_body",
    "prometheus_from_states",
]

logger = logging.getLogger("repro.server")

#: request bodies above this are rejected with 413 (overridable per app)
DEFAULT_MAX_BODY = 1 << 20

#: concurrent in-flight requests admitted before shedding with 429
DEFAULT_MAX_INFLIGHT = 64

#: endpoints that bypass admission control — monitoring must keep
#: working while the server sheds analysis load
_ADMISSION_EXEMPT = frozenset(
    ep.segments for ep in ENDPOINTS if ep.admission_exempt
)

#: static routes (no path parameters) and parameterised ones, split once;
#: sessions keep their dedicated fast path (the hot routes), every other
#: parameterised template (the corpus tree) goes through the generic
#: segment matcher
_STATIC_ROUTES: dict[tuple[str, ...], EndpointDef] = {
    ep.segments: ep for ep in ENDPOINTS
    if not any(seg.startswith("<") for seg in ep.segments)
}
_SESSION_ROUTES: dict[tuple[str, ...], EndpointDef] = {
    ep.segments[2:]: ep for ep in ENDPOINTS if "<sid>" in ep.segments
}
_PARAM_ROUTES: tuple[EndpointDef, ...] = tuple(
    ep for ep in ENDPOINTS
    if any(seg.startswith("<") for seg in ep.segments)
    and "<sid>" not in ep.segments
)

#: request-span names, precomputed per endpoint label (hot path)
_REQUEST_SPAN_NAMES = {ep.path: f"server.request {ep.path}" for ep in ENDPOINTS}

_VIEW_KINDS = {
    "cct": ViewKind.CALLING_CONTEXT,
    "calling-context": ViewKind.CALLING_CONTEXT,
    "callers": ViewKind.CALLERS,
    "flat": ViewKind.FLAT,
}

_FLAVORS = {
    "inclusive": MetricFlavor.INCLUSIVE,
    "exclusive": MetricFlavor.EXCLUSIVE,
    "i": MetricFlavor.INCLUSIVE,
    "e": MetricFlavor.EXCLUSIVE,
}


# --------------------------------------------------------------------- #
# request decoding
# --------------------------------------------------------------------- #
def decode_json_body(raw: bytes, max_body: int = DEFAULT_MAX_BODY) -> dict:
    """Decode a request body into a dict, or raise from the taxonomy.

    Empty bodies mean "no arguments"; anything else must be a UTF-8
    JSON *object* no larger than *max_body* bytes.
    """
    if len(raw) > max_body:
        raise PayloadTooLarge(
            f"request body of {len(raw)} bytes exceeds limit of {max_body}"
        )
    if not raw:
        return {}
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise BadRequest(
            f"request body is not valid UTF-8: {exc.reason}",
            code="malformed-encoding",
        ) from None
    try:
        body = json.loads(text)
    except json.JSONDecodeError as exc:
        raise BadRequest(
            f"request body is not valid JSON: {exc.msg} at offset {exc.pos}",
            code="malformed-json",
        ) from None
    if not isinstance(body, dict):
        raise BadRequest(
            f"request body must be a JSON object, got {type(body).__name__}",
            code="bad-request-shape",
        )
    return body


def _view_kind(name: str) -> ViewKind:
    try:
        return _VIEW_KINDS[name.lower()]
    except KeyError:
        raise BadRequest(
            f"unknown view {name!r} (have: cct, callers, flat)",
            code="bad-view-kind",
        ) from None


def _flavor(name: str | None, default: MetricFlavor) -> MetricFlavor:
    if name is None:
        return default
    try:
        return _FLAVORS[name.lower()]
    except KeyError:
        raise BadRequest(
            f"unknown metric flavor {name!r} (have: inclusive, exclusive)",
            code="bad-flavor",
        ) from None


def _query_dict(query: str) -> dict:
    """Decode a URL query string into body-equivalent typed fields.

    Values parse as JSON scalars when possible (``depth=4`` → int 4,
    ``hot_path=true`` → bool), else stay strings (``metric=cycles``).
    """
    out: dict = {}
    for key, value in parse_qsl(query, keep_blank_values=True):
        try:
            out[key] = json.loads(value)
        except json.JSONDecodeError:
            out[key] = value
    return out


def _header(headers, name: str) -> str | None:
    """Case-insensitive header lookup over a dict or a Message-alike."""
    if headers is None:
        return None
    get = getattr(headers, "get", None)
    if get is None:
        return None
    value = get(name)
    if value is None and isinstance(headers, dict):
        lowered = name.lower()
        for key, val in headers.items():
            if isinstance(key, str) and key.lower() == lowered:
                return val
    return value


def _split_version(path: str) -> tuple[str | None, str]:
    """Split the version prefix off a request path.

    ``/v1/stats`` → ``("v1", "/stats")``; the bare ``/stats`` →
    ``(None, "/stats")`` — a deprecated alias of the versioned path.
    """
    prefix = "/" + API_VERSION
    if path == prefix or path == prefix + "/":
        return API_VERSION, "/"
    if path.startswith(prefix + "/"):
        return API_VERSION, path[len(prefix):]
    return None, path


# --------------------------------------------------------------------- #
# alignment cache (path-mode /diff requests)
# --------------------------------------------------------------------- #
class _AlignCache:
    """Bounded LRU of :class:`~repro.core.ensemble.Ensemble` alignments.

    Path-mode ``/diff`` requests re-align the same member set on every
    call even though alignment dominates the request; this cache keys
    the finished ensemble on the member paths *and their stat
    fingerprints* (mtime_ns, size — for stores, the manifest's), so a
    rewritten or deleted member can never be served stale.  Entries are
    populated only after a fully successful alignment — a failing
    member never taints the cache — and corpus deletions invalidate by
    path eagerly.
    """

    def __init__(self, capacity: int = 8) -> None:
        self.capacity = max(0, int(capacity))
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    @staticmethod
    def fingerprint(paths, strict: bool) -> tuple:
        """Stat-based identity of a member set (raises ``OSError``)."""
        parts = [bool(strict)]
        for path in paths:
            full = os.path.abspath(os.fspath(path))
            st = os.stat(full)
            if os.path.isdir(full):
                # a store dir's payload files can change without the
                # directory mtime moving; the manifest is rewritten on
                # every mutation, so stat it too
                manifest = os.path.join(full, "manifest.json")
                mst = os.stat(manifest)
                parts.append((full, st.st_mtime_ns,
                              mst.st_mtime_ns, mst.st_size))
            else:
                parts.append((full, st.st_mtime_ns, st.st_size))
        return tuple(parts)

    def get(self, key: tuple):
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: tuple, value) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def invalidate_path(self, path: str) -> int:
        """Drop every cached alignment that involves *path*."""
        full = os.path.abspath(os.fspath(path))
        with self._lock:
            doomed = [
                key for key in self._entries
                if any(
                    isinstance(part, tuple) and part[0] == full
                    for part in key
                )
            ]
            for key in doomed:
                del self._entries[key]
            self.invalidations += len(doomed)
            return len(doomed)

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
            }


# --------------------------------------------------------------------- #
# the application
# --------------------------------------------------------------------- #
class AnalysisApp:
    """Routing table, session registry, cache, and stats for one service."""

    def __init__(
        self,
        cache_size: int = 256,
        max_body: int = DEFAULT_MAX_BODY,
        max_inflight: int | None = DEFAULT_MAX_INFLIGHT,
        request_timeout_s: float | None = None,
        session_ttl_s: float | None = None,
        max_sessions: int | None = None,
        scope_budget: int | None = None,
        slow_ms: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        corpus_root: str | os.PathLike | None = None,
        corpus=None,
        corpus_compact_interval_s: float | None = None,
        diff_cache_size: int = 8,
    ) -> None:
        self.registry = SessionRegistry(
            max_sessions=max_sessions,
            ttl_s=session_ttl_s,
            scope_budget=scope_budget,
            clock=clock,
            on_evict=self._on_evict,
            on_adopt=self._on_adopt,
        )
        self.cache = RenderCache(cache_size)
        self.max_body = max_body
        self.max_inflight = max_inflight
        self.request_timeout_s = request_timeout_s
        self.clock = clock
        self.slowlog = SlowLog(slow_ms) if slow_ms is not None else None
        self._stats_lock = threading.Lock()
        self._stats: dict[str, dict] = {}
        self._warned_aliases: set[str] = set()
        self._inflight_lock = threading.Lock()
        self._inflight = 0
        self._shed = 0
        self._started = time.time()
        self.align_cache = _AlignCache(diff_cache_size)
        self.corpus = corpus
        self._compactor = None
        if corpus is None and corpus_root is not None:
            from repro.corpus import CorpusCatalog

            self.corpus = CorpusCatalog(corpus_root, create=True)
        if self.corpus is not None and corpus_compact_interval_s:
            from repro.corpus import CompactionWorker

            self._compactor = CompactionWorker(
                self.corpus, interval_s=corpus_compact_interval_s
            )
            self._compactor.start()

    def close(self) -> None:
        """Stop background workers and release the corpus journal lock.

        Idempotent; transports call this on shutdown.  Sessions are
        owned by the registry's own TTL/eviction machinery and are not
        force-closed here.
        """
        if self._compactor is not None:
            self._compactor.stop()
            self._compactor = None
        if self.corpus is not None:
            self.corpus.close()

    def _on_evict(self, handle: SessionHandle) -> None:
        """Evicted sessions leave no cache residue (same path as close)."""
        self.cache.invalidate_session(handle.sid)
        self._unpin_profile(handle)

    def _on_adopt(self, handle: SessionHandle, spec: dict) -> None:
        """Re-establish corpus state after adopting a sibling's session.

        The pin file on disk still names the worker that opened the
        profile; if that worker crashed, the pin is stale and the next
        eviction scan would reap it.  Refreshing rewrites the pin to
        this process, so a quota'd tenant cannot evict a profile out
        from under a live adopted session.
        """
        provenance = spec.get("corpus")
        if provenance is None or self.corpus is None:
            return
        tenant, pid = provenance.get("tenant"), provenance.get("id")
        if not tenant or not pid:
            return
        try:
            self.corpus.pin(tenant, pid, handle.sid, refresh=True)
        except ReproError:  # profile already evicted: nothing to protect
            return
        handle.corpus_pin = (tenant, pid, handle.sid)

    def _unpin_profile(self, handle) -> None:
        """Release the corpus pin of a session opened by profile id."""
        if handle is None or self.corpus is None:
            return
        pin = getattr(handle, "corpus_pin", None)
        if pin is not None:
            handle.corpus_pin = None
            try:
                self.corpus.unpin(*pin)
            except ReproError:  # already evicted/unpinned elsewhere
                pass
            return
        # a pool worker closing a session it *adopted* never saw the
        # open-by-id request, so there is no in-memory pin record — but
        # the pin file names its owner sid, so release by owner
        try:
            self.corpus.release_pins(handle.sid)
        except (ReproError, OSError):
            pass

    # ------------------------------------------------------------------ #
    # admission control
    # ------------------------------------------------------------------ #
    def _try_admit(self) -> bool:
        with self._inflight_lock:
            if (
                self.max_inflight is not None
                and self._inflight >= self.max_inflight
            ):
                self._shed += 1
                return False
            self._inflight += 1
            return True

    def _release(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1

    def inflight(self) -> int:
        with self._inflight_lock:
            return self._inflight

    # ------------------------------------------------------------------ #
    # entry points
    # ------------------------------------------------------------------ #
    def handle(
        self, method: str, path: str, raw: bytes = b"",
        request_headers=None,
    ) -> tuple[int, dict]:
        """Process one request; always returns ``(status, payload)``.

        The historical in-process surface: response headers are dropped
        and a raw/binary body (the Prometheus text, a columnar frame) is
        wrapped in a JSON object.  Transports that speak headers use
        :meth:`handle_full`.
        """
        status, payload, _headers = self.handle_full(
            method, path, raw, request_headers=request_headers
        )
        if isinstance(payload, (RawBody, BinaryBody)):
            payload = payload.to_payload()
        return status, payload

    def handle_full(
        self, method: str, path: str, raw: bytes = b"",
        request_headers=None,
    ) -> tuple[int, dict | RawBody | BinaryBody, dict[str, str]]:
        """Process one request: ``(status, payload, response headers)``.

        The payload is a JSON-ready dict, a :class:`RawBody` for the
        non-JSON ``/metrics`` endpoint, or a :class:`BinaryBody` when
        the request negotiated the columnar table encoding.  Headers
        always carry ``X-Trace-Id``; requests on deprecated unversioned
        aliases also get ``Deprecation`` and a ``Link`` to the
        successor path.  *request_headers* (a dict or an
        ``email.message.Message``) feeds content negotiation; only
        ``Accept`` is consulted.
        """
        t0 = time.perf_counter()
        label = "unmatched"
        trace_id = uuid.uuid4().hex[:16]
        token = set_trace_id(trace_id)
        headers: dict[str, str] = {"X-Trace-Id": trace_id}
        parts = urlsplit(path)
        version, route_path = _split_version(parts.path)
        exempt = (
            tuple(s for s in route_path.split("/") if s) in _ADMISSION_EXEMPT
        )
        admitted = False
        try:
            if not exempt:
                admitted = self._try_admit()
                if not admitted:
                    raise TooManyRequests(
                        f"server is at its in-flight limit of "
                        f"{self.max_inflight}; retry with backoff",
                        retry_after=1.0,
                    )
            handler, params, label = self._match(method, route_path)
            if version is None:
                self._mark_deprecated_alias(method, label, route_path, headers)
            params["_accept"] = _header(request_headers, "Accept")
            with span(_REQUEST_SPAN_NAMES.get(label)
                      or f"server.request {label}"):
                with span("server.decode"):
                    body = decode_json_body(raw, self.max_body)
                    if parts.query:
                        merged = _query_dict(parts.query)
                        merged.update(body)
                        body = merged
                deadline = (
                    Deadline(self.request_timeout_s, clock=self.clock)
                    if self.request_timeout_s is not None and not exempt
                    else None
                )
                with deadline_scope(deadline):
                    status, payload = handler(params, body)
        except ApiError as exc:
            status, payload = exc.status, exc.to_payload(trace_id=trace_id)
        except ReproError as exc:
            api = translate_domain_error(exc)
            status, payload = api.status, api.to_payload(trace_id=trace_id)
        except Exception as exc:  # pragma: no cover - last-resort guard
            status = 500
            payload = {
                "error": {
                    "status": 500,
                    "code": "internal",
                    "message": f"internal error ({type(exc).__name__})",
                    "trace_id": trace_id,
                }
            }
        finally:
            if admitted:
                self._release()
            reset_trace_id(token)
        elapsed_ms = (time.perf_counter() - t0) * 1000.0
        self._record(label, status, elapsed_ms)
        if self.slowlog is not None:
            self.slowlog.record(label, elapsed_ms, status, trace_id)
        return status, payload, headers

    def _mark_deprecated_alias(
        self, method: str, label: str, route_path: str, headers: dict[str, str]
    ) -> None:
        """Stamp alias responses and warn once per aliased endpoint."""
        headers["Deprecation"] = "true"
        headers["Link"] = (
            f"</{API_VERSION}{route_path}>; rel=\"successor-version\""
        )
        key = f"{method.upper()} {label}"
        with self._stats_lock:
            first = key not in self._warned_aliases
            if first:
                self._warned_aliases.add(key)
        if first:
            logger.warning(
                "deprecated unversioned path used: %s %s — the canonical "
                "endpoint is /%s%s (alias kept for compatibility)",
                method.upper(), label, API_VERSION, label,
            )

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def _match(
        self, method: str, path: str
    ) -> tuple[Callable[[dict, dict], tuple[int, dict]], dict, str]:
        segments = tuple(s for s in path.split("/") if s)
        params: dict = {}
        endpoint = _STATIC_ROUTES.get(segments)
        if (
            endpoint is None
            and len(segments) >= 2
            and segments[0] == "sessions"
        ):
            endpoint = _SESSION_ROUTES.get(segments[2:])
            params = {"sid": segments[1]}
        if endpoint is None:
            for candidate in _PARAM_ROUTES:
                template = candidate.segments
                if len(template) != len(segments):
                    continue
                bound: dict = {}
                for tmpl, actual in zip(template, segments):
                    if tmpl.startswith("<") and tmpl.endswith(">"):
                        bound[tmpl[1:-1]] = actual
                    elif tmpl != actual:
                        break
                else:
                    endpoint = candidate
                    params = bound
                    break
        if endpoint is None:
            raise NotFound(f"unknown endpoint {path!r}", code="unknown-endpoint")
        label = endpoint.path
        candidates = {
            op.method: getattr(self, op.handler) for op in endpoint.ops
        }
        handler = candidates.get(method.upper())
        if handler is None:
            raise MethodNotAllowed(
                f"{method} not allowed on {label} "
                f"(allowed: {', '.join(sorted(candidates))})"
            )
        return handler, params, label

    # ------------------------------------------------------------------ #
    # stats
    # ------------------------------------------------------------------ #
    def _record(self, label: str, status: int, elapsed_ms: float) -> None:
        with self._stats_lock:
            entry = self._stats.setdefault(
                label,
                {"count": 0, "errors": 0,
                 "total_ms": 0.0, "min_ms": None, "max_ms": 0.0,
                 "hist": Histogram()},
            )
            entry["count"] += 1
            if status >= 400:
                entry["errors"] += 1
            entry["total_ms"] += elapsed_ms
            entry["max_ms"] = max(entry["max_ms"], elapsed_ms)
            if entry["min_ms"] is None or elapsed_ms < entry["min_ms"]:
                entry["min_ms"] = elapsed_ms
            entry["hist"].observe(elapsed_ms / 1000.0)

    def stats_payload(self) -> dict:
        with self._stats_lock:
            endpoints = {}
            total = errors = 0
            for label, entry in sorted(self._stats.items()):
                count = entry["count"]
                total += count
                errors += entry["errors"]
                endpoints[label] = {
                    "count": count,
                    "errors": entry["errors"],
                    "latency_ms": {
                        "mean": entry["total_ms"] / count,
                        "min": entry["min_ms"] or 0.0,
                        "max": entry["max_ms"],
                    },
                }
        payload = {
            "uptime_s": time.time() - self._started,
            "requests": {"total": total, "errors": errors,
                         "shed": self._shed, "inflight": self.inflight()},
            "endpoints": endpoints,
            "cache": self.cache.stats(),
            "diff_align_cache": self.align_cache.stats(),
            "sessions": len(self.registry),
            "resident_scopes": self.registry.total_cost(),
            "evictions": self.registry.evictions,
        }
        if self.corpus is not None:
            payload["corpus"] = {
                "root": self.corpus.root,
                "tenants": len(self.corpus.tenants()),
                "compactor": (
                    dict(self._compactor.stats)
                    if self._compactor is not None else None
                ),
            }
        if self.slowlog is not None:
            payload["slow_requests"] = self.slowlog.to_payload()
        return payload

    def metrics_state(self) -> dict:
        """The service's counters as a JSON-serializable, *mergeable* dict.

        This is the scrape unit of the multi-worker pool: each worker
        reports its state over the control channel and the supervisor
        sums them into one exposition via
        :func:`prometheus_from_states` — the same function a
        single-process server renders its own state through, so the two
        deployment shapes can never drift apart.
        """
        with self._stats_lock:
            endpoints = {
                label: {
                    "count": entry["count"],
                    "errors": entry["errors"],
                    "bucket_counts": list(entry["hist"].counts),
                    "sum": entry["hist"].sum,
                    "total": entry["hist"].total,
                }
                for label, entry in sorted(self._stats.items())
            }
            shed = self._shed
        return {
            "endpoints": endpoints,
            "shed": shed,
            "inflight": self.inflight(),
            "sessions": len(self.registry),
            "resident_scopes": self.registry.total_cost(),
            "evictions": self.registry.evictions,
            "cache": self.cache.stats(),
            "uptime_s": time.time() - self._started,
            "slow_observed": (
                self.slowlog.observed if self.slowlog is not None else None
            ),
        }

    def prometheus_text(self) -> str:
        """The service's counters and histograms in exposition format."""
        return prometheus_from_states([self.metrics_state()])

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #
    def _ep_help(self, params: dict, body: dict) -> tuple[int, dict]:
        listing = []
        for endpoint in ENDPOINTS:
            methods = "/".join(endpoint.methods())
            summary = endpoint.ops[0].summary.split(" (")[0]
            listing.append(
                f"{methods} /{API_VERSION}{endpoint.path}  {summary}"
            )
        return 200, {
            "service": "repro-serve",
            "version": API_VERSION,
            "doc": "docs/server.md",
            "aliases": (
                f"unversioned paths are deprecated aliases of /{API_VERSION} "
                "and answer with a Deprecation header"
            ),
            "endpoints": listing,
        }

    def _ep_healthz(self, params: dict, body: dict) -> tuple[int, dict]:
        """Liveness (we answered) + readiness (we would admit a request).

        Exempt from admission control, so probes see 503 *with a reason*
        while analysis traffic is being shed, instead of being shed
        themselves — which is what lets a balancer distinguish
        "overloaded" from "dead".
        """
        inflight = self.inflight()
        ready = self.max_inflight is None or inflight < self.max_inflight
        if not ready:
            raise ServiceUnavailable(
                f"not ready: {inflight} requests in flight "
                f"(limit {self.max_inflight})",
                code="overloaded",
                retry_after=1.0,
            )
        return 200, {
            "status": "ok",
            "live": True,
            "ready": True,
            "inflight": inflight,
            "sessions": len(self.registry),
            "uptime_s": time.time() - self._started,
        }

    def _ep_stats(self, params: dict, body: dict) -> tuple[int, dict]:
        return 200, self.stats_payload()

    def _ep_prometheus(self, params: dict, body: dict) -> tuple[int, RawBody]:
        return 200, RawBody(
            "text/plain; version=0.0.4; charset=utf-8", self.prometheus_text()
        )

    def _ep_sessions_list(self, params: dict, body: dict) -> tuple[int, dict]:
        return 200, SessionList(self.registry.list_info()).to_payload()

    def _ep_sessions_open(self, params: dict, body: dict) -> tuple[int, dict]:
        req = OpenSessionRequest.from_body(body)
        if req.database is not None:
            handle = self.registry.open_database(
                req.database, strict=not req.salvage
            )
        else:
            handle = self.registry.open_workload(
                req.workload, nranks=req.nranks, seed=req.seed
            )
        report = getattr(handle.session.experiment, "load_report", None)
        resp = SessionOpened(
            session=handle.info(),
            load_report=report.to_payload() if report is not None else None,
        )
        return 201, resp.to_payload()

    def _ep_session_info(self, params: dict, body: dict) -> tuple[int, dict]:
        handle = self.registry.get(params["sid"])
        return 200, SessionInfoResponse(handle.info()).to_payload()

    def _ep_session_close(self, params: dict, body: dict) -> tuple[int, dict]:
        # close() may return None for a manifest-only session this
        # worker never adopted; the sid itself is all the response needs
        handle = self.registry.close(params["sid"])
        self.cache.invalidate_session(params["sid"])
        if handle is not None:
            self._unpin_profile(handle)
        return 200, SessionClosed(params["sid"]).to_payload()

    def _ep_metrics_list(self, params: dict, body: dict) -> tuple[int, dict]:
        handle = self.registry.get(params["sid"])
        with handle.lock:
            metrics = [
                {
                    "id": d.mid,
                    "name": d.name,
                    "kind": d.kind.value,
                    "unit": d.unit,
                    "formula": d.formula,
                }
                for d in handle.session.experiment.metrics
            ]
        return 200, MetricList(metrics).to_payload()

    def _ep_metrics_derive(self, params: dict, body: dict) -> tuple[int, dict]:
        handle = self.registry.get(params["sid"])
        req = DeriveMetricRequest.from_body(body)
        with handle.lock:
            desc = handle.session.experiment.add_derived_metric(
                req.name, req.formula, unit=req.unit
            )
            generation = handle.bump()
        self.cache.invalidate_session(handle.sid)
        resp = DerivedMetricCreated(
            metric={"id": desc.mid, "name": desc.name,
                    "formula": desc.formula, "unit": desc.unit},
            generation=generation,
        )
        return 201, resp.to_payload()

    def _ep_sort(self, params: dict, body: dict) -> tuple[int, dict]:
        handle = self.registry.get(params["sid"])
        req = SortRequest.from_body(body)
        flavor = _flavor(req.flavor, MetricFlavor.INCLUSIVE)
        with handle.lock:
            # resolve before storing, so unknown metric names 404 here
            handle.session.experiment.metrics.by_name(req.metric)
            handle.sort = SortSpec(req.metric, flavor, req.descending)
            return 200, SortResponse(handle.sort.to_payload()).to_payload()

    def _ep_hotpath(self, params: dict, body: dict) -> tuple[int, dict]:
        handle = self.registry.get(params["sid"])
        req = HotPathRequest.from_body(body)
        kind = _view_kind(req.view)
        metric = req.metric
        with handle.lock:
            if metric is None and handle.sort is not None:
                metric = handle.sort.metric
            key = (handle.sid, handle.generation, "hotpath",
                   kind.value, metric, req.threshold)
            cached = self.cache.get(key)
            if cached is None:
                cached = hot_path_snapshot(
                    handle.session, kind, metric=metric,
                    threshold=req.threshold,
                )
                self.cache.put(key, cached)
        return 200, HotPathResult(**cached).to_payload()

    def _ep_flatten(self, params: dict, body: dict) -> tuple[int, dict]:
        return self._flatten_op(params["sid"], "flatten")

    def _ep_unflatten(self, params: dict, body: dict) -> tuple[int, dict]:
        return self._flatten_op(params["sid"], "unflatten")

    def _flatten_op(self, sid: str, op: str) -> tuple[int, dict]:
        handle = self.registry.get(sid)
        with handle.lock:
            getattr(handle.session, op)()
            depth = handle.flatten_depth
            generation = handle.bump()
        self.cache.invalidate_session(handle.sid)
        return 200, MutationResponse(depth, generation).to_payload()

    def _ep_table(
        self, params: dict, body: dict
    ) -> tuple[int, dict | BinaryBody]:
        handle = self.registry.get(params["sid"])
        req = TableRequest.from_body(body)
        kind = _view_kind(req.view)
        columnar = accepts_columnar(params.get("_accept"))
        with handle.lock:
            sort = handle.sort
            flavor = _flavor(
                req.flavor,
                sort.flavor if sort is not None and req.metric is None
                else MetricFlavor.INCLUSIVE,
            )
            metric = req.metric
            if metric is None and sort is not None:
                metric = sort.metric
            descending = req.descending
            if descending is None:
                descending = sort.descending if sort is not None else True
            key = (
                handle.sid, handle.generation, "table", kind.value,
                metric, flavor.value, descending, req.depth, req.max_rows,
                handle.flatten_depth,
            )
            cached = self.cache.get(key)
            if cached is None:
                snapshot = table_snapshot(
                    handle.session,
                    kind,
                    metric=metric,
                    flavor=flavor,
                    descending=descending,
                    depth=req.depth,
                    max_rows=req.max_rows,
                    generation=handle.generation,
                )
                # both encodings are derived once and cached together:
                # a columnar hit is a pure byte write, a JSON hit skips
                # the row materialization
                cached = {
                    "payload": snapshot.to_json_payload(handle.sid),
                    "columnar": encode_columnar(snapshot),
                }
                self.cache.put(key, cached)
        if columnar:
            return 200, BinaryBody(COLUMNAR_CONTENT_TYPE, cached["columnar"])
        return 200, cached["payload"]

    def _ep_render(self, params: dict, body: dict) -> tuple[int, dict]:
        handle = self.registry.get(params["sid"])
        req = RenderRequest.from_body(body)
        kind = _view_kind(req.view)
        with handle.lock:
            # resolve the effective sort column: explicit request fields
            # override the session's sort state, which overrides defaults
            sort = handle.sort
            flavor = _flavor(
                req.flavor,
                sort.flavor if sort is not None and req.metric is None
                else MetricFlavor.INCLUSIVE,
            )
            metric = req.metric
            if metric is None and sort is not None:
                metric = sort.metric
            descending = req.descending
            if descending is None:
                descending = sort.descending if sort is not None else True
            key = (
                handle.sid, handle.generation, "render", kind.value,
                metric, flavor.value, descending, req.depth, req.hot_path,
                req.threshold, req.max_rows, handle.flatten_depth,
            )
            cached = self.cache.get(key)
            if cached is None:
                cached = render_snapshot(
                    handle.session,
                    kind,
                    metric=metric,
                    flavor=flavor,
                    descending=descending,
                    depth=req.depth,
                    hot_path=req.hot_path,
                    threshold=req.threshold,
                    max_rows=req.max_rows,
                )
                self.cache.put(key, cached)
        resp = RenderResponse(
            view=cached["view"],
            text=cached["text"],
            session=handle.sid,
            hot_path=cached.get("hot_path"),
        )
        return 200, resp.to_payload()

    def _ep_diff(
        self, params: dict, body: dict
    ) -> tuple[int, dict | BinaryBody]:
        """Align N experiments and serve one diff view over the union.

        Stateless by design: members come either from database paths
        (streamed through the alignment budget) or from open sessions
        (locked for the duration of the walk), the diff experiment is
        built, rendered, and discarded.  Nothing is written to the
        render cache — a failing member can never taint cached tables.
        """
        from contextlib import ExitStack

        from repro.core.ensemble import align_experiments, detect_regressions
        from repro.viewer.session import ViewerSession

        req = DiffRequest.from_body(body)
        kind = _view_kind(req.view)
        flavor = _flavor(req.flavor, MetricFlavor.INCLUSIVE)
        columnar = accepts_columnar(params.get("_accept"))
        with ExitStack() as stack:
            cache_key = None
            if req.sessions is not None:
                handles = [self.registry.get(sid) for sid in req.sessions]
                # lock in sorted sid order (deduped) so two concurrent
                # diffs over overlapping member sets cannot deadlock
                for handle in sorted(
                    {h.sid: h for h in handles}.values(),
                    key=lambda h: h.sid,
                ):
                    stack.enter_context(handle.lock)
                members = [h.session.experiment for h in handles]
                ensemble = align_experiments(members, strict=not req.salvage)
            else:
                members = req.databases
                # path-mode members have a durable identity: cache the
                # finished alignment keyed on stat fingerprints so the
                # same member set re-diffs without re-aligning.  An
                # unstattable member skips the cache and lets alignment
                # raise its canonical error; entries are stored only
                # after success, so a failing align never populates.
                try:
                    cache_key = _AlignCache.fingerprint(
                        members, not req.salvage
                    )
                except OSError:
                    cache_key = None
                cached = (
                    self.align_cache.get(cache_key)
                    if cache_key is not None else None
                )
                if cached is not None:
                    ensemble, entry_lock = cached
                    stack.enter_context(entry_lock)
                else:
                    ensemble = align_experiments(
                        members, strict=not req.salvage
                    )
                    if cache_key is not None:
                        entry_lock = threading.RLock()
                        stack.enter_context(entry_lock)
                        self.align_cache.put(
                            cache_key, (ensemble, entry_lock)
                        )
            _, b_label = ensemble.resolve(req.baseline)
            _, t_label = ensemble.resolve(req.target)
            diff_exp = ensemble.diff(
                req.baseline, req.target, factor=req.factor
            )
            findings = []
            if req.detect and req.target != "mean":
                corpus = None if req.baseline == "mean" else [req.baseline]
                findings = detect_regressions(
                    ensemble, metric=req.metric, target=req.target,
                    baseline=corpus, threshold=req.threshold,
                    sigma=req.sigma, min_share=req.min_share,
                )
            snapshot = table_snapshot(
                ViewerSession(diff_exp), kind,
                metric=req.metric, flavor=flavor,
                descending=req.descending, depth=req.depth,
                max_rows=req.max_rows, generation=0,
            )
        if columnar:
            return 200, BinaryBody(
                COLUMNAR_CONTENT_TYPE, encode_columnar(snapshot)
            )
        return 200, {
            "diff": snapshot.to_json_payload("diff"),
            "members": list(ensemble.names),
            "baseline": b_label,
            "target": t_label,
            "factor": req.factor,
            "findings": [f.to_payload() for f in findings],
            "report": ensemble.alignment.report.to_payload(),
        }

    def _ep_ensemble(self, params: dict, body: dict) -> tuple[int, dict]:
        """Open a persistent session over the union of N databases."""
        req = EnsembleRequest.from_body(body)
        handle = self.registry.open_ensemble(
            req.databases, salvage=req.salvage, stats=req.stats,
            label=req.label,
        )
        payload: dict = {"session": handle.info()}
        info = getattr(handle, "ensemble_info", None)
        if info is not None:
            payload["ensemble"] = info
        return 201, payload

    # ------------------------------------------------------------------ #
    # query endpoint
    # ------------------------------------------------------------------ #
    def _ep_query(
        self, params: dict, body: dict
    ) -> tuple[int, dict | BinaryBody]:
        """Run a call-path query or a corpus diagnosis.

        Single-target queries (a session, or one corpus profile)
        negotiate the columnar wire format like ``/table``; the
        corpus-sweep and diagnosis forms are JSON-only (their result is
        per-profile, not one table).  Corpus forms stream profiles one
        at a time and honor the request deadline between profiles.
        """
        from repro.server.deadline import checkpoint

        req = QueryRequest.from_body(body)
        columnar = accepts_columnar(params.get("_accept"))

        if req.session is not None:
            from repro.query import Query, run_query

            q = Query.from_spec(req.query)
            handle = self.registry.get(req.session)
            with handle.lock:
                result = run_query(q, handle.session.experiment)
            if columnar:
                return 200, BinaryBody(
                    COLUMNAR_CONTENT_TYPE,
                    encode_columnar(result.to_snapshot(handle.generation)),
                )
            return 200, result.to_payload(handle.sid)

        corpus = self._corpus_or_404()
        if req.diagnose:
            from repro.query import diagnose_corpus

            diagnosis = diagnose_corpus(
                corpus, req.tenant,
                metric=req.metric, baseline=req.baseline,
                rank_cov=req.rank_cov, scaling_floor=req.scaling_floor,
                drift_share=req.drift_share, salvage=req.salvage,
                checkpoint=lambda: checkpoint("diagnose"),
            )
            return 200, diagnosis.to_payload()

        from repro.query import Query, run_query

        q = Query.from_spec(req.query)
        if req.profile is not None:
            experiment = corpus.load(
                req.tenant, req.profile, salvage=req.salvage
            )
            try:
                result = run_query(q, experiment)
            finally:
                release = getattr(experiment, "release", None)
                if release is not None:
                    release()
            if columnar:
                return 200, BinaryBody(
                    COLUMNAR_CONTENT_TYPE,
                    encode_columnar(result.to_snapshot()),
                )
            payload = result.to_payload()
            payload["tenant"] = req.tenant
            payload["profile"] = req.profile
            return 200, payload

        # corpus sweep: the query runs over every committed profile of
        # the tenant, one streamed (and released) experiment at a time
        profiles = []
        for entry in corpus.list(req.tenant):
            checkpoint("query")
            experiment = corpus.load(
                req.tenant, entry.pid, salvage=req.salvage
            )
            try:
                result = run_query(q, experiment)
            finally:
                release = getattr(experiment, "release", None)
                if release is not None:
                    release()
            table = result.to_payload()
            table["profile"] = entry.pid
            if entry.group:
                table["group"] = entry.group
            profiles.append(table)
        return 200, {"tenant": req.tenant, "profiles": profiles}

    # ------------------------------------------------------------------ #
    # trace endpoint
    # ------------------------------------------------------------------ #
    def _ep_trace(
        self, params: dict, body: dict
    ) -> tuple[int, dict | BinaryBody]:
        """Serve a windowed view over a time-partitioned trace store.

        Stateless by design: the store is opened, read, and closed per
        request — window pruning means only the chunks overlapping
        ``[t0, t1)`` are ever mapped.  The flame view negotiates the
        columnar wire format like ``/table``; its JSON ``rows`` are
        exactly what ``decode_columnar`` yields from the framed body.
        The series view is JSON-only (two reductions per bin, not one
        table).
        """
        from repro.trace import flame_slab, flame_snapshot, idleness_series
        from repro.trace.store import open_trace

        req = TraceRequest.from_body(body)
        columnar = accepts_columnar(params.get("_accept"))
        with open_trace(req.path) as store:
            if req.view == "series":
                series = idleness_series(
                    store, t0=req.t0, t1=req.t1, bins=req.bins
                )
                series["path"] = req.path
                series["chunks_touched"] = store.chunks_touched
                series["chunks_total"] = store.chunks_total
                return 200, series
            slab = flame_slab(
                store, rank=req.rank, t0=req.t0, t1=req.t1,
                metric=req.metric, max_spans=req.max_spans,
            )
            snapshot = flame_snapshot(slab)
            if columnar:
                return 200, BinaryBody(
                    COLUMNAR_CONTENT_TYPE, encode_columnar(snapshot)
                )
            payload = dict(slab)
            payload["path"] = req.path
            payload["rows"] = snapshot.to_rows()
            payload["labels"] = list(snapshot.labels)
            payload["chunks_touched"] = store.chunks_touched
            payload["chunks_total"] = store.chunks_total
            return 200, payload

    # ------------------------------------------------------------------ #
    # corpus endpoints
    # ------------------------------------------------------------------ #
    def _corpus_or_404(self):
        if self.corpus is None:
            raise NotFound(
                "this server has no profile corpus configured "
                "(start with --corpus <dir>)",
                code="no-corpus",
            )
        return self.corpus

    def _ep_corpus_info(self, params: dict, body: dict) -> tuple[int, dict]:
        corpus = self._corpus_or_404()
        stats = corpus.stats()
        stats["align_cache"] = self.align_cache.stats()
        if self._compactor is not None:
            stats["compactor"] = dict(self._compactor.stats)
        return 200, CorpusInfo(corpus=stats).to_payload()

    def _ep_corpus_list(self, params: dict, body: dict) -> tuple[int, dict]:
        corpus = self._corpus_or_404()
        req = CorpusSearchRequest.from_body(
            {k: v for k, v in body.items() if not k.startswith("meta.")}
        )
        meta = {
            key[len("meta."):]: value
            for key, value in body.items()
            if key.startswith("meta.") and len(key) > len("meta.")
        }
        entries = corpus.search(
            params["tenant"], name=req.name, group=req.group,
        )
        if meta:
            # query strings are type-ambiguous (?meta.build=2 could mean
            # int or str), so the HTTP filter compares stringwise
            entries = [
                e for e in entries
                if all(k in e.meta and str(e.meta[k]) == str(v)
                       for k, v in meta.items())
            ]
        return 200, ProfileList(
            tenant=params["tenant"],
            profiles=[e.to_payload() for e in entries],
        ).to_payload()

    def _ep_corpus_upload(self, params: dict, body: dict) -> tuple[int, dict]:
        corpus = self._corpus_or_404()
        req = CorpusUploadRequest.from_body(body)
        if req.data is not None:
            try:
                payload = base64.b64decode(req.data, validate=True)
            except (binascii.Error, ValueError):
                raise BadRequest(
                    "'data' is not valid base64", code="bad-upload-encoding"
                ) from None
            entry = corpus.ingest_bytes(
                params["tenant"], payload, name=req.name,
                group=req.group, meta=req.meta, salvage=req.salvage,
            )
        else:
            entry = corpus.ingest_file(
                params["tenant"], req.path, name=req.name,
                group=req.group, meta=req.meta, salvage=req.salvage,
            )
        return 201, ProfileIngested(profile=entry.to_payload()).to_payload()

    def _ep_corpus_profile(self, params: dict, body: dict) -> tuple[int, dict]:
        corpus = self._corpus_or_404()
        entry = corpus.get(params["tenant"], params["pid"])
        payload = entry.to_payload()
        payload["pinned"] = corpus.pinned(params["tenant"], params["pid"])
        return 200, ProfileInfo(profile=payload).to_payload()

    def _ep_corpus_delete(self, params: dict, body: dict) -> tuple[int, dict]:
        corpus = self._corpus_or_404()
        tenant, pid = params["tenant"], params["pid"]
        # resolve the on-disk path before the entry disappears so the
        # alignment cache can drop every ensemble built over it
        path = corpus.profile_path(tenant, pid)
        corpus.delete(tenant, pid)
        self.align_cache.invalidate_path(path)
        return 200, ProfileDeleted(tenant=tenant, deleted=pid).to_payload()

    def _ep_corpus_open(self, params: dict, body: dict) -> tuple[int, dict]:
        """Open a committed profile as a session, pinned against eviction."""
        corpus = self._corpus_or_404()
        req = CorpusOpenRequest.from_body(body)
        tenant, pid = params["tenant"], params["pid"]
        entry = corpus.verify(tenant, pid)
        path = corpus.profile_path(tenant, pid)
        handle = self.registry.open_database(
            path, strict=not req.salvage,
            corpus={"tenant": tenant, "id": pid},
            sid_request=req.sid,
        )
        try:
            corpus.pin(tenant, pid, handle.sid)
        except ReproError:
            self.registry.close(handle.sid)
            raise
        handle.corpus_pin = (tenant, pid, handle.sid)
        report = getattr(handle.session.experiment, "load_report", None)
        resp = CorpusOpened(
            session=handle.info(),
            profile=entry.to_payload(),
            load_report=report.to_payload() if report is not None else None,
        )
        return 201, resp.to_payload()

    def _ep_corpus_compact(self, params: dict, body: dict) -> tuple[int, dict]:
        corpus = self._corpus_or_404()
        req = CorpusCompactRequest.from_body(body)
        tenant = params["tenant"]
        if req.group is not None:
            groups = {req.group: None}
        else:
            groups = corpus.compactable_groups(
                tenant, min_sources=req.min_sources
            )
        compacted = []
        for group in sorted(groups):
            sources = [
                corpus.profile_path(tenant, e.pid)
                for e in corpus.search(tenant, group=group)
                if e.kind == "rpdb"
            ]
            entry = corpus.compact_group(
                tenant, group, min_sources=req.min_sources
            )
            if entry is not None:
                for path in sources:
                    self.align_cache.invalidate_path(path)
                compacted.append(entry.to_payload())
        return 200, CompactionReport(
            tenant=tenant, compacted=compacted
        ).to_payload()

    def _ep_corpus_policy(self, params: dict, body: dict) -> tuple[int, dict]:
        corpus = self._corpus_or_404()
        policy = corpus.policy(params["tenant"])
        return 200, PolicyResponse(
            tenant=params["tenant"], policy=policy.to_payload()
        ).to_payload()

    def _ep_corpus_policy_set(
        self, params: dict, body: dict
    ) -> tuple[int, dict]:
        corpus = self._corpus_or_404()
        req = CorpusPolicyRequest.from_body(body)
        from repro.corpus import RetentionPolicy

        policy = RetentionPolicy(
            max_bytes=req.max_bytes,
            max_profiles=req.max_profiles,
            ttl_s=req.ttl_s,
        )
        evicted = corpus.set_policy(params["tenant"], policy)
        for item in evicted:
            self.align_cache.invalidate_path(item["path"])
        return 200, PolicyResponse(
            tenant=params["tenant"],
            policy=policy.to_payload(),
            evicted=evicted or None,
        ).to_payload()


# --------------------------------------------------------------------- #
# metrics aggregation (shared by single-process serving and the pool)
# --------------------------------------------------------------------- #
def _merge_metrics_states(states: list[dict]) -> dict:
    """Sum a list of :meth:`AnalysisApp.metrics_state` dicts into one."""
    endpoints: dict[str, dict] = {}
    merged = {
        "endpoints": endpoints,
        "shed": 0, "inflight": 0, "sessions": 0,
        "resident_scopes": 0, "evictions": 0,
        "cache": {"entries": 0, "hits": 0, "misses": 0},
        "uptime_s": 0.0,
        "slow_observed": None,
    }
    for state in states:
        for label, entry in state.get("endpoints", {}).items():
            into = endpoints.setdefault(label, {
                "count": 0, "errors": 0,
                "bucket_counts": [0] * len(entry["bucket_counts"]),
                "sum": 0.0, "total": 0,
            })
            into["count"] += entry["count"]
            into["errors"] += entry["errors"]
            into["sum"] += entry["sum"]
            into["total"] += entry["total"]
            for i, count in enumerate(entry["bucket_counts"]):
                into["bucket_counts"][i] += count
        for key in ("shed", "inflight", "sessions", "resident_scopes",
                    "evictions"):
            merged[key] += state.get(key, 0)
        cache = state.get("cache", {})
        for key in ("entries", "hits", "misses"):
            merged["cache"][key] += cache.get(key, 0)
        merged["uptime_s"] = max(merged["uptime_s"],
                                 state.get("uptime_s", 0.0))
        slow = state.get("slow_observed")
        if slow is not None:
            merged["slow_observed"] = (merged["slow_observed"] or 0) + slow
    return merged


def prometheus_from_states(states: list[dict]) -> str:
    """Exposition text for one or many :meth:`~AnalysisApp.metrics_state`.

    With a single state this renders byte-identically to the historical
    per-process ``GET /metrics`` output; the pool supervisor passes one
    state per live worker and serves the sum.
    """
    state = states[0] if len(states) == 1 else _merge_metrics_states(states)
    per_label = []
    for label, entry in sorted(state["endpoints"].items()):
        hist = Histogram()
        hist.counts = list(entry["bucket_counts"])
        hist.total = entry["total"]
        hist.sum = entry["sum"]
        per_label.append((label, entry["count"], entry["errors"],
                          hist.cumulative(), hist.sum, hist.total))
    cache = state["cache"]
    families: list[tuple[str, str, str, list]] = [
        (
            "repro_server_requests_total", "counter",
            "Requests handled, by endpoint label.",
            [("", {"endpoint": label}, count)
             for label, count, *_ in per_label],
        ),
        (
            "repro_server_request_errors_total", "counter",
            "Requests answered with status >= 400, by endpoint label.",
            [("", {"endpoint": label}, errors)
             for label, _count, errors, *_ in per_label],
        ),
        (
            "repro_server_request_duration_seconds", "histogram",
            "Request wall time, by endpoint label.",
            [
                sample
                for label, _c, _e, buckets, total_s, total_n in per_label
                for sample in (
                    [("_bucket", {"endpoint": label, "le": le}, count)
                     for le, count in buckets]
                    + [("_sum", {"endpoint": label}, total_s),
                       ("_count", {"endpoint": label}, total_n)]
                )
            ],
        ),
        (
            "repro_server_requests_shed_total", "counter",
            "Requests rejected by admission control.",
            [("", None, state["shed"])],
        ),
        (
            "repro_server_inflight_requests", "gauge",
            "Requests currently being handled.",
            [("", None, state["inflight"])],
        ),
        (
            "repro_server_sessions", "gauge",
            "Resident analysis sessions.",
            [("", None, state["sessions"])],
        ),
        (
            "repro_server_resident_scopes", "gauge",
            "Total scope cost of resident sessions.",
            [("", None, state["resident_scopes"])],
        ),
        (
            "repro_server_session_evictions_total", "counter",
            "Sessions evicted by TTL, count, or scope-budget pressure.",
            [("", None, state["evictions"])],
        ),
        (
            "repro_server_render_cache_entries", "gauge",
            "Entries resident in the render cache.",
            [("", None, cache["entries"])],
        ),
        (
            "repro_server_render_cache_hits_total", "counter",
            "Render cache hits.",
            [("", None, cache["hits"])],
        ),
        (
            "repro_server_render_cache_misses_total", "counter",
            "Render cache misses.",
            [("", None, cache["misses"])],
        ),
        (
            "repro_server_uptime_seconds", "gauge",
            "Seconds since the application started.",
            [("", None, state["uptime_s"])],
        ),
    ]
    if state["slow_observed"] is not None:
        families.append((
            "repro_server_slow_requests_total", "counter",
            "Requests over the configured slowness threshold.",
            [("", None, state["slow_observed"])],
        ))
    return render_metrics(families)

"""Structured error taxonomy for the analysis service.

Every failure a client can provoke maps to an :class:`ApiError` carrying
an HTTP status, a stable machine-readable ``code``, and a human-readable
message; the HTTP layer serializes it as a JSON body::

    {"error": {"status": 400, "code": "malformed-json",
               "message": "request body is not valid JSON: ..."}}

The contract (pinned by ``tests/props/test_server_fuzz.py``): malformed
requests are 400, unknown resources (session, metric, endpoint) are 404,
wrong methods 405, oversized payloads 413 — and a traceback never leaks
to the wire.  Domain errors raised by the toolkit are translated at the
application boundary (:func:`translate_domain_error`), keeping the
repro.core exception hierarchy independent of HTTP.
"""

from __future__ import annotations

from repro.core.errors import (
    DatabaseError,
    FormulaError,
    MetricError,
    ReproError,
    ViewError,
)

__all__ = [
    "ApiError",
    "BadRequest",
    "NotFound",
    "MethodNotAllowed",
    "PayloadTooLarge",
    "TooManyRequests",
    "ServiceUnavailable",
    "DeadlineExceeded",
    "translate_domain_error",
]


class ApiError(Exception):
    """A client-visible failure with an HTTP status and stable code."""

    status = 500
    code = "internal"

    def __init__(
        self,
        message: str,
        code: str | None = None,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        if code is not None:
            self.code = code
        #: seconds after which retrying may succeed; surfaces as both a
        #: payload field and the HTTP ``Retry-After`` header
        self.retry_after = retry_after

    @property
    def message(self) -> str:
        return str(self)

    def to_payload(self) -> dict:
        """The JSON body clients receive."""
        error = {
            "status": self.status,
            "code": self.code,
            "message": self.message,
        }
        if self.retry_after is not None:
            error["retry_after"] = self.retry_after
        return {"error": error}


class BadRequest(ApiError):
    """400 — the request is syntactically or semantically malformed."""

    status = 400
    code = "bad-request"


class NotFound(ApiError):
    """404 — unknown session, metric, endpoint, or database path."""

    status = 404
    code = "not-found"


class MethodNotAllowed(ApiError):
    """405 — the endpoint exists but not for this HTTP method."""

    status = 405
    code = "method-not-allowed"


class PayloadTooLarge(ApiError):
    """413 — request body exceeds the configured limit."""

    status = 413
    code = "payload-too-large"


class TooManyRequests(ApiError):
    """429 — admission control shed the request; retry after backoff."""

    status = 429
    code = "too-many-requests"


class ServiceUnavailable(ApiError):
    """503 — the server cannot serve this request right now."""

    status = 503
    code = "unavailable"


class DeadlineExceeded(ServiceUnavailable):
    """503 — the request's deadline expired; partial work was discarded."""

    code = "deadline-exceeded"


def translate_domain_error(exc: ReproError) -> ApiError:
    """Map a toolkit exception to the client-visible taxonomy.

    * unknown metric name/id (:class:`MetricError` from table lookups)
      → 404, since the client addressed a resource that does not exist;
    * duplicate metric names and formula problems → 400 (the request
      itself is wrong, not the address);
    * view/database errors → 400 with a domain-specific code.
    """
    text = str(exc)
    if isinstance(exc, FormulaError):
        return BadRequest(text, code="bad-formula")
    if isinstance(exc, MetricError):
        if text.startswith("unknown metric"):
            return NotFound(text, code="unknown-metric")
        return BadRequest(text, code="bad-metric")
    if isinstance(exc, ViewError):
        return BadRequest(text, code="bad-view-operation")
    if isinstance(exc, DatabaseError):
        return BadRequest(text, code="bad-database")
    return BadRequest(text, code="domain-error")

"""Deprecated location — the taxonomy moved to :mod:`repro.errors`.

This shim keeps ``from repro.server.errors import ...`` working; the
classes it re-exports *are* the unified ones, so ``except`` clauses and
identity checks keep behaving across old and new import paths.
"""

from __future__ import annotations

import warnings

from repro.errors import (  # noqa: F401 - re-exported for compatibility
    ApiError,
    BadRequest,
    DeadlineExceeded,
    MethodNotAllowed,
    NotFound,
    PayloadTooLarge,
    ServiceUnavailable,
    TooManyRequests,
    translate_domain_error,
)

__all__ = [
    "ApiError",
    "BadRequest",
    "NotFound",
    "MethodNotAllowed",
    "PayloadTooLarge",
    "TooManyRequests",
    "ServiceUnavailable",
    "DeadlineExceeded",
    "translate_domain_error",
]

warnings.warn(
    "repro.server.errors is deprecated; import from repro.errors "
    "(or the repro.api facade) instead",
    DeprecationWarning,
    stacklevel=2,
)

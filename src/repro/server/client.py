"""A retrying JSON client for the analysis service.

:class:`RetryingClient` wraps one request/response exchange with the
retry discipline the server's resilience layer expects from well-behaved
callers:

* **retryable failures** — 429 (shed by admission control), 503
  (deadline exceeded / not ready), 421 (a kept-alive connection
  misdirected to a non-owner worker in pool mode — a retry on a fresh
  connection is re-routed correctly), and transport-level errors
  (connection refused or reset mid-exchange) are retried; everything
  else, success or failure, is returned to the caller as-is.  Other
  4xx responses are the client's own fault and retrying would only
  repeat the mistake;
* **exponential backoff with jitter** — the *k*-th retry sleeps
  ``base * 2**k`` seconds, capped at ``max_delay``, with a multiplicative
  jitter drawn from ``[1 - jitter, 1 + jitter)`` so a shed thundering
  herd does not re-arrive in lockstep;
* **``Retry-After`` wins** — when the response carries the server's own
  estimate (the HTTP header, or the ``retry_after`` field of the JSON
  error payload), the client honors it as a *floor*: it never retries
  sooner than the server asked, jitter notwithstanding.

The transport, sleep, and RNG are injectable, so the retry schedule is
deterministic under test: the fault harness drives this client against
a scripted transport and asserts the exact sleep sequence.  The default
transport speaks HTTP via :mod:`urllib` — stdlib only, like the server.
"""

from __future__ import annotations

import inspect
import json
import random
import time
import urllib.error
import urllib.parse
import urllib.request
from dataclasses import dataclass, field
from typing import Callable

from repro.server.wire import COLUMNAR_CONTENT_TYPE, decode_columnar

__all__ = ["ClientResponse", "RetriesExhausted", "RetryingClient", "RetryPolicy"]

#: HTTP statuses worth retrying: misdirected (421, pool keep-alive
#: discipline — fresh connections re-route), shed (429), unavailable (503)
RETRYABLE_STATUSES = frozenset({421, 429, 503})

#: transport exceptions worth retrying (the request may never have
#: reached the server, or the server died mid-response)
RETRYABLE_ERRORS = (ConnectionError, TimeoutError, urllib.error.URLError)


@dataclass(frozen=True)
class ClientResponse:
    """One HTTP exchange: status, parsed payload, headers, raw body.

    ``payload`` is the decoded body — parsed JSON, or the decoded table
    dict when the server answered in the columnar wire format (the two
    decode to equal dicts by construction; the property suite holds the
    codec to that).  ``content_type`` and the undecoded ``body`` are
    kept for callers that care which encoding actually crossed the wire.
    """

    status: int
    payload: dict
    headers: dict = field(default_factory=dict)
    content_type: str = "application/json"
    body: bytes = b""

    @property
    def ok(self) -> bool:
        return self.status < 400

    def retry_after(self) -> float | None:
        """The server's backoff hint, from header or error payload."""
        header = self.headers.get("Retry-After")
        if header is not None:
            try:
                return max(0.0, float(header))
            except ValueError:
                pass
        error = self.payload.get("error")
        if isinstance(error, dict):
            value = error.get("retry_after")
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return max(0.0, float(value))
        return None


class RetriesExhausted(Exception):
    """Every attempt failed; carries the last response or error seen."""

    def __init__(
        self,
        attempts: int,
        last_response: ClientResponse | None = None,
        last_error: Exception | None = None,
    ) -> None:
        detail = (
            f"status {last_response.status}" if last_response is not None
            else f"{type(last_error).__name__}: {last_error}"
        )
        super().__init__(f"request failed after {attempts} attempt(s) ({detail})")
        self.attempts = attempts
        self.last_response = last_response
        self.last_error = last_error


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule: ``base * 2**k`` capped, jittered, floored."""

    max_attempts: int = 5
    base_delay: float = 0.1
    max_delay: float = 5.0
    jitter: float = 0.25

    def delay(
        self,
        attempt: int,
        retry_after: float | None,
        rng: Callable[[], float],
    ) -> float:
        """Seconds to sleep before retry number *attempt* (0-based)."""
        backoff = min(self.max_delay, self.base_delay * (2.0 ** attempt))
        if self.jitter > 0.0:
            backoff *= 1.0 + self.jitter * (2.0 * rng() - 1.0)
        if retry_after is not None:
            backoff = max(backoff, retry_after)
        return max(0.0, backoff)


def _decode_body(status: int, raw: bytes, headers: dict) -> ClientResponse:
    """Decode a response body per its Content-Type (JSON or columnar)."""
    content_type = ""
    for name, value in headers.items():
        if name.lower() == "content-type":
            content_type = value
            break
    if content_type.split(";")[0].strip() == COLUMNAR_CONTENT_TYPE:
        # malformed frames raise loudly: a frame our own codec cannot
        # read back is a server bug, not something to paper over
        payload = decode_columnar(raw)
    else:
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (ValueError, UnicodeDecodeError):
            payload = {"raw": repr(raw[:200])}
        if not isinstance(payload, dict):
            payload = {"value": payload}
    return ClientResponse(
        status=status,
        payload=payload,
        headers=headers,
        content_type=content_type or "application/json",
        body=raw,
    )


def _urllib_transport(
    method: str,
    url: str,
    body: bytes | None,
    timeout: float,
    headers: dict | None = None,
) -> ClientResponse:
    """Default transport: one stdlib HTTP exchange, JSON or columnar out."""
    send_headers = dict(headers or {})
    if body and "Content-Type" not in send_headers:
        send_headers["Content-Type"] = "application/json"
    request = urllib.request.Request(
        url, data=body, method=method, headers=send_headers
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            raw, status = resp.read(), resp.status
            resp_headers = dict(resp.headers.items())
    except urllib.error.HTTPError as exc:  # non-2xx still has a JSON body
        raw, status = exc.read(), exc.code
        resp_headers = dict(exc.headers.items()) if exc.headers else {}
    return _decode_body(status, raw, resp_headers)


class RetryingClient:
    """Issue requests against the service, retrying shed/unavailable ones."""

    def __init__(
        self,
        base_url: str = "http://127.0.0.1:8377",
        policy: RetryPolicy | None = None,
        timeout: float = 30.0,
        transport: Callable[..., ClientResponse] | None = None,
        sleep: Callable[[float], None] = time.sleep,
        rng: Callable[[], float] | None = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.policy = policy or RetryPolicy()
        self.timeout = timeout
        self.transport = transport or _urllib_transport
        self.sleep = sleep
        self.rng = rng or random.Random(0x5EED).random
        #: total retries performed over the client's lifetime
        self.retries = 0
        #: whether the transport accepts a 5th *headers* argument — the
        #: fault harness drives this client with 4-argument scripted
        #: transports, which must keep working unchanged
        self._transport_takes_headers = _takes_headers(self.transport)

    # ------------------------------------------------------------------ #
    def request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        headers: dict | None = None,
    ) -> ClientResponse:
        """One logical request; retries per the policy, then raises.

        *headers* travel with every attempt — a retried columnar request
        re-negotiates the same encoding it originally asked for.
        """
        url = self.base_url + path
        data = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        last_response: ClientResponse | None = None
        last_error: Exception | None = None
        for attempt in range(self.policy.max_attempts):
            try:
                if self._transport_takes_headers:
                    response = self.transport(
                        method, url, data, self.timeout, headers
                    )
                else:
                    response = self.transport(method, url, data, self.timeout)
                last_response, last_error = response, None
            except RETRYABLE_ERRORS as exc:
                last_response, last_error = None, exc
            else:
                if response.status not in RETRYABLE_STATUSES:
                    return response
            if attempt + 1 >= self.policy.max_attempts:
                break
            retry_after = (
                last_response.retry_after() if last_response is not None
                else None
            )
            self.retries += 1
            self.sleep(self.policy.delay(attempt, retry_after, self.rng))
        raise RetriesExhausted(
            self.policy.max_attempts,
            last_response=last_response,
            last_error=last_error,
        )

    # convenience verbs ------------------------------------------------- #
    def get(self, path: str, headers: dict | None = None) -> ClientResponse:
        return self.request("GET", path, headers=headers)

    def post(self, path: str, body: dict | None = None) -> ClientResponse:
        return self.request("POST", path, body=body or {})

    def delete(self, path: str) -> ClientResponse:
        return self.request("DELETE", path)

    def get_table(
        self, sid: str, columnar: bool = True, **params
    ) -> ClientResponse:
        """Fetch ``/sessions/<sid>/table``, negotiating the wire format.

        With ``columnar=True`` the request carries ``Accept:
        application/x-repro-columnar`` and the transport decodes the
        binary frame; either way ``response.payload`` is the same table
        dict, so callers switch encodings without changing a line.
        """
        query = urllib.parse.urlencode(sorted(params.items()))
        path = f"/v1/sessions/{sid}/table" + (f"?{query}" if query else "")
        headers = {"Accept": COLUMNAR_CONTENT_TYPE} if columnar else None
        return self.request("GET", path, headers=headers)


def _takes_headers(transport: Callable[..., ClientResponse]) -> bool:
    """True when *transport* can accept the optional headers argument."""
    try:
        parameters = inspect.signature(transport).parameters.values()
    except (TypeError, ValueError):  # builtins, odd callables: be safe
        return False
    positional = sum(
        1 for p in parameters
        if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
    )
    if any(p.kind is p.VAR_POSITIONAL for p in parameters):
        return True
    return positional >= 5

"""A concurrent profile-analysis service over :class:`ViewerSession`.

The paper presents call path profiles through an interactive client;
this package exposes the same operations — the three views, sorting,
hot-path expansion (Eq. 3), flattening, derived metrics, and rendered
tables — as a stdlib-only JSON HTTP service, so many clients can query
one set of loaded experiment databases concurrently.

Layering (transport-independent core under a thin HTTP shell):

* :mod:`repro.errors` — the structured 4xx/5xx error taxonomy;
* :mod:`repro.server.deadline` — cooperative per-request deadlines;
* :mod:`repro.server.cache` — thread-safe LRU render/query cache;
* :mod:`repro.server.sessions` — session registry, per-session locks,
  generation counters, and the pure render/hot-path snapshot functions;
* :mod:`repro.server.schema` — typed request/response dataclasses and
  the versioned endpoint registry (the source of ``docs/api.md`` and
  the public-API snapshot test);
* :mod:`repro.server.app` — routing (``/v1`` plus deprecated aliases),
  decoding, validation, trace ids, stats, Prometheus ``/metrics``;
* :mod:`repro.server.http` — ``ThreadingHTTPServer`` adapter and the
  ``repro-serve`` entry point;
* :mod:`repro.server.client` — retrying JSON client with exponential
  backoff + jitter that honors ``Retry-After``.

See ``docs/server.md`` for the endpoint reference and the cache
invalidation rules, and ``docs/robustness.md`` for the resilience
layer (deadlines, admission control, eviction, salvage loading).
"""

from repro.server.app import AnalysisApp
from repro.server.cache import RenderCache
from repro.server.client import RetryingClient, RetryPolicy
from repro.server.deadline import Deadline, checkpoint, deadline_scope
from repro.errors import (
    ApiError,
    BadRequest,
    DeadlineExceeded,
    MethodNotAllowed,
    NotFound,
    PayloadTooLarge,
    ServiceUnavailable,
    TooManyRequests,
)
from repro.server.http import AnalysisServer, build_server
from repro.server.schema import API_VERSION, ENDPOINTS, EndpointDef, Operation, RawBody
from repro.server.sessions import (
    SessionRegistry,
    SortSpec,
    hot_path_snapshot,
    render_snapshot,
)

__all__ = [
    "API_VERSION",
    "AnalysisApp",
    "AnalysisServer",
    "ApiError",
    "BadRequest",
    "Deadline",
    "DeadlineExceeded",
    "ENDPOINTS",
    "EndpointDef",
    "MethodNotAllowed",
    "NotFound",
    "Operation",
    "PayloadTooLarge",
    "RawBody",
    "RenderCache",
    "RetryPolicy",
    "RetryingClient",
    "ServiceUnavailable",
    "SessionRegistry",
    "SortSpec",
    "TooManyRequests",
    "build_server",
    "checkpoint",
    "deadline_scope",
    "hot_path_snapshot",
    "render_snapshot",
]

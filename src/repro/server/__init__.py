"""A concurrent profile-analysis service over :class:`ViewerSession`.

The paper presents call path profiles through an interactive client;
this package exposes the same operations — the three views, sorting,
hot-path expansion (Eq. 3), flattening, derived metrics, and rendered
tables — as a stdlib-only JSON HTTP service, so many clients can query
one set of loaded experiment databases concurrently.

Layering (transport-independent core under a thin HTTP shell):

* :mod:`repro.server.errors` — the structured 4xx error taxonomy;
* :mod:`repro.server.cache` — thread-safe LRU render/query cache;
* :mod:`repro.server.sessions` — session registry, per-session locks,
  generation counters, and the pure render/hot-path snapshot functions;
* :mod:`repro.server.app` — routing, decoding, validation, stats;
* :mod:`repro.server.http` — ``ThreadingHTTPServer`` adapter and the
  ``repro-serve`` entry point.

See ``docs/server.md`` for the endpoint reference and the cache
invalidation rules.
"""

from repro.server.app import AnalysisApp
from repro.server.cache import RenderCache
from repro.server.errors import (
    ApiError,
    BadRequest,
    MethodNotAllowed,
    NotFound,
    PayloadTooLarge,
)
from repro.server.http import AnalysisServer, build_server
from repro.server.sessions import (
    SessionRegistry,
    SortSpec,
    hot_path_snapshot,
    render_snapshot,
)

__all__ = [
    "AnalysisApp",
    "AnalysisServer",
    "ApiError",
    "BadRequest",
    "MethodNotAllowed",
    "NotFound",
    "PayloadTooLarge",
    "RenderCache",
    "SessionRegistry",
    "SortSpec",
    "build_server",
    "hot_path_snapshot",
    "render_snapshot",
]

"""Pre-forked multi-worker serving: one listener, N analysis processes.

The single-process server (:mod:`repro.server.http`) threads requests
over one :class:`~repro.server.app.AnalysisApp`, so the GIL caps it at
roughly one core of render work.  :class:`ServerPool` removes that cap
without giving up shared state semantics:

* the **parent** binds the listening socket, accepts every connection,
  peeks at the first request line (``MSG_PEEK`` — the bytes stay in the
  kernel buffer for the worker), and passes the connection's file
  descriptor to a worker over an ``AF_UNIX``/``SOCK_SEQPACKET`` control
  channel (``socket.send_fds``);
* requests naming a session route by **affinity** —
  ``crc32(sid) % workers`` — so one worker owns each session and its
  generation-keyed render cache stays hot; everything else round-robins.
  Routing happens per *connection*, so workers enforce a keep-alive
  discipline: a connection stays alive while its requests name sessions
  the worker owns by affinity (the steady state — zero per-request
  routing cost), any other request is served once and the connection
  closed, and a kept-alive connection that *switches* to a session
  another worker owns is refused with ``421 Misdirected Request`` —
  a client cannot silently bypass affinity by reusing a connection;
* **workers** are forked analysis processes.  Each preloads the same
  databases in the same order (identical ``s1..sk`` ids everywhere) and
  then attaches a shared *session manifest directory*: ``POST
  /sessions`` claims the next id cluster-wide with an ``O_EXCL`` file
  naming how to re-open the source, and the affinity owner (or a
  restarted worker) lazily *adopts* the session from that manifest on
  first use.  Read-only ``.rpstore`` column mmaps are shared
  copy-on-write across the fork, so N workers hold one copy of the
  measured data;
* a **supervisor** thread reaps crashed workers (``waitpid``) and forks
  replacements on a fresh control channel; connections in flight on
  other workers never notice;
* the parent answers ``/stats``, ``/metrics`` and ``/healthz`` itself by
  querying every worker over its control channel and merging —
  ``/metrics`` through :func:`~repro.server.app.prometheus_from_states`,
  the *same* function a single-process server renders through, so the
  two deployment shapes cannot drift.

Mutating requests without a session in the path (``POST /sessions``)
round-robin; per-session mutations (derive, navigate, close) pin to the
affinity owner, so a session's generation counter lives in exactly one
process.  ``DELETE`` unlinks the manifest; stale copies elsewhere age
out via the normal TTL/LRU eviction and are unreachable anyway (affinity
never routes that sid elsewhere).
"""

from __future__ import annotations

import json
import os
import re
import shutil
import signal
import socket
import tempfile
import threading
import time
import uuid
import zlib

from repro.server.app import AnalysisApp, prometheus_from_states

__all__ = ["PoolWorker", "ServerPool", "merge_stats_payloads", "worker_main"]

#: largest first-request prefix the parent will peek while routing
_PEEK_LIMIT = 2048

#: request line / Host header wait before a silent connection is dropped
_PEEK_TIMEOUT_S = 5.0

#: control-channel datagram buffer (STATS replies carry full endpoint maps)
_CTRL_BUF = 4 * 1024 * 1024

#: largest single SOCK_SEQPACKET datagram a framed reply is split into —
#: must stay safely below the kernel socket buffer (~208 KiB default on
#: Linux), where a single oversized send would fail with EMSGSIZE
_CTRL_CHUNK = 60 * 1024

#: paths the parent pool answers itself, with merged worker state
_POOL_PATHS = frozenset(
    prefix + name
    for prefix in ("/", "/v1/")
    for name in ("stats", "metrics", "healthz")
)

_SID_RE = re.compile(rb"^[A-Z]+ (?:/v1)?/sessions/([^/ ?]+)")
#: corpus open-by-id carrying its session id as a query parameter —
#: routed to the sid's affinity worker so the open and every follow-up
#: /sessions/<sid>/... request land on the same process (one pin owner,
#: one resident experiment, no adoption churn)
_CORPUS_SID_RE = re.compile(rb"^[A-Z]+ (?:/v1)?/corpus/[^ ]*[?&]sid=([^&# ]+)")
_PATH_RE = re.compile(rb"^[A-Z]+ ([^ ?]+)")


# --------------------------------------------------------------------- #
# control-channel framing
# --------------------------------------------------------------------- #
def _ctrl_send(ctrl: socket.socket, payload: bytes) -> None:
    """Send a reply as a length header datagram followed by chunks.

    SOCK_SEQPACKET sends each buffer as one datagram, and a datagram
    larger than the socket buffer fails outright with EMSGSIZE — it is
    never split by the kernel.  STATS replies (full endpoint maps plus
    the slow-request ring) can plausibly outgrow that, so replies are
    framed: ``LEN <n>`` first, then ``ceil(n / _CTRL_CHUNK)`` chunks.
    """
    ctrl.sendall(b"LEN %d" % len(payload))
    for offset in range(0, len(payload), _CTRL_CHUNK):
        ctrl.sendall(payload[offset:offset + _CTRL_CHUNK])


def _ctrl_recv(ctrl: socket.socket) -> bytes | None:
    """Reassemble one framed reply; ``None`` on EOF or a torn frame."""
    reply = ctrl.recv(_CTRL_BUF)
    if not reply:
        return None
    if not reply.startswith(b"LEN "):
        return reply  # unframed single-datagram reply (PONG)
    try:
        total = int(reply[4:])
    except ValueError:
        return None
    parts: list[bytes] = []
    received = 0
    while received < total:
        chunk = ctrl.recv(_CTRL_BUF)
        if not chunk:
            return None
        parts.append(chunk)
        received += len(chunk)
    return b"".join(parts)


# --------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------- #
class _WorkerServerShim:
    """The attributes of the HTTP server a passed-fd handler touches."""

    def __init__(self, app: AnalysisApp, slot: int, workers: int) -> None:
        self.app = app
        #: this worker's affinity slot and the pool width: the request
        #: handler keeps a connection alive only while its requests name
        #: sessions that route here (crc32(sid) % pool_size == slot) and
        #: answers 421 when a kept-alive connection switches to a
        #: session another worker owns — see
        #: :meth:`~repro.server.http.AnalysisRequestHandler._affinity_guard`
        self.affinity_slot = slot
        self.pool_size = workers


def worker_main(ctrl: socket.socket, config: dict, slot: int) -> None:
    """Run one worker: build the app, then serve fds off the control channel.

    Never returns — exits the process via ``os._exit`` so a forked child
    cannot fall back into the parent's stack (atexit handlers, pytest
    internals, ...).
    """
    # the parent owns terminal signals; workers die on SIGTERM or when
    # the control channel reports EOF (parent gone)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, lambda *_: os._exit(0))
    exit_code = 0
    try:
        from repro.server.http import AnalysisRequestHandler

        app = AnalysisApp(
            cache_size=config.get("cache_size", 256),
            max_body=config["max_body"],
            max_inflight=config.get("max_inflight"),
            request_timeout_s=config.get("request_timeout_s"),
            session_ttl_s=config.get("session_ttl_s"),
            max_sessions=config.get("max_sessions"),
            scope_budget=config.get("scope_budget"),
            slow_ms=config.get("slow_ms"),
            # every worker opens the same catalog: mutations serialize on
            # the journal flock, reads replay the shared journal.  The
            # compaction sweep runs in worker 0 only — any worker *can*
            # compact safely, but one sweeper avoids N-way lock churn.
            corpus_root=config.get("corpus_root"),
            corpus_compact_interval_s=(
                config.get("corpus_compact_interval_s") if slot == 0
                else None
            ),
            diff_cache_size=config.get("diff_cache_size", 8),
        )
        # preloads run with a plain counter — every worker opens the same
        # sources in the same order, so ids agree by construction and no
        # manifests are written for them; only then is the manifest
        # directory attached, making dynamically created sessions (and
        # crash-restart adoption) cluster-consistent
        for path in config.get("databases") or []:
            app.registry.open_database(path)
        if config.get("workload") is not None:
            app.registry.open_workload(
                config["workload"],
                nranks=config.get("nranks", 1),
                seed=config.get("seed", 12345),
            )
        app.registry.manifest_dir = config["manifest_dir"]
        shim = _WorkerServerShim(app, slot, config.get("workers", 1))

        def _serve(fd: int) -> None:
            conn = socket.socket(fileno=fd)
            try:
                try:
                    peer = conn.getpeername()
                except OSError:
                    peer = ("", 0)
                AnalysisRequestHandler(conn, peer, shim)
            except Exception:  # noqa: BLE001 - a broken conn kills no worker
                pass
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

        while True:
            try:
                msg, fds, _flags, _addr = socket.recv_fds(ctrl, _CTRL_BUF, 8)
            except OSError:
                break
            if not msg:  # EOF: parent is gone
                break
            if msg == b"CONN" and fds:
                fd = fds[0]
                for extra in fds[1:]:  # defensive: never leak descriptors
                    os.close(extra)
                threading.Thread(
                    target=_serve, args=(fd,), daemon=True
                ).start()
            elif msg == b"STATS":
                reply = json.dumps({
                    "pid": os.getpid(),
                    "slot": slot,
                    "stats": app.stats_payload(),
                    "mstate": app.metrics_state(),
                }).encode("utf-8")
                try:
                    _ctrl_send(ctrl, reply)
                except OSError:
                    continue  # a failed scrape must not kill the worker
            elif msg == b"PING":
                try:
                    ctrl.sendall(b"PONG")
                except OSError:
                    continue  # if the parent is gone, recv reports EOF
            elif msg == b"STOP":
                break
            else:
                for fd in fds:
                    os.close(fd)
    except Exception:  # pragma: no cover - startup failure is fatal
        import traceback

        traceback.print_exc()
        exit_code = 1
    os._exit(exit_code)


# --------------------------------------------------------------------- #
# stats merging (the /stats analogue of prometheus_from_states)
# --------------------------------------------------------------------- #
def merge_stats_payloads(payloads: list[dict]) -> dict:
    """Sum per-worker ``/stats`` payloads into one pool-wide view.

    Counters (requests, errors, shed, cache hits/misses, evictions,
    resident scopes) add; per-endpoint latency merges as weighted mean /
    min-of-min / max-of-max; ``uptime_s`` is the oldest worker's.
    ``sessions`` adds too: a session adopted by two workers (creator and
    affinity owner) genuinely is resident twice.
    """
    endpoints: dict[str, dict] = {}
    merged = {
        "uptime_s": 0.0,
        "requests": {"total": 0, "errors": 0, "shed": 0, "inflight": 0},
        "endpoints": endpoints,
        "cache": {},
        "sessions": 0,
        "resident_scopes": 0,
        "evictions": 0,
    }
    slow: list[dict] | None = None
    for payload in payloads:
        merged["uptime_s"] = max(merged["uptime_s"],
                                 payload.get("uptime_s", 0.0))
        for key in ("total", "errors", "shed", "inflight"):
            merged["requests"][key] += payload.get("requests", {}).get(key, 0)
        for key in ("sessions", "resident_scopes", "evictions"):
            merged[key] += payload.get(key, 0)
        for key, value in payload.get("cache", {}).items():
            if isinstance(value, (int, float)):
                merged["cache"][key] = merged["cache"].get(key, 0) + value
            else:  # e.g. a capacity echoed as None
                merged["cache"].setdefault(key, value)
        for label, entry in payload.get("endpoints", {}).items():
            into = endpoints.setdefault(label, {
                "count": 0, "errors": 0,
                "latency_ms": {"mean": 0.0, "min": None, "max": 0.0},
                "_sum_ms": 0.0,
            })
            into["count"] += entry["count"]
            into["errors"] += entry["errors"]
            lat = entry.get("latency_ms", {})
            into["_sum_ms"] += lat.get("mean", 0.0) * entry["count"]
            low = lat.get("min")
            if low is not None and (into["latency_ms"]["min"] is None
                                    or low < into["latency_ms"]["min"]):
                into["latency_ms"]["min"] = low
            into["latency_ms"]["max"] = max(into["latency_ms"]["max"],
                                            lat.get("max", 0.0))
        if "slow_requests" in payload:
            slow = (slow or []) + list(payload["slow_requests"])
    for entry in endpoints.values():
        if entry["count"]:
            entry["latency_ms"]["mean"] = entry.pop("_sum_ms") / entry["count"]
        else:
            entry.pop("_sum_ms")
            entry["latency_ms"]["mean"] = 0.0
        if entry["latency_ms"]["min"] is None:
            entry["latency_ms"]["min"] = 0.0
    if slow is not None:
        merged["slow_requests"] = slow
    return merged


# --------------------------------------------------------------------- #
# parent side
# --------------------------------------------------------------------- #
class PoolWorker:
    """Parent-side record of one worker slot."""

    def __init__(self, slot: int) -> None:
        self.slot = slot
        self.pid: int | None = None
        self.ctrl: socket.socket | None = None
        self.restarts = -1  # first spawn brings it to 0
        self.lock = threading.Lock()  # serializes control-channel traffic

    @property
    def alive(self) -> bool:
        return self.pid is not None

    def info(self) -> dict:
        return {
            "slot": self.slot,
            "pid": self.pid,
            "alive": self.alive,
            "restarts": max(self.restarts, 0),
        }


class ServerPool:
    """Accepting parent + N forked analysis workers on one address.

    ``start()`` binds, forks, and begins accepting in background
    threads; ``close()`` tears everything down.  Usable with
    ``workers=1`` too (same serving path, no special cases), which is
    what the benchmark's scaling curve uses as its baseline.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        config: dict | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.host = host
        self.port = port
        self.num_workers = workers
        self.config = dict(config or {})
        self.config.setdefault("max_body", 1 << 20)
        self.listener: socket.socket | None = None
        self.workers = [PoolWorker(i) for i in range(workers)]
        self._rr = 0
        self._rr_lock = threading.Lock()
        self._started = time.time()
        self._closing = threading.Event()
        self._threads: list[threading.Thread] = []
        self._manifest_dir: str | None = None
        self._owns_manifest = False

    # -- lifecycle ------------------------------------------------------ #
    @property
    def address(self) -> tuple[str, int]:
        assert self.listener is not None, "pool not started"
        return self.listener.getsockname()[:2]

    def start(self) -> "ServerPool":
        manifest = self.config.get("manifest_dir")
        if manifest is None:
            manifest = tempfile.mkdtemp(prefix="repro-pool-")
            self._owns_manifest = True
        os.makedirs(manifest, exist_ok=True)
        self._manifest_dir = self.config["manifest_dir"] = manifest
        self.config["workers"] = self.num_workers
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.listener.bind((self.host, self.port))
        self.listener.listen(128)
        for worker in self.workers:
            self._spawn(worker)
        for target, name in (
            (self._accept_loop, "pool-accept"),
            (self._supervise, "pool-supervisor"),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def _spawn(self, worker: PoolWorker) -> None:
        parent_sock, child_sock = socket.socketpair(
            socket.AF_UNIX, socket.SOCK_SEQPACKET
        )
        pid = os.fork()
        if pid == 0:  # ---- child ----
            parent_sock.close()
            if self.listener is not None:
                self.listener.close()
            for other in self.workers:  # inherited siblings' channel ends
                if other.ctrl is not None:
                    other.ctrl.close()
            worker_main(child_sock, self.config, worker.slot)
            os._exit(0)  # unreachable; worker_main never returns
        # ---- parent ----
        child_sock.close()
        parent_sock.settimeout(_PEEK_TIMEOUT_S)
        worker.pid = pid
        worker.ctrl = parent_sock
        worker.restarts += 1

    def close(self) -> None:
        """Stop accepting, terminate workers, release the manifest dir."""
        self._closing.set()
        if self.listener is not None:
            try:
                self.listener.close()
            except OSError:
                pass
        for worker in self.workers:
            if worker.pid is not None:
                try:
                    os.kill(worker.pid, signal.SIGTERM)
                except ProcessLookupError:
                    pass
        deadline = time.monotonic() + 5.0
        for worker in self.workers:
            pid, worker.pid = worker.pid, None
            if worker.ctrl is not None:
                try:
                    worker.ctrl.close()
                except OSError:
                    pass
                worker.ctrl = None
            while pid is not None:
                try:
                    reaped, _status = os.waitpid(pid, os.WNOHANG)
                except ChildProcessError:
                    break
                if reaped == pid:
                    break
                if time.monotonic() > deadline:
                    try:
                        os.kill(pid, signal.SIGKILL)
                        os.waitpid(pid, 0)
                    except (ProcessLookupError, ChildProcessError):
                        pass
                    break
                time.sleep(0.02)
        if self._owns_manifest and self._manifest_dir is not None:
            shutil.rmtree(self._manifest_dir, ignore_errors=True)

    def __enter__(self) -> "ServerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- supervision ---------------------------------------------------- #
    def _supervise(self) -> None:
        """Reap crashed workers and fork replacements on fresh channels."""
        while not self._closing.is_set():
            try:
                pid, _status = os.waitpid(-1, os.WNOHANG)
            except ChildProcessError:
                pid = 0
            if pid:
                for worker in self.workers:
                    if worker.pid == pid:
                        if worker.ctrl is not None:
                            try:
                                worker.ctrl.close()
                            except OSError:
                                pass
                            worker.ctrl = None
                        worker.pid = None
                        if not self._closing.is_set():
                            self._spawn(worker)
                        break
                continue  # reap eagerly: there may be more corpses
            self._closing.wait(0.1)

    # -- accept + route ------------------------------------------------- #
    def _accept_loop(self) -> None:
        assert self.listener is not None
        while not self._closing.is_set():
            try:
                conn, _addr = self.listener.accept()
            except OSError:  # listener closed — shutting down
                return
            threading.Thread(
                target=self._route, args=(conn,), daemon=True
            ).start()

    def _peek_request(self, conn: socket.socket) -> bytes:
        """The first request's opening bytes, left unread in the kernel.

        Waits (within the peek budget) for the request line's CRLF: a
        line split across TCP segments must not be routed on a partial
        prefix — ``/sessions/s12/...`` truncated after ``s1`` would hash
        to the wrong affinity slot.  A connection that never completes
        its request line inside the budget is dropped, not misrouted.
        """
        deadline = time.monotonic() + _PEEK_TIMEOUT_S
        data = b""
        while b"\r\n" not in data and len(data) < _PEEK_LIMIT:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return b""
            conn.settimeout(remaining)
            chunk = conn.recv(_PEEK_LIMIT, socket.MSG_PEEK)
            if not chunk:
                return b""  # EOF before any data
            if chunk == data:
                # peeked bytes unchanged: the rest is still in flight
                time.sleep(0.005)
                continue
            data = chunk
        return data

    def _pick_slot(self, head: bytes) -> int:
        match = _SID_RE.match(head) or _CORPUS_SID_RE.match(head)
        if match:
            return zlib.crc32(match.group(1)) % self.num_workers
        with self._rr_lock:
            slot = self._rr
            self._rr = (self._rr + 1) % self.num_workers
        return slot

    def _route(self, conn: socket.socket) -> None:
        try:
            head = self._peek_request(conn)
            if not head:
                conn.close()
                return
            path_match = _PATH_RE.match(head)
            path = path_match.group(1).decode("latin-1") if path_match else ""
            if path in _POOL_PATHS:
                self._serve_pool_endpoint(conn, head, path)
                return
            slot = self._pick_slot(head)
            conn.settimeout(None)
            self._hand_off(conn, slot)
        except (OSError, ValueError):
            try:
                conn.close()
            except OSError:
                pass

    def _hand_off(self, conn: socket.socket, slot: int) -> None:
        """Pass the connection fd to a worker; fall over to live siblings."""
        for attempt in range(self.num_workers):
            worker = self.workers[(slot + attempt) % self.num_workers]
            ctrl = worker.ctrl
            if ctrl is None:
                continue
            try:
                with worker.lock:
                    socket.send_fds(ctrl, [b"CONN"], [conn.fileno()])
                conn.close()  # worker holds its own duplicate now
                return
            except OSError:
                continue  # freshly dead; supervisor will refork it
        self._respond(
            conn, 503,
            self._error_payload(503, "no-worker",
                               "no live worker to take the connection"),
        )
        conn.close()

    # -- pool endpoints ------------------------------------------------- #
    def _query_worker(self, worker: PoolWorker, message: bytes) -> dict | None:
        ctrl = worker.ctrl
        if ctrl is None:
            return None
        try:
            with worker.lock:
                ctrl.sendall(message)
                reply = _ctrl_recv(ctrl)
            if reply is None:
                return None
            return json.loads(reply.decode("utf-8"))
        except (OSError, ValueError):
            return None

    def _scrape(self) -> tuple[list[dict], list[dict]]:
        """Per-worker infos and their STATS replies (dead workers skipped)."""
        infos, replies = [], []
        for worker in self.workers:
            info = worker.info()
            reply = self._query_worker(worker, b"STATS")
            if reply is None:
                info["alive"] = False
            else:
                info["pid"] = reply["pid"]
                replies.append(reply)
            infos.append(info)
        return infos, replies

    def _pool_payload(self, path: str) -> tuple[int, bytes, str]:
        infos, replies = self._scrape()
        name = path.rsplit("/", 1)[-1]
        if name == "metrics":
            text = prometheus_from_states(
                [r["mstate"] for r in replies] or [_EMPTY_METRICS_STATE]
            )
            return 200, text.encode("utf-8"), "text/plain; version=0.0.4"
        if name == "healthz":
            alive = sum(1 for info in infos if info["alive"])
            status = 200 if alive == self.num_workers else 503
            payload = {
                "status": "ok" if status == 200 else "degraded",
                "workers": infos,
                "alive": alive,
                "expected": self.num_workers,
            }
            if status != 200:
                payload = self._error_payload(
                    503, "degraded-pool",
                    f"{alive}/{self.num_workers} workers alive",
                    workers=infos,
                )
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            return status, body, "application/json"
        merged = merge_stats_payloads([r["stats"] for r in replies])
        merged["pool"] = {
            "workers": infos,
            "uptime_s": time.time() - self._started,
        }
        return (200, json.dumps(merged, sort_keys=True).encode("utf-8"),
                "application/json")

    @staticmethod
    def _error_payload(status: int, code: str, message: str, **extra) -> dict:
        error = {
            "status": status,
            "code": code,
            "message": message,
            "trace_id": uuid.uuid4().hex[:16],
        }
        error.update(extra)
        return {"error": error}

    def _serve_pool_endpoint(
        self, conn: socket.socket, head: bytes, path: str
    ) -> None:
        """Answer a monitoring request in the parent, then close.

        The peeked bytes are still unread; consume the request's header
        block (monitoring requests carry no body) before replying, and
        always close — aggregation happens at the front door, so these
        connections are not worth keeping alive.
        """
        data = head
        conn.settimeout(_PEEK_TIMEOUT_S)  # _peek_request may have shrunk it
        try:
            conn.recv(len(head))  # consume what was peeked
            while b"\r\n\r\n" not in data and len(data) < 64 * 1024:
                chunk = conn.recv(8192)
                if not chunk:
                    break
                data += chunk
        except OSError:
            conn.close()
            return
        method = head.split(b" ", 1)[0]
        if method != b"GET":
            status, body, ctype = (
                405,
                json.dumps(self._error_payload(
                    405, "method-not-allowed",
                    f"{method.decode('latin-1')} not supported on {path}",
                ), sort_keys=True).encode("utf-8"),
                "application/json",
            )
        else:
            status, body, ctype = self._pool_payload(path)
        self._respond(conn, status, body, ctype)
        conn.close()

    @staticmethod
    def _respond(
        conn: socket.socket,
        status: int,
        body: bytes | dict,
        content_type: str = "application/json",
    ) -> None:
        if isinstance(body, dict):
            body = json.dumps(body, sort_keys=True).encode("utf-8")
        reason = {200: "OK", 405: "Method Not Allowed",
                  503: "Service Unavailable"}.get(status, "Error")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        try:
            conn.sendall(head + body)
        except OSError:
            pass


#: what /metrics merges when every worker is momentarily unreachable
_EMPTY_METRICS_STATE = {
    "endpoints": {}, "shed": 0, "inflight": 0, "sessions": 0,
    "resident_scopes": 0, "evictions": 0,
    "cache": {"entries": 0, "hits": 0, "misses": 0},
    "uptime_s": 0.0, "slow_observed": None,
}


# --------------------------------------------------------------------- #
def run_pool(args) -> int:  # pragma: no cover - exercised via CLI/subprocess
    """Serve with ``args.workers`` forked workers until interrupted."""
    config = {
        "databases": args.databases,
        "workload": args.workload,
        "nranks": args.nranks,
        "seed": args.seed,
        "cache_size": args.cache_size,
        "max_body": args.max_body,
        "max_inflight": args.max_inflight or None,
        "request_timeout_s": args.request_timeout,
        "session_ttl_s": args.session_ttl,
        "max_sessions": args.max_sessions,
        "scope_budget": args.scope_budget,
        "slow_ms": args.slow_ms,
        "corpus_root": args.corpus,
        "corpus_compact_interval_s": args.corpus_compact_interval,
        "diff_cache_size": args.diff_cache_size,
    }
    pool = ServerPool(
        host=args.host, port=args.port, workers=args.workers, config=config
    )
    pool.start()
    host, port = pool.address
    pids = ", ".join(str(w.pid) for w in pool.workers)
    print(f"repro-serve pool listening on http://{host}:{port}/ "
          f"({args.workers} workers: pids {pids}; Ctrl-C to stop)",
          flush=True)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("shutting down pool")
    finally:
        pool.close()
    return 0

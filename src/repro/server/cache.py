"""Thread-safe LRU cache for rendered tables and query results.

Keys are flat tuples built by the application layer:
``(session id, generation, view kind, sort spec, flatten depth,
hot-path threshold, …render knobs)``.  The session *generation* — a
counter bumped on every mutation (derived-metric definition, flatten,
unflatten) — makes stale entries unreachable the moment a mutation
lands; :meth:`RenderCache.invalidate_session` additionally drops them
eagerly so a mutated session does not pin dead renders in the LRU.

The cache never stores failures: only successful responses are put, so
an error (e.g. a formula that fails to evaluate) is recomputed — and
re-reported — on every attempt.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable

__all__ = ["RenderCache"]


class RenderCache:
    """A bounded LRU mapping with hit/miss/eviction accounting."""

    def __init__(self, maxsize: int = 256) -> None:
        self.maxsize = max(0, int(maxsize))
        self._lock = threading.Lock()
        self._data: OrderedDict[tuple, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # ------------------------------------------------------------------ #
    def get(self, key: Hashable):
        """The cached value for *key*, or None; refreshes LRU order."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value) -> None:
        if self.maxsize == 0:
            return
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    # ------------------------------------------------------------------ #
    def invalidate_session(self, sid: str) -> int:
        """Drop every entry belonging to session *sid* (key[0] == sid)."""
        with self._lock:
            stale = [k for k in self._data if k and k[0] == sid]
            for k in stale:
                del self._data[k]
            self.invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self.invalidations += len(self._data)
            self._data.clear()

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def stats(self) -> dict:
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "entries": len(self._data),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "hit_rate": (self.hits / lookups) if lookups else 0.0,
            }

"""The binary columnar wire format (``application/x-repro-columnar``).

JSON is the service's default response encoding and stays
byte-compatible, but it pays a per-cell cost: every row of a rendered
table is materialized as a Python object and every float is printed and
reparsed.  The columnar encoding ships the same table as a framed
header plus raw little-endian column slabs taken directly from the
columnar engine's float64 matrices — no per-row objects, no number
formatting, and a decode that is one ``frombuffer`` per column.

Frame layout (all integers little-endian)::

    offset  size  field
    0       4     magic  b"RPCT"
    4       2     format version (currently 1)
    6       2     flags (reserved, 0)
    8       4     header length H in bytes
    12      H     header: UTF-8 JSON object
    12+H    ...   numeric column slabs, in header column order

The header carries the table metadata and every non-numeric column::

    {"view": ..., "generation": ..., "row_count": N,
     "columns": [{"name": ..., "dtype": "str"|"int64"|"float64"}, ...],
     "strings": {"<column name>": ["...", ...]}}

Each numeric column follows as exactly ``8 * row_count`` bytes
(``<f8`` for float64, ``<i8`` for int64).  String columns (the scope
names) live in the header — they are needed as decoded text anyway.

Parity contract: :func:`decode_columnar` of an encoded
:class:`TableSnapshot` compares equal — including float *bit*
identity — to the snapshot's JSON payload, because JSON float64
round-trips exactly through ``repr``/``float`` and the slabs carry the
identical binary64 values.  The property suite and the golden corpus
pin this.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import BadRequest

__all__ = [
    "COLUMNAR_CONTENT_TYPE",
    "TableSnapshot",
    "accepts_columnar",
    "decode_columnar",
    "encode_columnar",
]

#: the negotiated media type for framed columnar responses
COLUMNAR_CONTENT_TYPE = "application/x-repro-columnar"

_MAGIC = b"RPCT"
_VERSION = 1
_PREFIX = struct.Struct("<4sHHI")  # magic, version, flags, header length

_DTYPES = {"float64": np.dtype("<f8"), "int64": np.dtype("<i8")}


@dataclass(frozen=True)
class TableSnapshot:
    """One rendered view as columns — the unit the table endpoint caches.

    ``names``/``depths`` are the navigation pane (display order: sorted
    siblings, expanded rows); ``labels[j]`` names metric column ``j`` of
    ``values`` (a ``(row_count, len(labels))`` float64 matrix gathered
    straight from the engine matrices, never via per-row dicts).
    """

    view: str
    generation: int
    names: tuple[str, ...]
    depths: np.ndarray          # int64, shape (row_count,)
    labels: tuple[str, ...]
    values: np.ndarray          # float64, shape (row_count, len(labels))
    truncated: int = 0          #: rows beyond max_rows that were dropped

    @property
    def row_count(self) -> int:
        return len(self.names)

    def columns_meta(self) -> list[dict]:
        meta = [{"name": "scope", "dtype": "str"},
                {"name": "depth", "dtype": "int64"}]
        meta.extend({"name": label, "dtype": "float64"}
                    for label in self.labels)
        return meta

    def to_rows(self) -> list[list]:
        """Row-major cells, exactly as the JSON encoding ships them."""
        depths = self.depths.tolist()
        cells = self.values.tolist()  # C-order: one list per row
        return [
            [name, depth, *row]
            for name, depth, row in zip(self.names, depths, cells)
        ]

    def to_json_payload(self, session: str) -> dict:
        return {
            "view": self.view,
            "session": session,
            "generation": self.generation,
            "row_count": self.row_count,
            "truncated": self.truncated,
            "columns": self.columns_meta(),
            "rows": self.to_rows(),
        }


# --------------------------------------------------------------------- #
def encode_columnar(snapshot: TableSnapshot) -> bytes:
    """Frame a :class:`TableSnapshot` as columnar wire bytes."""
    header = {
        "view": snapshot.view,
        "generation": snapshot.generation,
        "row_count": snapshot.row_count,
        "truncated": snapshot.truncated,
        "columns": snapshot.columns_meta(),
        "strings": {"scope": list(snapshot.names)},
    }
    header_bytes = json.dumps(
        header, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    parts = [
        _PREFIX.pack(_MAGIC, _VERSION, 0, len(header_bytes)),
        header_bytes,
        np.ascontiguousarray(snapshot.depths, dtype="<i8").tobytes(),
    ]
    values = np.ascontiguousarray(snapshot.values, dtype="<f8")
    for j in range(values.shape[1]):
        # one contiguous slab per column: the decoder's frombuffer view
        parts.append(np.ascontiguousarray(values[:, j]).tobytes())
    return b"".join(parts)


def _bad(message: str) -> BadRequest:
    return BadRequest(message, code="bad-columnar-frame")


def decode_columnar(data: bytes) -> dict:
    """Decode a columnar frame into the JSON table payload shape.

    The result carries ``view``/``generation``/``row_count``/
    ``truncated``/``columns``/``rows`` with values equal (floats
    bit-identical) to the server's JSON encoding of the same table;
    only the transport-level ``session`` field is absent.
    """
    if len(data) < _PREFIX.size:
        raise _bad(f"columnar frame truncated at {len(data)} bytes")
    magic, version, _flags, header_len = _PREFIX.unpack_from(data)
    if magic != _MAGIC:
        raise _bad(f"bad columnar magic {magic!r}")
    if version != _VERSION:
        raise _bad(f"unsupported columnar version {version}")
    end = _PREFIX.size + header_len
    if len(data) < end:
        raise _bad("columnar header extends past the frame")
    try:
        header = json.loads(data[_PREFIX.size:end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise _bad(f"columnar header is not valid JSON: {exc}") from None
    row_count = header.get("row_count")
    columns = header.get("columns")
    strings = header.get("strings", {})
    if not isinstance(row_count, int) or not isinstance(columns, list):
        raise _bad("columnar header missing row_count/columns")
    series: list[list] = []
    offset = end
    for col in columns:
        dtype = col.get("dtype")
        if dtype == "str":
            values = strings.get(col.get("name"))
            if not isinstance(values, list) or len(values) != row_count:
                raise _bad(f"string column {col.get('name')!r} missing "
                           "from the header")
            series.append(values)
            continue
        np_dtype = _DTYPES.get(dtype)
        if np_dtype is None:
            raise _bad(f"unknown column dtype {dtype!r}")
        size = row_count * np_dtype.itemsize
        if len(data) < offset + size:
            raise _bad(f"column slab for {col.get('name')!r} is truncated")
        column = np.frombuffer(data, dtype=np_dtype, count=row_count,
                               offset=offset)
        series.append(column.tolist())
        offset += size
    if offset != len(data):
        raise _bad(f"{len(data) - offset} trailing bytes after the last "
                   "column slab")
    return {
        "view": header.get("view"),
        "generation": header.get("generation"),
        "row_count": row_count,
        "truncated": header.get("truncated", 0),
        "columns": columns,
        "rows": [list(cells) for cells in zip(*series)] if series else [],
    }


def accepts_columnar(accept: str | None) -> bool:
    """Does an ``Accept`` header value ask for the columnar encoding?"""
    if not accept:
        return False
    return any(
        part.split(";", 1)[0].strip().lower() == COLUMNAR_CONTENT_TYPE
        for part in accept.split(",")
    )

"""Session registry and the pure render core of the analysis service.

A *session* wraps one :class:`~repro.viewer.session.ViewerSession` with
the bookkeeping concurrency needs:

* a per-session :class:`threading.RLock` — every operation that touches
  session state (render, sort, flatten, derived metrics, hot path) runs
  under it, so two clients sharing a session serialize against each
  other while distinct sessions proceed in parallel;
* a *generation* counter, bumped by every mutation that can change what
  a render shows (derived-metric definition, flatten, unflatten).  The
  generation is part of every cache key, so mutation makes stale cache
  entries unreachable by construction;
* the session's current *sort spec*, set by the ``sort`` endpoint and
  used as the default column for renders and hot paths.

:func:`render_snapshot` is deliberately a module-level pure function of
``(session state, request arguments)`` rather than a method on the
handle: the Hypothesis equivalence suite replays recorded operation
sequences against a fresh, lock-free, uncached :class:`ViewerSession`
through this same function and asserts byte-identical output — which is
exactly the statement that the cache key captures everything the render
depends on.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.errors import DatabaseError
from repro.core.hotpath import HotPathResult
from repro.obs.spans import span
from repro.core.metrics import MetricFlavor, MetricSpec
from repro.core.views import ViewKind
from repro.hpcprof import database
from repro.hpcprof.experiment import Experiment
from repro.server.deadline import checkpoint
from repro.server.wire import TableSnapshot
from repro.errors import BadRequest, Conflict, NotFound
from repro.viewer.navigation import NavigationState
from repro.viewer.session import ViewerSession
from repro.viewer.table import TableOptions, render_table

__all__ = [
    "WORKLOADS",
    "SessionHandle",
    "SessionRegistry",
    "SortSpec",
    "render_snapshot",
    "hot_path_snapshot",
    "table_snapshot",
    "load_workload",
]

#: synthetic workloads the service can load without a database on disk
WORKLOADS = ("fig1", "s3d", "moab", "pflotran")

#: client-chosen session ids (corpus open-by-id routing): URL- and
#: filename-safe, bounded, no path separators
_CLIENT_SID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def load_workload(name: str, nranks: int = 1, seed: int = 12345) -> Experiment:
    """Build an experiment for one of the bundled synthetic workloads."""
    if name not in WORKLOADS:
        raise NotFound(
            f"unknown workload {name!r} (have: {', '.join(WORKLOADS)})",
            code="unknown-workload",
        )
    import importlib

    module = importlib.import_module(f"repro.sim.workloads.{name}")
    return Experiment.from_program(module.build(), nranks=nranks, seed=seed)


@dataclass(frozen=True, slots=True)
class SortSpec:
    """The session-level sort state (the selected metric column)."""

    metric: str
    flavor: MetricFlavor = MetricFlavor.INCLUSIVE
    descending: bool = True

    def to_payload(self) -> dict:
        return {
            "metric": self.metric,
            "flavor": self.flavor.value,
            "descending": self.descending,
        }


class SessionHandle:
    """One registered session: viewer state + lock + cache generation."""

    def __init__(self, sid: str, session: ViewerSession, label: str) -> None:
        self.sid = sid
        self.session = session
        self.label = label
        self.lock = threading.RLock()
        self.generation = 0
        self.sort: SortSpec | None = None
        #: monotonic timestamp of the last registry access (TTL eviction)
        self.last_used: float = 0.0

    @property
    def approx_cost(self) -> int:
        """Rough memory weight of the session, in CCT scopes.

        The registry's memory budget is expressed in scopes: the CCT
        (nodes, metric dicts, view projections) dominates a session's
        footprint and scales linearly with scope count, so a scope
        budget bounds memory without a fragile bytes estimate.
        """
        exp = self.session.experiment
        scopes = len(exp.cct)
        if exp.rank_ccts:
            scopes += sum(len(c) for c in exp.rank_ccts)
        return max(1, scopes)

    def bump(self) -> int:
        """Advance the generation after a render-visible mutation."""
        self.generation += 1
        return self.generation

    @property
    def flatten_depth(self) -> int:
        """Current Flat View flattening depth (0 when not yet built)."""
        flat = self.session._views.get(ViewKind.FLAT)
        return flat.flatten_depth if flat is not None else 0

    def info(self) -> dict:
        exp = self.session.experiment
        return {
            "id": self.sid,
            "label": self.label,
            "experiment": exp.name,
            "scopes": len(exp.cct),
            "ranks": exp.nranks,
            "metrics": len(exp.metrics),
            "loaded_views": self.session.loaded_views,
            "flatten_depth": self.flatten_depth,
            "generation": self.generation,
            "sort": self.sort.to_payload() if self.sort else None,
        }


class SessionRegistry:
    """Thread-safe id → :class:`SessionHandle` map with bounded residency.

    Three independent, optional limits keep a long-lived service inside
    a memory budget; all default to off, preserving the unbounded
    behaviour embedded callers expect:

    * ``max_sessions`` — LRU count cap: registering one past the limit
      evicts the least-recently-used session;
    * ``ttl_s`` — sessions idle longer than this are evicted lazily on
      the next registry access;
    * ``scope_budget`` — total :attr:`SessionHandle.approx_cost` cap
      (CCT scopes across all resident sessions); LRU eviction until the
      new total fits.  The most recent session is never evicted by the
      budget, so opening an oversized database still works — it just
      evicts everything idle.

    *on_evict* is called (outside the registry lock) for each evicted
    handle; the application uses it to purge the render cache, keeping
    "evicted" indistinguishable from "closed" — a later request for the
    sid gets ``404 unknown-session``.
    """

    def __init__(
        self,
        max_sessions: int | None = None,
        ttl_s: float | None = None,
        scope_budget: int | None = None,
        clock: Callable[[], float] = time.monotonic,
        on_evict: Callable[[SessionHandle], None] | None = None,
        manifest_dir: str | None = None,
        on_adopt: Callable[[SessionHandle, dict], None] | None = None,
    ) -> None:
        self._lock = threading.Lock()
        self._handles: OrderedDict[str, SessionHandle] = OrderedDict()
        self._next_id = 1
        self.max_sessions = max_sessions
        self.ttl_s = ttl_s
        self.scope_budget = scope_budget
        self.clock = clock
        self.on_evict = on_evict
        #: called after a manifest adoption with ``(handle, spec)`` —
        #: the application re-establishes cross-process state the
        #: creating worker held in memory (e.g. the corpus pin)
        self.on_adopt = on_adopt
        self.evictions = 0
        #: shared directory recording how each dynamically-opened session
        #: was built (multi-worker mode).  Doubles as the cluster-wide sid
        #: allocator (files are created O_EXCL) and lets a sibling worker
        #: — or a restarted one — lazily re-open a session it has never
        #: seen when affinity routing hands it the sid.
        self.manifest_dir = manifest_dir

    # -- eviction (call with the lock held; returns handles to notify) -- #
    def _sweep_locked(self, keep: str | None = None) -> list[SessionHandle]:
        evicted: list[SessionHandle] = []
        now = self.clock()
        if self.ttl_s is not None:
            for sid in [
                sid for sid, h in self._handles.items()
                if sid != keep and now - h.last_used > self.ttl_s
            ]:
                evicted.append(self._handles.pop(sid))
        def lru_victims():
            return [sid for sid in self._handles if sid != keep]
        if self.max_sessions is not None:
            while len(self._handles) > self.max_sessions:
                victims = lru_victims()
                if not victims:
                    break
                evicted.append(self._handles.pop(victims[0]))
        if self.scope_budget is not None:
            while (
                sum(h.approx_cost for h in self._handles.values())
                > self.scope_budget
            ):
                victims = lru_victims()
                if not victims:
                    break
                evicted.append(self._handles.pop(victims[0]))
        self.evictions += len(evicted)
        return evicted

    @staticmethod
    def _release_backing(handle: SessionHandle) -> None:
        """Drop an out-of-core session's memory maps on eviction/close.

        Store-backed experiments (:class:`repro.core.store.StoreExperiment`)
        hold open mmaps over their column files; a handle leaving the
        registry must not pin those mappings for the life of the process.
        ``release()`` is idempotent and absent on in-memory experiments.
        """
        release = getattr(handle.session.experiment, "release", None)
        if callable(release):
            release()

    def _notify(self, evicted: list[SessionHandle]) -> None:
        for handle in evicted:
            if self.on_evict is not None:
                self.on_evict(handle)
            self._release_backing(handle)

    # -- manifest plumbing (multi-worker session sharing) ---------------- #
    def _manifest_path(self, sid: str) -> str:
        return os.path.join(self.manifest_dir, f"{sid}.json")

    def _allocate_sid(self, spec: dict | None) -> str:
        """Next free sid; with a manifest dir, unique across the pool.

        The manifest file is created ``O_EXCL`` as the allocation lock:
        if a sibling worker already took ``s<N>``, the create fails and
        the counter advances.  Preloaded sessions (every worker opens
        the same list at startup) pass ``spec=None`` and use the plain
        counter — workers agree on those ids by construction.
        """
        with self._lock:
            while True:
                sid = f"s{self._next_id}"
                self._next_id += 1
                if self.manifest_dir is None or spec is None:
                    return sid
                try:
                    fd = os.open(
                        self._manifest_path(sid),
                        os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                    )
                except FileExistsError:
                    continue
                with os.fdopen(fd, "w") as fh:
                    json.dump(spec, fh)
                return sid

    def _claim_sid(self, sid: str, spec: dict | None) -> str:
        """Reserve a client-chosen sid (pool corpus open-by-id routing).

        The manifest file is created ``O_EXCL`` under the requested id —
        the same allocation lock :meth:`_allocate_sid` uses — so two
        workers claiming the same sid race safely: exactly one wins,
        the loser sees :class:`Conflict`.
        """
        if not _CLIENT_SID_RE.match(sid or ""):
            raise BadRequest(f"invalid session id {sid!r}", code="bad-sid")
        with self._lock:
            if sid in self._handles:
                raise Conflict(
                    f"session {sid!r} already exists", code="session-exists"
                )
        if self.manifest_dir is not None and spec is not None:
            try:
                fd = os.open(
                    self._manifest_path(sid),
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                )
            except FileExistsError:
                raise Conflict(
                    f"session {sid!r} already exists", code="session-exists"
                ) from None
            with os.fdopen(fd, "w") as fh:
                json.dump(spec, fh)
        return sid

    def _adopt(self, sid: str) -> SessionHandle | None:
        """Open a session a sibling worker created, pinned to its sid."""
        if self.manifest_dir is None:
            return None
        try:
            with open(self._manifest_path(sid)) as fh:
                spec = json.load(fh)
        except (OSError, ValueError):
            return None
        if spec.get("ensemble") is not None:
            handle = self.open_ensemble(
                spec["ensemble"], salvage=spec.get("salvage", False),
                stats=spec.get("stats", "all"), label=spec.get("label"),
                _sid=sid,
            )
        elif spec.get("database") is not None:
            handle = self.open_database(
                spec["database"], strict=not spec.get("salvage", False),
                corpus=spec.get("corpus"), _sid=sid,
            )
        else:
            handle = self.open_workload(
                spec["workload"], nranks=spec.get("nranks", 1),
                seed=spec.get("seed", 12345), _sid=sid,
            )
        if handle is not None and self.on_adopt is not None:
            self.on_adopt(handle, spec)
        return handle

    def register(
        self,
        experiment: Experiment,
        label: str,
        sid: str | None = None,
        spec: dict | None = None,
    ) -> SessionHandle:
        if sid is None:
            sid = self._allocate_sid(spec)
        with self._lock:
            existing = self._handles.get(sid)
            if existing is not None:  # adoption race: first one wins
                return existing
            handle = SessionHandle(sid, ViewerSession(experiment), label)
            handle.last_used = self.clock()
            self._handles[sid] = handle
            evicted = self._sweep_locked(keep=sid)
        self._notify(evicted)
        return handle

    def open_database(
        self, path: str, strict: bool = True,
        corpus: dict | None = None, sid_request: str | None = None,
        _sid: str | None = None,
    ) -> SessionHandle:
        spec = {"database": path, "salvage": not strict}
        if corpus is not None:
            # corpus provenance ({"tenant": ..., "id": ...}) survives in
            # the manifest so an adopting worker can re-establish the pin
            spec["corpus"] = dict(corpus)
        claimed = False
        if _sid is None and sid_request is not None:
            # claim before the (expensive) load so a losing racer fails
            # fast; the claimed manifest doubles as the adoption record
            _sid = self._claim_sid(sid_request, spec)
            claimed = True
        # no exists() probe: the open itself is the check (TOCTOU-free),
        # and a vanished file surfaces as DatabaseError -> 404 here
        try:
            experiment = database.load(path, strict=strict)
        except DatabaseError as exc:
            if claimed and self.manifest_dir is not None:
                try:  # release the claim: nothing to adopt from it
                    os.unlink(self._manifest_path(_sid))
                except OSError:
                    pass
            text = str(exc)
            if text.startswith("no such database"):
                raise NotFound(text, code="unknown-database") from None
            raise
        return self.register(experiment, label=path, sid=_sid, spec=spec)

    def open_workload(
        self, name: str, nranks: int = 1, seed: int = 12345,
        _sid: str | None = None,
    ) -> SessionHandle:
        return self.register(
            load_workload(name, nranks=nranks, seed=seed),
            label=f"workload:{name}", sid=_sid,
            spec={"workload": name, "nranks": nranks, "seed": seed},
        )

    def open_ensemble(
        self,
        databases: list[str],
        salvage: bool = False,
        stats: str = "all",
        label: str | None = None,
        _sid: str | None = None,
    ) -> SessionHandle:
        """Align N databases into a union-CCT ensemble session.

        The registered experiment is the union (member sums,
        re-attributed) with mean/min/max/stddev columns over the
        members attached per *stats* (``"all"`` raw metrics, ``"none"``,
        or one metric name).  The manifest spec records the member
        paths, so a sibling worker — or a restarted one — re-aligns the
        same ensemble when affinity routing hands it the sid.  The
        ensemble summary (members, union size, report) is stashed on
        the handle as ``ensemble_info``.
        """
        from repro.core.ensemble import align_experiments
        from repro.core.metrics import MetricKind

        ensemble = align_experiments(
            list(databases), strict=not salvage,
            name=label or f"ensemble:{len(databases)}",
        )
        if stats == "all":
            stat_names = [
                d.name for d in ensemble.union.metrics
                if d.kind is MetricKind.RAW
            ]
        elif stats in ("none", ""):
            stat_names = []
        else:
            stat_names = [stats]
        for metric in stat_names:
            ensemble.attach_stats(metric)
        handle = self.register(
            ensemble.union, label=label or f"ensemble:{len(databases)}",
            sid=_sid,
            spec={"ensemble": list(databases), "salvage": salvage,
                  "stats": stats, "label": label},
        )
        handle.ensemble_info = ensemble.to_payload()
        return handle

    def preload(self, experiment: Experiment, label: str) -> SessionHandle:
        """Register a startup session with the plain (pool-agreed) counter."""
        return self.register(experiment, label, spec=None)

    def get(self, sid: str) -> SessionHandle:
        with span("server.session-lookup"), self._lock:
            # no keep: an expired session is gone even to its own caller
            evicted = self._sweep_locked() if self.ttl_s is not None else []
            handle = self._handles.get(sid)
            if handle is not None:
                handle.last_used = self.clock()
                self._handles.move_to_end(sid)
        self._notify(evicted)
        if handle is None:
            handle = self._adopt(sid)
        if handle is None:
            raise NotFound(f"unknown session {sid!r}", code="unknown-session")
        return handle

    def close(self, sid: str) -> SessionHandle | None:
        """Close *sid*; in pool mode a manifest-only session counts too.

        With a manifest directory attached, this registry may never have
        adopted the session (DELETE routes by affinity while the POST
        that created it round-robinned to a sibling worker).  The
        manifest file is then the authoritative record of the session's
        existence: unlinking it both answers the close and stops any
        later adoption.  A sibling's resident copy, if any, is
        unreachable (affinity never routes the sid there again) and ages
        out via TTL/LRU.  Returns ``None`` for a manifest-only close.
        """
        with self._lock:
            handle = self._handles.pop(sid, None)
        unlinked = False
        if self.manifest_dir is not None:
            try:  # closed sessions must not be re-adopted by siblings
                os.unlink(self._manifest_path(sid))
                unlinked = True
            except OSError:
                pass
        if handle is None:
            if unlinked:
                return None
            raise NotFound(f"unknown session {sid!r}", code="unknown-session")
        self._release_backing(handle)
        return handle

    def list_info(self) -> list[dict]:
        with self._lock:
            handles = list(self._handles.values())
        return [h.info() for h in handles]

    def total_cost(self) -> int:
        """Summed :attr:`SessionHandle.approx_cost` of resident sessions."""
        with self._lock:
            return sum(h.approx_cost for h in self._handles.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._handles)


# --------------------------------------------------------------------- #
# pure view operations (shared by the server and the equivalence tests)
# --------------------------------------------------------------------- #
def _resolve_spec(
    session: ViewerSession, metric: str | None, flavor: MetricFlavor
) -> MetricSpec:
    """The metric column a request addresses (first metric when unnamed)."""
    metrics = session.experiment.metrics
    if metric is None:
        first = next(iter(metrics), None)
        if first is None:
            raise BadRequest("experiment has no metrics", code="no-metrics")
        return MetricSpec(first.mid, flavor)
    return MetricSpec(metrics.by_name(metric).mid, flavor)


def render_snapshot(
    session: ViewerSession,
    kind: ViewKind,
    metric: str | None = None,
    flavor: MetricFlavor = MetricFlavor.INCLUSIVE,
    descending: bool = True,
    depth: int = 3,
    hot_path: bool = False,
    threshold: float | None = None,
    max_rows: int = 60,
) -> dict:
    """Render one view as a fresh, stateless snapshot.

    Builds a new :class:`NavigationState` per call, so the output is a
    pure function of the experiment state (metric table, flatten depth)
    and the arguments — the property that makes renders cacheable.
    """
    checkpoint("render")
    view = session.view(kind)
    checkpoint("render")
    spec = _resolve_spec(session, metric, flavor)
    state = NavigationState(view, column=spec)
    state.descending = descending
    result: HotPathResult | None = None
    if hot_path:
        with span("viewer.hot-path"):
            result = state.expand_hot_path(
                threshold=threshold if threshold is not None
                else session.hot_path_threshold,
            )
    else:
        state.expand_to_depth(depth)
    checkpoint("render")
    roots = view.current_roots() if kind is ViewKind.FLAT else None
    with span("viewer.render-table"):
        text = render_table(
            view, state, options=TableOptions(max_rows=max_rows), roots=roots
        )
    payload = {
        "view": kind.value,
        "text": f"== {view.title}: {session.experiment.name} ==\n{text}",
    }
    if result is not None:
        payload["hot_path"] = {
            "path": [n.name for n in result.path],
            "values": list(result.values),
        }
    return payload


def table_snapshot(
    session: ViewerSession,
    kind: ViewKind,
    metric: str | None = None,
    flavor: MetricFlavor = MetricFlavor.INCLUSIVE,
    descending: bool = True,
    depth: int = 3,
    max_rows: int = 60,
    generation: int = 0,
) -> TableSnapshot:
    """One view's visible rows as columns — the data behind a render.

    Same expansion and sibling order as :func:`render_snapshot`
    (sorted by the selected column, expanded to *depth*), but instead
    of formatting text it collects the row identities once and gathers
    every metric column in bulk through
    :meth:`~repro.core.views.View.gather_columns` — no per-row dicts,
    no cell formatting.  Columns are every metric, inclusive then
    exclusive, exactly like the text table's default column set.
    """
    checkpoint("table")
    view = session.view(kind)
    checkpoint("table")
    spec = _resolve_spec(session, metric, flavor)
    state = NavigationState(view, column=spec)
    state.descending = descending
    state.expand_to_depth(depth)
    checkpoint("table")
    roots = view.current_roots() if kind is ViewKind.FLAT else None
    rows: list = []
    depths: list[int] = []
    truncated = 0
    for row, row_depth in state.visible_rows(roots=roots):
        if len(rows) >= max_rows:
            truncated += 1
            continue
        rows.append(row)
        depths.append(row_depth)
    specs: list[MetricSpec] = []
    labels: list[str] = []
    for desc in session.experiment.metrics:
        for flav, tag in ((MetricFlavor.INCLUSIVE, "(I)"),
                          (MetricFlavor.EXCLUSIVE, "(E)")):
            specs.append(MetricSpec(desc.mid, flav))
            labels.append(f"{desc.name} {tag}")
    with span("viewer.gather-table"):
        values = view.gather_columns(rows, specs)
    import numpy as np

    return TableSnapshot(
        view=kind.value,
        generation=generation,
        names=tuple(r.name for r in rows),
        depths=np.asarray(depths, dtype=np.int64),
        labels=tuple(labels),
        values=values,
        truncated=truncated,
    )


def hot_path_snapshot(
    session: ViewerSession,
    kind: ViewKind,
    metric: str | None = None,
    threshold: float | None = None,
) -> dict:
    """Run Eq. 3 on a view and report the path without rendering."""
    checkpoint("hot-path")
    view = session.view(kind)
    checkpoint("hot-path")
    spec = _resolve_spec(session, metric, MetricFlavor.INCLUSIVE)
    state = NavigationState(view, column=spec)
    with span("viewer.hot-path"):
        result = state.expand_hot_path(
            threshold=threshold if threshold is not None
            else session.hot_path_threshold,
        )
    return {
        "view": kind.value,
        "metric": session.experiment.metrics.by_id(spec.mid).name,
        "threshold": threshold if threshold is not None
        else session.hot_path_threshold,
        "path": [n.name for n in result.path],
        "values": list(result.values),
        "hotspot": result.hotspot.name,
    }

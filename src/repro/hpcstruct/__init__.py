"""Static structure recovery: from Python ASTs and synthetic programs."""

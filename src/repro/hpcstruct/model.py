"""Static program structure model (the ``hpcstruct`` substrate).

HPCToolkit's ``hpcstruct`` recovers a program's static structure from its
binary: load modules, source files, procedures, loop nests, inlined code and
statements.  The presentation layer treats this structure as first-class
information: the canonical calling context tree (CCT) fuses dynamic call
paths with these static scopes, and the Flat View is organized around them.

This module defines the structure tree itself.  Builders live in
:mod:`repro.hpcstruct.pystruct` (recovery from Python source via ``ast``)
and :mod:`repro.hpcstruct.synthstruct` (from synthetic program models).

A :class:`StructureNode` tree has the shape::

    Root
      LoadModule
        File
          Procedure
            Loop
              Loop
                Statement
            Statement (a call-site statement carries ``calls`` targets)

Inlined code appears as ``INLINED_PROC`` / ``INLINED_LOOP`` scopes nested
inside the procedure into which the compiler inlined it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, Optional

from repro.errors import StructureError

__all__ = [
    "StructKind",
    "SourceLocation",
    "StructureNode",
    "StructureModel",
    "UNKNOWN_FILE",
    "UNKNOWN_PROC",
]

UNKNOWN_FILE = "<unknown file>"
UNKNOWN_PROC = "<unknown procedure>"


class StructKind(Enum):
    """Kinds of static program scopes."""

    ROOT = "root"
    LOAD_MODULE = "load-module"
    FILE = "file"
    PROCEDURE = "procedure"
    LOOP = "loop"
    STATEMENT = "statement"
    INLINED_PROC = "inlined-procedure"
    INLINED_LOOP = "inlined-loop"

    @property
    def is_inlined(self) -> bool:
        return self in (StructKind.INLINED_PROC, StructKind.INLINED_LOOP)

    @property
    def is_loop(self) -> bool:
        return self in (StructKind.LOOP, StructKind.INLINED_LOOP)


@dataclass(frozen=True, slots=True)
class SourceLocation:
    """A source coordinate: file path plus a begin/end line range."""

    file: str = UNKNOWN_FILE
    line: int = 0
    end_line: int = 0

    def __post_init__(self) -> None:
        if self.end_line < self.line:
            object.__setattr__(self, "end_line", self.line)

    def contains_line(self, line: int) -> bool:
        """True when *line* falls within this scope's line range."""
        return self.line <= line <= self.end_line

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.line == self.end_line:
            return f"{self.file}:{self.line}"
        return f"{self.file}:{self.line}-{self.end_line}"


_node_ids = itertools.count(1)


class StructureNode:
    """One scope in the static structure tree.

    Nodes are identified for correlation/merging purposes by their
    :attr:`key` — ``(kind, name, file, line)`` relative to the parent — so
    two independently built structure trees for the same program agree on
    node identity.
    """

    __slots__ = (
        "uid",
        "kind",
        "name",
        "location",
        "parent",
        "children",
        "calls",
        "_child_index",
    )

    def __init__(
        self,
        kind: StructKind,
        name: str = "",
        location: SourceLocation | None = None,
        parent: Optional["StructureNode"] = None,
    ) -> None:
        self.uid: int = next(_node_ids)
        self.kind = kind
        self.name = name
        self.location = location or SourceLocation()
        self.parent = parent
        self.children: list[StructureNode] = []
        #: procedure names this statement may call (call-site statements only)
        self.calls: tuple[str, ...] = ()
        self._child_index: dict[tuple, StructureNode] = {}
        if parent is not None:
            parent._attach(self)

    # ------------------------------------------------------------------ #
    # identity & hierarchy
    # ------------------------------------------------------------------ #
    @property
    def key(self) -> tuple:
        """Identity of this node among its siblings."""
        return (self.kind.value, self.name, self.location.file, self.location.line)

    def _attach(self, child: "StructureNode") -> None:
        if child.key in self._child_index:
            raise StructureError(
                f"duplicate structure scope {child.key!r} under {self.describe()}"
            )
        self._child_index[child.key] = child
        self.children.append(child)
        child.parent = self

    def child_by_key(self, key: tuple) -> Optional["StructureNode"]:
        return self._child_index.get(key)

    def ancestors(self) -> Iterator["StructureNode"]:
        """Yield proper ancestors, innermost first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def walk(self) -> Iterator["StructureNode"]:
        """Yield this node and all descendants, preorder."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    # ------------------------------------------------------------------ #
    # typed navigation
    # ------------------------------------------------------------------ #
    @property
    def enclosing_procedure(self) -> Optional["StructureNode"]:
        """The innermost enclosing (possibly inlined) procedure scope."""
        node: StructureNode | None = self
        while node is not None:
            if node.kind in (StructKind.PROCEDURE, StructKind.INLINED_PROC):
                return node
            node = node.parent
        return None

    @property
    def enclosing_file(self) -> Optional["StructureNode"]:
        node: StructureNode | None = self
        while node is not None:
            if node.kind is StructKind.FILE:
                return node
            node = node.parent
        return None

    def describe(self) -> str:
        """Human-readable description, e.g. ``procedure g @ file2.c:2``."""
        label = self.name or self.kind.value
        return f"{self.kind.value} {label} @ {self.location}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StructureNode {self.describe()}>"


class StructureModel:
    """A whole-program static structure tree with lookup indexes.

    The model owns a single ``ROOT`` node; load modules hang beneath it.
    Lookup goes two ways:

    * :meth:`procedure` — find a procedure scope by (module, file, name).
    * :meth:`scope_chain_for_line` — map ``(file, line)`` within a
      procedure to the innermost chain of loop scopes enclosing that line,
      which is how correlation fuses a dynamic call path with loop nests.
    """

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self.root = StructureNode(StructKind.ROOT, name=name)
        self._procs: dict[tuple[str, str], StructureNode] = {}
        self._procs_by_name: dict[str, list[StructureNode]] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_load_module(self, name: str) -> StructureNode:
        key = (StructKind.LOAD_MODULE.value, name, UNKNOWN_FILE, 0)
        existing = self.root.child_by_key(key)
        if existing is not None:
            return existing
        return StructureNode(StructKind.LOAD_MODULE, name=name, parent=self.root)

    def add_file(self, module: StructureNode, path: str) -> StructureNode:
        if module.kind is not StructKind.LOAD_MODULE:
            raise StructureError("files must be added under a load module")
        key = (StructKind.FILE.value, path, path, 0)
        existing = module.child_by_key(key)
        if existing is not None:
            return existing
        return StructureNode(
            StructKind.FILE,
            name=path,
            location=SourceLocation(file=path),
            parent=module,
        )

    def add_procedure(
        self,
        file_scope: StructureNode,
        name: str,
        line: int,
        end_line: int | None = None,
    ) -> StructureNode:
        if file_scope.kind is not StructKind.FILE:
            raise StructureError("procedures must be added under a file")
        loc = SourceLocation(
            file=file_scope.location.file, line=line, end_line=end_line or line
        )
        proc = StructureNode(StructKind.PROCEDURE, name=name, location=loc, parent=file_scope)
        self._register_procedure(proc)
        return proc

    def _register_procedure(self, proc: StructureNode) -> None:
        file = proc.location.file
        self._procs[(file, proc.name)] = proc
        self._procs_by_name.setdefault(proc.name, []).append(proc)

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def procedure(self, name: str, file: str | None = None) -> StructureNode:
        """Find a procedure scope by name (optionally qualified by file)."""
        if file is not None:
            proc = self._procs.get((file, name))
            if proc is None:
                raise StructureError(f"unknown procedure {name!r} in {file!r}")
            return proc
        candidates = self._procs_by_name.get(name, [])
        if not candidates:
            raise StructureError(f"unknown procedure {name!r}")
        if len(candidates) > 1:
            files = sorted(p.location.file for p in candidates)
            raise StructureError(
                f"ambiguous procedure {name!r}; defined in {files}; pass file="
            )
        return candidates[0]

    def find_procedure(self, name: str, file: str | None = None) -> StructureNode | None:
        """Like :meth:`procedure` but returns None instead of raising."""
        try:
            return self.procedure(name, file)
        except StructureError:
            return None

    def procedures(self) -> Iterator[StructureNode]:
        yield from self._procs.values()

    @staticmethod
    def scope_chain_for_line(proc: StructureNode, line: int) -> list[StructureNode]:
        """Innermost loop/inline scope chain enclosing *line* within *proc*.

        Returns the chain outermost-first, excluding *proc* itself.  A line
        outside every loop yields an empty chain.  Nested candidates are
        resolved by depth (innermost match wins) and, among siblings, the
        first whose range contains the line.
        """
        chain: list[StructureNode] = []
        node = proc
        descended = True
        while descended:
            descended = False
            for child in node.children:
                if child.kind in (
                    StructKind.LOOP,
                    StructKind.INLINED_LOOP,
                    StructKind.INLINED_PROC,
                ) and child.location.contains_line(line):
                    chain.append(child)
                    node = child
                    descended = True
                    break
        return chain

    def merge_from(self, other: "StructureModel") -> None:
        """Graft scopes from *other* into this model (union by key)."""

        def graft(dst: StructureNode, src: StructureNode) -> None:
            for child in src.children:
                mine = dst.child_by_key(child.key)
                if mine is None:
                    mine = StructureNode(
                        child.kind, child.name, child.location, parent=dst
                    )
                    mine.calls = child.calls
                    if child.kind is StructKind.PROCEDURE:
                        self._register_procedure(mine)
                graft(mine, child)

        graft(self.root, other.root)

    def stats(self) -> dict[str, int]:
        """Count scopes by kind — useful for tests and reports."""
        counts: dict[str, int] = {}
        for node in self.root.walk():
            counts[node.kind.value] = counts.get(node.kind.value, 0) + 1
        return counts

"""Static structure recovery for synthetic programs.

The analogue of running ``hpcstruct`` on a binary: derive a
:class:`~repro.hpcstruct.model.StructureModel` from a declarative
:class:`~repro.sim.program.Program`, recording load module, files,
procedures, loop nests, inlined scopes, and per-procedure call-site lines.
"""

from __future__ import annotations

from repro.hpcstruct.model import SourceLocation, StructKind, StructureModel, StructureNode
from repro.sim.program import Call, Inlined, Loop, Program

__all__ = ["build_structure"]


def build_structure(program: Program) -> StructureModel:
    """Build the static structure model of a synthetic *program*."""
    model = StructureModel(name=program.name)
    lm = model.add_load_module(program.load_module)
    for module in program.modules:
        file_scope = model.add_file(lm, module.path)
        for proc in module.procedures:
            proc_scope = model.add_procedure(
                file_scope, proc.name, proc.line, proc.end_line
            )
            call_lines: list[tuple[int, str]] = []
            _build_body(proc_scope, proc.body, file_scope.name, call_lines, inlined=False)
            proc_scope.calls = tuple(call_lines)
    return model


def _build_body(
    parent: StructureNode,
    body,
    file: str,
    call_lines: list[tuple[int, str]],
    inlined: bool,
) -> None:
    for stmt in body:
        if isinstance(stmt, Loop):
            kind = StructKind.INLINED_LOOP if inlined else StructKind.LOOP
            loop_scope = StructureNode(
                kind,
                name=f"loop@{stmt.line}",
                location=SourceLocation(file=file, line=stmt.line, end_line=stmt.end_line),
                parent=parent,
            )
            _build_body(loop_scope, stmt.body, file, call_lines, inlined)
        elif isinstance(stmt, Inlined):
            inline_scope = StructureNode(
                StructKind.INLINED_PROC,
                name=stmt.name,
                location=SourceLocation(file=file, line=stmt.line, end_line=stmt.end_line),
                parent=parent,
            )
            _build_body(inline_scope, stmt.body, file, call_lines, inlined=True)
        elif isinstance(stmt, Call):
            call_lines.append((stmt.line, stmt.callee))
        # Work statements need no static scope: statement scopes are created
        # on demand during correlation (performance data is sparse).

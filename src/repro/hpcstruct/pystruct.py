"""Static structure recovery from Python source (the ``hpcstruct`` analogue).

Where HPCToolkit's ``hpcstruct`` analyzes an optimized binary to recover
procedures, loop nests and inlined code, this module analyzes Python
sources with :mod:`ast`, producing the same
:class:`~repro.hpcstruct.model.StructureModel` consumed by correlation:

* every function/method (including nested functions) becomes a procedure
  whose name is its *qualified* name — matching the frame names the
  profilers record (``Outer.method``, ``outer.<locals>.inner``);
* ``for`` / ``while`` loops become loop scopes with their full line
  extent, so leaf samples nest into loop chains exactly as in compiled
  code;
* call expressions mark call-site lines per procedure, letting
  correlation attribute samples at a call line to the call-site scope;
* module-level code is modeled as a ``<module>`` procedure spanning the
  file, matching CPython's name for it.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable

from repro.errors import StructureError
from repro.hpcstruct.model import (
    SourceLocation,
    StructKind,
    StructureModel,
    StructureNode,
)

__all__ = ["build_python_structure", "structure_for_file"]


def build_python_structure(
    paths: Iterable[str],
    load_module: str = "python",
    model: StructureModel | None = None,
) -> StructureModel:
    """Recover structure for a collection of Python source files."""
    model = model or StructureModel(name=load_module)
    lm = model.add_load_module(load_module)
    for path in paths:
        _analyze_file(model, lm, path)
    return model


def structure_for_file(path: str) -> StructureModel:
    """Convenience: structure model of a single file."""
    return build_python_structure([path])


# --------------------------------------------------------------------- #
_LOOP_NODES = (ast.For, ast.AsyncFor, ast.While)
_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _analyze_file(model: StructureModel, lm: StructureNode, path: str) -> None:
    native = os.path.abspath(path)
    try:
        with open(native, "r", encoding="utf-8") as fh:
            source = fh.read()
    except OSError as exc:
        raise StructureError(f"cannot read {path!r}: {exc}") from exc
    try:
        tree = ast.parse(source, filename=native)
    except SyntaxError as exc:
        raise StructureError(f"cannot parse {path!r}: {exc}") from exc

    file_scope = model.add_file(lm, native)
    nlines = source.count("\n") + 1
    module_proc = model.add_procedure(file_scope, "<module>", 1, nlines)
    builder = _Builder(model, file_scope)
    builder.walk_proc_body(tree.body, module_proc, qual="")


class _Builder:
    """Single-pass AST walker building scopes and per-procedure call tables."""

    def __init__(self, model: StructureModel, file_scope: StructureNode) -> None:
        self.model = model
        self.file_scope = file_scope
        self.file = file_scope.location.file

    # ------------------------------------------------------------------ #
    def walk_proc_body(self, body, proc: StructureNode, qual: str) -> None:
        """Walk the body of a procedure; finalize its call-site table."""
        calls: list[tuple[int, str]] = []
        for stmt in body:
            self._walk_stmt(stmt, proc, proc, qual, calls)
        proc.calls = tuple(sorted(set(calls)))

    def _walk_stmt(
        self,
        node: ast.stmt,
        scope: StructureNode,
        proc: StructureNode,
        qual: str,
        calls: list[tuple[int, str]],
    ) -> None:
        if isinstance(node, _FUNC_NODES):
            for deco in node.decorator_list:
                self._collect_calls(deco, calls, proc)
            qualname = self._qualname(node.name, proc, qual)
            sub = self.model.add_procedure(
                self.file_scope, qualname, node.lineno, node.end_lineno
            )
            self.walk_proc_body(node.body, sub, qual="")
            return
        if isinstance(node, ast.ClassDef):
            for deco in node.decorator_list:
                self._collect_calls(deco, calls, proc)
            inner_qual = f"{qual}{node.name}."
            for stmt in node.body:
                self._walk_stmt(stmt, scope, proc, inner_qual, calls)
            return
        if isinstance(node, _LOOP_NODES):
            loop = StructureNode(
                StructKind.LOOP,
                name=f"loop@{node.lineno}",
                location=SourceLocation(
                    file=self.file, line=node.lineno, end_line=node.end_lineno
                ),
                parent=scope,
            )
            if isinstance(node, (ast.For, ast.AsyncFor)):
                self._collect_calls(node.iter, calls, proc)
            else:
                self._collect_calls(node.test, calls, proc)
            for stmt in list(node.body) + list(node.orelse):
                self._walk_stmt(stmt, loop, proc, qual, calls)
            return

        # ordinary statement: scan its expression fields for calls, then
        # recurse into any nested statement lists (if/try/with bodies)
        for field, value in ast.iter_fields(node):
            if isinstance(value, ast.expr):
                self._collect_calls(value, calls, proc)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.stmt):
                        self._walk_stmt(item, scope, proc, qual, calls)
                    elif isinstance(item, ast.expr):
                        self._collect_calls(item, calls, proc)
                    elif isinstance(item, (ast.excepthandler, ast.withitem, ast.match_case)):
                        for sub in ast.iter_child_nodes(item):
                            if isinstance(sub, ast.stmt):
                                self._walk_stmt(sub, scope, proc, qual, calls)
                            elif isinstance(sub, ast.expr):
                                self._collect_calls(sub, calls, proc)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _qualname(name: str, proc: StructureNode, qual: str) -> str:
        if proc.name != "<module>":
            return f"{proc.name}.<locals>.{name}"
        return f"{qual}{name}"

    #: CPython names for comprehension frames (own frames until 3.12)
    _COMPREHENSIONS = {
        ast.ListComp: "<listcomp>",
        ast.SetComp: "<setcomp>",
        ast.DictComp: "<dictcomp>",
        ast.GeneratorExp: "<genexpr>",
    }

    def _collect_calls(
        self,
        node: ast.AST,
        calls: list[tuple[int, str]],
        proc: StructureNode,
    ) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                calls.append((sub.lineno, _callee_name(sub.func)))
            comp_name = self._COMPREHENSIONS.get(type(sub))
            if comp_name is not None:
                # a comprehension executes in its own frame; recover it as
                # a procedure with CPython's qualname so profiled frames
                # correlate, and mark its line as a call site in the owner
                if proc.name == "<module>":
                    qualname = comp_name
                else:
                    qualname = f"{proc.name}.<locals>.{comp_name}"
                if self.model.find_procedure(qualname, self.file) is None:
                    self.model.add_procedure(
                        self.file_scope, qualname, sub.lineno, sub.end_lineno
                    )
                calls.append((sub.lineno, qualname))


def _callee_name(func: ast.AST) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Call):
        return _callee_name(func.func)
    return "<dynamic>"

"""Self-profiling observability for the toolkit and its server.

The paper argues that performance becomes actionable when presented as
calling-context, callers, and flat views; this package applies that
argument to the reproduction itself:

* :mod:`repro.obs.spans` — a low-overhead in-process span tracer
  (near-zero cost when disabled) recording per-request, per-stage
  timings into a calling-context trie, plus ambient trace ids;
* :mod:`repro.obs.export` — turns recorded spans into a regular
  experiment database (framed v2 binary) that ``repro-view`` and
  ``repro-serve`` open like any profiled application;
* :mod:`repro.obs.promexport` — Prometheus text exposition for the
  server's ``GET /metrics`` endpoint;
* :mod:`repro.obs.slowlog` — a bounded slow-request log keyed by
  trace id.

Dogfooding loop::

    repro-serve fig1.rpdb --self-profile self.rpdb   # serve traffic
    repro-view self.rpdb --view all                  # inspect the server
"""

from repro.obs.export import save_self_profile, tracer_experiment, tracer_profile
from repro.obs.promexport import Histogram
from repro.obs.slowlog import SlowLog
from repro.obs.spans import (
    SpanTracer,
    current_trace_id,
    current_tracer,
    install,
    reset_trace_id,
    set_trace_id,
    span,
    uninstall,
)

__all__ = [
    "Histogram",
    "SlowLog",
    "SpanTracer",
    "current_trace_id",
    "current_tracer",
    "install",
    "reset_trace_id",
    "save_self_profile",
    "set_trace_id",
    "span",
    "tracer_experiment",
    "tracer_profile",
    "uninstall",
]

"""Turn recorded spans into a first-class experiment database.

This is where the loop closes on the paper: the span trie a
:class:`~repro.obs.spans.SpanTracer` accumulated while serving traffic
becomes an ordinary :class:`~repro.hpcprof.experiment.Experiment` —
correlated through the same ``hpcprof`` pipeline as any measured
profile, attributed with the same Eq. 1, saved in the same framed v2
binary format — so ``repro-view self.rpdb`` presents the server's own
calling-context, callers, and flat views.

Span names use dotted component prefixes (``server.request``,
``engine.scatter``, ``viewer.render-table``); each component becomes a
source "file" (``obs://server`` …) under one ``repro-self-profile``
load module, which is what groups the Flat View by subsystem.

Two metrics are recorded per calling context:

* ``calls`` — how many times the span completed there;
* ``wall time (s)`` — self time, from which attribution recovers
  inclusive time exactly (children are separate spans).
"""

from __future__ import annotations

from repro.hpcprof import database
from repro.hpcprof.experiment import Experiment
from repro.hpcrun.profile_data import Frame, ProfileData
from repro.core.metrics import MetricTable
from repro.hpcstruct.model import StructureModel
from repro.obs.spans import SpanTracer

__all__ = ["LOAD_MODULE", "tracer_experiment", "tracer_profile", "save_self_profile"]

#: the load module every span scope lives under in the exported views
LOAD_MODULE = "repro-self-profile"


def _component(name: str) -> str:
    """The subsystem prefix of a span name (``engine.scatter`` → ``engine``)."""
    head = name.split(" ", 1)[0]
    return head.split(".", 1)[0] or "obs"


def tracer_profile(tracer: SpanTracer, program: str = "repro-serve") -> ProfileData:
    """The tracer's span trie as a measurement-side call path profile."""
    metrics = MetricTable()
    calls_mid = metrics.add("calls", unit="calls").mid
    time_mid = metrics.add(
        "wall time (s)", unit="seconds", description="self time per span"
    ).mid
    profile = ProfileData(metrics, program=program)
    for path, (calls, self_s) in sorted(tracer.snapshot().items()):
        frames = [
            Frame(proc=name, file=f"obs://{_component(name)}", call_line=depth)
            for depth, name in enumerate(path)
        ]
        costs = {calls_mid: float(calls)}
        if self_s > 0.0:
            costs[time_mid] = self_s
        profile.add_sample(frames, leaf_line=0, costs=costs)
    return profile


def _structure_for(profile: ProfileData) -> StructureModel:
    """A static structure with one procedure per distinct span name."""
    structure = StructureModel(name=LOAD_MODULE)
    module = structure.add_load_module(LOAD_MODULE)
    files: dict[str, object] = {}
    seen: set[tuple[str, str]] = set()
    for node in profile.root.walk():
        if node.frame is None:
            continue
        key = (node.frame.file, node.frame.proc)
        if key in seen:
            continue
        seen.add(key)
        file_scope = files.get(node.frame.file)
        if file_scope is None:
            file_scope = structure.add_file(module, node.frame.file)
            files[node.frame.file] = file_scope
        structure.add_procedure(file_scope, node.frame.proc, 0)
    return structure


def tracer_experiment(
    tracer: SpanTracer, name: str = "repro-serve self-profile"
) -> Experiment:
    """Correlate the recorded spans into a presentable experiment."""
    profile = tracer_profile(tracer, program=name)
    return Experiment.from_profile(profile, _structure_for(profile), name=name)


def save_self_profile(
    tracer: SpanTracer, path: str, name: str = "repro-serve self-profile"
) -> tuple[Experiment, int]:
    """Export the tracer to an experiment database on disk.

    Returns the experiment and the byte size written.  The output is a
    regular framed v2 binary database (or XML, if *path* says so) that
    ``repro-view`` and ``repro-serve`` open like any other.
    """
    experiment = tracer_experiment(tracer, name=name)
    size = database.save(experiment, path)
    return experiment, size

"""Slow-request log: a bounded ring of the worst recent requests.

When the server is configured with a slowness threshold, every request
whose wall time crosses it is recorded here and emitted as one
structured ``WARNING`` line on the ``repro.server.slowlog`` logger —
endpoint label, latency, status, and the request's trace id, so a log
line correlates directly with the error payload a client saw and (when
self-profiling) with the spans the request produced.

The ring is surfaced in the ``GET /stats`` payload under
``slow_requests``, newest first, so a dashboard can show "what was slow
lately" without log scraping.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque

__all__ = ["SlowLog", "SlowRequest"]

logger = logging.getLogger("repro.server.slowlog")


class SlowRequest:
    """One over-threshold request observation."""

    __slots__ = ("label", "elapsed_ms", "status", "trace_id", "at")

    def __init__(
        self, label: str, elapsed_ms: float, status: int, trace_id: str | None
    ) -> None:
        self.label = label
        self.elapsed_ms = elapsed_ms
        self.status = status
        self.trace_id = trace_id
        self.at = time.time()

    def to_payload(self) -> dict:
        return {
            "endpoint": self.label,
            "elapsed_ms": round(self.elapsed_ms, 3),
            "status": self.status,
            "trace_id": self.trace_id,
            "at": self.at,
        }


class SlowLog:
    """Thread-safe bounded record of requests slower than *threshold_ms*."""

    def __init__(self, threshold_ms: float, maxlen: int = 64) -> None:
        self.threshold_ms = float(threshold_ms)
        self._lock = threading.Lock()
        self._ring: deque[SlowRequest] = deque(maxlen=maxlen)
        self.observed = 0

    def record(
        self,
        label: str,
        elapsed_ms: float,
        status: int = 200,
        trace_id: str | None = None,
    ) -> bool:
        """Record one request; returns True when it crossed the threshold."""
        if elapsed_ms < self.threshold_ms:
            return False
        entry = SlowRequest(label, elapsed_ms, status, trace_id)
        with self._lock:
            self._ring.append(entry)
            self.observed += 1
        logger.warning(
            "slow request: %s took %.1fms (threshold %.1fms) status=%d trace_id=%s",
            label, elapsed_ms, self.threshold_ms, status, trace_id or "-",
        )
        return True

    def to_payload(self) -> dict:
        """The ``/stats`` fragment: threshold plus the ring, newest first."""
        with self._lock:
            entries = [entry.to_payload() for entry in reversed(self._ring)]
            observed = self.observed
        return {
            "threshold_ms": self.threshold_ms,
            "observed": observed,
            "recent": entries,
        }

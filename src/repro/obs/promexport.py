"""Prometheus text exposition (version 0.0.4) without dependencies.

The analysis server surfaces its counters and latency histograms at
``GET /metrics`` in the standard text format, so any Prometheus-
compatible scraper can watch a ``repro-serve`` fleet.  Only the small
corner of the format the server needs is implemented: counters, gauges,
and cumulative histograms with the conventional ``_bucket``/``_sum``/
``_count`` series.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Iterable, Mapping

__all__ = ["Histogram", "escape_label", "format_sample", "render_metrics"]

#: request-latency bucket upper bounds, in seconds (Prometheus
#: convention; +Inf is implicit)
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


class Histogram:
    """A fixed-bucket cumulative histogram (not thread-safe by itself;
    the server updates it under its stats lock)."""

    __slots__ = ("bounds", "counts", "total", "sum")

    def __init__(self, bounds: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)  # last slot: +Inf
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    def cumulative(self) -> list[tuple[str, int]]:
        """``(le, count)`` pairs, cumulative, ending with ``+Inf``."""
        out: list[tuple[str, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            out.append((format_bound(bound), running))
        out.append(("+Inf", self.total))
        return out


def format_bound(bound: float) -> str:
    """Bucket bounds print like Prometheus clients do: ``0.005``, ``1.0``."""
    if bound == math.inf:
        return "+Inf"
    text = repr(bound)
    return text


def escape_label(value: str) -> str:
    """Escape a label value per the exposition format."""
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def format_sample(
    name: str, labels: Mapping[str, str] | None, value: float | int
) -> str:
    """One sample line, labels sorted for deterministic output."""
    if labels:
        inner = ",".join(
            f'{key}="{escape_label(str(val))}"'
            for key, val in sorted(labels.items())
        )
        series = f"{name}{{{inner}}}"
    else:
        series = name
    if isinstance(value, float) and not value.is_integer():
        return f"{series} {value!r}"
    return f"{series} {int(value)}"


def render_metrics(families: Iterable[tuple[str, str, str, list]]) -> str:
    """Render metric families to exposition text.

    *families* yields ``(name, type, help, samples)`` where samples are
    ``(suffix, labels, value)`` tuples (suffix ``""`` for the family's
    own name, ``"_bucket"``/``"_sum"``/``"_count"`` for histograms).
    """
    lines: list[str] = []
    for name, typ, help_text, samples in families:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {typ}")
        for suffix, labels, value in samples:
            lines.append(format_sample(name + suffix, labels, value))
    return "\n".join(lines) + "\n"

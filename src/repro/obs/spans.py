"""Low-overhead in-process span tracing — the self-profiling substrate.

The reproduction's whole point is making performance observable through
calling-context trees; this module lets the toolkit observe *itself*.
Instrumented stages (request handling, view construction, engine
kernels, table rendering) wrap themselves in :func:`span`; when a
:class:`SpanTracer` is installed the completed spans accumulate into a
calling-context trie (span-name path → call count and self time) that
:mod:`repro.obs.export` turns into a regular experiment database, so a
served instance's own behaviour renders in the same three views as any
profiled application.

Design constraints, in priority order:

* **disabled cost ≈ zero** — every hook site runs ``span(name)``, which
  with no tracer installed is one global read plus a shared no-op
  context manager (no allocation); production code paths stay clean of
  ``if tracing:`` branches;
* **enabled cost stays small** — per span: two ``perf_counter`` calls,
  one list push/pop, and one dict update on thread-local state (no
  locks on the hot path; thread states are merged only at snapshot
  time);
* **self time, not inclusive time** — each frame accumulates the time
  its children took, and records only its own remainder; inclusive
  times are then recovered exactly by the normal CCT attribution pass,
  the same Eq. 1 the paper applies to application profiles.

Trace identifiers ride alongside: :func:`set_trace_id` installs the
current request's id in a context variable, and every structured error
payload and slow-request log line carries it, so one id follows a
request through logs, errors, and (when tracing) its spans.
"""

from __future__ import annotations

import contextvars
import functools
import threading
import time
from typing import Callable, Iterator, Mapping

__all__ = [
    "SpanTracer",
    "current_tracer",
    "current_trace_id",
    "install",
    "reset_trace_id",
    "set_trace_id",
    "span",
    "traced",
    "uninstall",
]

_perf_counter = time.perf_counter

#: the process-wide tracer; ``None`` keeps every hook site on the no-op
#: fast path
_tracer: "SpanTracer | None" = None

_trace_id: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_trace_id", default=None
)


# --------------------------------------------------------------------- #
# trace ids
# --------------------------------------------------------------------- #
def set_trace_id(trace_id: str | None) -> contextvars.Token:
    """Install *trace_id* as the ambient request identity."""
    return _trace_id.set(trace_id)


def current_trace_id() -> str | None:
    """The ambient request's trace id, if one is set."""
    return _trace_id.get()


def reset_trace_id(token: contextvars.Token) -> None:
    """Restore the trace id that *token*'s ``set_trace_id`` replaced."""
    _trace_id.reset(token)


# --------------------------------------------------------------------- #
# span machinery
# --------------------------------------------------------------------- #
class _NullSpan:
    """Shared no-op context manager: the disabled-tracing fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _ThreadState:
    """Per-thread span stack and accumulator (merged at snapshot time)."""

    __slots__ = ("stack", "acc")

    def __init__(self) -> None:
        #: active spans, outermost first: [path, start, child_seconds];
        #: the full path tuple is built at push so pop stays allocation-lean
        self.stack: list[list] = []
        #: completed work: span-name path -> [calls, self_seconds]
        self.acc: dict[tuple[str, ...], list[float]] = {}


class _Span:
    """One active span; created only when a tracer is installed."""

    __slots__ = ("_state", "_name")

    def __init__(self, state: _ThreadState, name: str) -> None:
        self._state = state
        self._name = name

    def __enter__(self) -> "_Span":
        stack = self._state.stack
        path = (stack[-1][0] + (self._name,)) if stack else (self._name,)
        stack.append([path, _perf_counter(), 0.0])
        return self

    def __exit__(self, *exc) -> bool:
        state = self._state
        stack = state.stack
        path, start, child_s = stack.pop()
        elapsed = _perf_counter() - start
        if stack:
            stack[-1][2] += elapsed
        slot = state.acc.get(path)
        if slot is None:
            state.acc[path] = [1.0, elapsed - child_s]
        else:
            slot[0] += 1.0
            slot[1] += elapsed - child_s
        return False


class SpanTracer:
    """Accumulates span paths into a calling-context trie, per thread.

    Thread states register themselves on first use under a lock and are
    merged by :meth:`snapshot`; the recording hot path itself takes no
    lock.  The tracer survives arbitrarily many install/uninstall
    cycles — data accumulates until :meth:`reset`.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self.started_at = time.time()
        self._registry_lock = threading.Lock()
        self._states: list[_ThreadState] = []
        self._local = threading.local()

    # -- recording ----------------------------------------------------- #
    def _state(self) -> _ThreadState:
        state = getattr(self._local, "state", None)
        if state is None:
            state = _ThreadState()
            self._local.state = state
            with self._registry_lock:
                self._states.append(state)
        return state

    def span(self, name: str) -> _Span:
        return _Span(self._state(), name)

    # -- inspection ---------------------------------------------------- #
    def snapshot(self) -> dict[tuple[str, ...], tuple[int, float]]:
        """Merged ``path -> (calls, self_seconds)`` across all threads.

        Threads may still be recording; a dict that grows mid-copy is
        retried a few times, then iterated defensively.  (Export for
        analysis normally happens after the server quiesces, where this
        is exact.)
        """
        with self._registry_lock:
            states = list(self._states)
        merged: dict[tuple[str, ...], list[float]] = {}
        for state in states:
            items: Iterator = ()
            for _attempt in range(4):
                try:
                    items = list(state.acc.items())
                    break
                except RuntimeError:  # pragma: no cover - racing writer
                    continue
            for path, (calls, self_s) in items:
                slot = merged.get(path)
                if slot is None:
                    merged[path] = [calls, self_s]
                else:
                    slot[0] += calls
                    slot[1] += self_s
        return {
            path: (int(calls), self_s)
            for path, (calls, self_s) in merged.items()
        }

    def span_count(self) -> int:
        """Total completed spans across all threads."""
        return sum(calls for calls, _ in self.snapshot().values())

    def reset(self) -> None:
        """Drop all accumulated spans (active stacks are untouched)."""
        with self._registry_lock:
            states = list(self._states)
        for state in states:
            state.acc = {}


# --------------------------------------------------------------------- #
# the process-wide hook
# --------------------------------------------------------------------- #
def install(tracer: SpanTracer | None = None) -> SpanTracer:
    """Install (and return) the process-wide tracer.

    Hook sites all over the toolkit start recording immediately; call
    :func:`uninstall` to return them to the no-op fast path.
    """
    global _tracer
    if tracer is None:
        tracer = SpanTracer()
    _tracer = tracer
    return tracer


def uninstall() -> SpanTracer | None:
    """Remove the process-wide tracer; returns the one removed."""
    global _tracer
    tracer, _tracer = _tracer, None
    return tracer


def current_tracer() -> SpanTracer | None:
    """The installed process-wide tracer, if any."""
    return _tracer


def span(name: str):
    """A context manager timing one stage under the installed tracer.

    The universal hook site::

        with span("engine.scatter"):
            ...

    With no tracer installed this returns a shared no-op object — the
    cost is one global read and an attribute-free ``with`` — so hook
    sites are safe on the hottest paths.
    """
    tracer = _tracer
    if tracer is None:
        return _NULL_SPAN
    return _Span(tracer._state(), name)


def traced(name: str):
    """Decorator form of :func:`span` for whole functions and methods.

    The disabled path is one global read and a direct tail call — used
    on the engine kernels, where wrapping the body in a ``with`` block
    would obscure the numeric code.
    """
    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tracer = _tracer
            if tracer is None:
                return fn(*args, **kwargs)
            with _Span(tracer._state(), name):
                return fn(*args, **kwargs)
        return wrapper
    return decorate

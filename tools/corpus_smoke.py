#!/usr/bin/env python
"""Fast tier-1 smoke of corpus crash recovery — a real ``kill -9``.

A subprocess ingests into a fresh corpus and SIGKILLs itself at the
``corpus.ingest.renamed`` crash point (payload at its final path, commit
record not yet journaled).  The parent then reopens the corpus and
proves recovery: the interrupted ingest is resumed bit-identically, a
pre-crash profile is untouched, staging is empty, and ``verify`` passes
for every entry.  The exhaustive batteries live in
``tests/corpus/test_crash_battery.py`` and
``tests/corpus/test_corruption_sweep.py``; this script only proves the
kill-anywhere recovery path works at all on this machine, in a couple of
seconds, inside the tier-1 gate.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.corpus import CorpusCatalog, open_corpus  # noqa: E402
from repro.hpcprof import binio  # noqa: E402
from repro.hpcprof.experiment import Experiment  # noqa: E402
from repro.sim.workloads import fig1  # noqa: E402

_CHILD = """
import sys
from repro.corpus import open_corpus

root, payload_path = sys.argv[1], sys.argv[2]
with open(payload_path, "rb") as fh:
    blob = fh.read()
with open_corpus(root) as corpus:
    corpus.ingest_bytes("smoke", blob, name="doomed", meta={"k": "v"})
raise SystemExit("crash point did not fire")
"""


def main() -> int:
    blob = binio.dumps_binary(Experiment.from_program(fig1.build()))
    with tempfile.TemporaryDirectory(prefix="corpus-smoke-") as tmp:
        root = os.path.join(tmp, "corpus")
        payload = os.path.join(tmp, "payload.rpdb")
        with open(payload, "wb") as fh:
            fh.write(blob)

        with CorpusCatalog(root, create=True) as corpus:
            keeper = corpus.ingest_bytes("smoke", blob, name="keeper").pid

        env = dict(os.environ,
                   PYTHONPATH=str(REPO / "src"),
                   REPRO_CRASH_POINT="corpus.ingest.renamed")
        proc = subprocess.run(
            [sys.executable, "-c", _CHILD, root, payload],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL, (
            f"child should have SIGKILLed itself at the crash point: "
            f"rc={proc.returncode} stderr={proc.stderr[-500:]}"
        )

        with open_corpus(root) as corpus:
            names = {e.name: e.pid for e in corpus.list("smoke")}
            assert set(names) == {"keeper", "doomed"}, names
            assert corpus.read_bytes("smoke", names["keeper"]) == blob
            assert corpus.read_bytes("smoke", names["doomed"]) == blob, (
                "post-rename crash must resume the ingest bit-identically"
            )
            assert corpus.get("smoke", names["doomed"]).meta == {"k": "v"}
            for pid in names.values():
                corpus.verify("smoke", pid)
            assert os.listdir(os.path.join(root, "staging")) == []
            report = corpus.recover()

        print(f"corpus smoke OK: kill -9 at corpus.ingest.renamed, "
              f"recovery resumed 1 ingest bit-identically "
              f"({len(blob)} bytes), journal clean "
              f"(truncated_bytes={report['truncated_bytes']})")
        return 0


if __name__ == "__main__":
    sys.exit(main())

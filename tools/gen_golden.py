#!/usr/bin/env python
"""Regenerate the golden regression corpus under ``tests/golden/data``.

For every fixture in ``tests/golden/corpus.py`` this writes:

* ``<name>.v1.rpdb`` — the experiment in the legacy unframed binary
  format;
* ``<name>.v2.rpdb`` — the same experiment in the framed v2 format;
* ``<name>.<view>.txt`` — the canonical rendering of each of the three
  presentation views (see ``corpus.render_views``);
* ``<name>.table.rpcol`` — for the one pinned fixture, the framed
  columnar table bytes the server sends under ``Accept:
  application/x-repro-columnar`` (see ``corpus.columnar_table_bytes``);
* ``<name>.trace.<file>`` — for every trace fixture, the exact bytes of
  its time-partitioned chunked store (manifest, skeleton, per-chunk
  event/slab files) plus JSON renders of a pinned window query, flame
  slab, and idleness series (see ``corpus.trace_outputs``).

``tests/golden/test_golden_corpus.py`` re-renders the checked-in
binaries through every reader path and compares byte-for-byte, so this
script is only ever run when an output change is *intentional*:

    PYTHONPATH=src python tools/gen_golden.py --write

Without ``--write`` it is a drift check: it regenerates everything
in-memory, diffs against the checked-in files and exits non-zero on any
mismatch (the same comparison the test makes, usable pre-commit).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO))

from repro.hpcprof import binio  # noqa: E402
from tests.golden import corpus  # noqa: E402


def generate() -> dict[str, bytes]:
    """filename -> exact content for the complete corpus."""
    out: dict[str, bytes] = {}
    for name in sorted(corpus.FIXTURES):
        experiment = corpus.build_fixture(name)
        out[f"{name}.v1.rpdb"] = binio.dumps_binary(experiment, version=1)
        out[f"{name}.v2.rpdb"] = binio.dumps_binary(experiment, version=2)
        for slug, text in corpus.render_views(experiment).items():
            out[f"{name}.{slug}.txt"] = text.encode("utf-8")
        if name == corpus.COLUMNAR_FIXTURE:
            out[f"{name}.table.rpcol"] = corpus.columnar_table_bytes(
                experiment
            )
    out.update(corpus.query_outputs())
    out.update(corpus.ensemble_outputs())
    out.update(corpus.trace_outputs())
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--write", action="store_true",
                        help="rewrite tests/golden/data instead of checking")
    args = parser.parse_args(argv)

    files = generate()
    data_dir = Path(corpus.DATA_DIR)
    if args.write:
        data_dir.mkdir(parents=True, exist_ok=True)
        stale = set(os.listdir(data_dir)) - set(files)
        for name in sorted(stale):
            (data_dir / name).unlink()
            print(f"removed stale {name}")
        for name, content in sorted(files.items()):
            (data_dir / name).write_bytes(content)
        print(f"wrote {len(files)} corpus files to {data_dir}")
        return 0

    drift = []
    for name, content in sorted(files.items()):
        path = data_dir / name
        if not path.exists():
            drift.append(f"missing: {name}")
        elif path.read_bytes() != content:
            drift.append(f"differs: {name}")
    for line in drift:
        print(line)
    if drift:
        print("golden corpus drifted; if intentional rerun with --write")
        return 1
    print(f"golden corpus clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

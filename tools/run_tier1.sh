#!/usr/bin/env bash
# Tier-1: the single entry point CI and pre-commit both call.
#
#   tools/run_tier1.sh            # full gate
#   REPRO_TEST_TIMEOUT_SCALE=4 tools/run_tier1.sh   # slow/loaded machines
#
# Eight stages, all required:
#   1. the pytest suite (-x: first failure stops the run) — with
#      coverage enforcement when pytest-cov is installed;
#   2. public API surface: regenerated in-memory, diffed against the
#      checked-in tests/api_surface.txt;
#   3. golden corpus: fixtures + rendered views regenerated, diffed
#      byte-for-byte against tests/golden/data;
#   4. pool smoke: a 2-worker pre-forked pool serves one JSON and one
#      columnar render (decoded and cross-checked) and shuts down;
#   5. corpus smoke: an ingest subprocess is kill -9'd mid-commit and
#      the reopened corpus recovers it bit-identically;
#   6. query smoke: one composed query runs bit-identically across the
#      in-memory / .rpdb / .rpstore backends, through the search()
#      shim, and over /v1/query (JSON == columnar), plus a clean
#      two-profile corpus diagnosis;
#   7. trace smoke: a two-rank trace answers a windowed query
#      bit-identically from memory and from a time-partitioned chunked
#      store (pruning verified), a pre-commit writer crash leaves no
#      store, and /v1/trace serves matching JSON and columnar slabs;
#   8. coverage ratchet: the fail_under floor may never decrease.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

cov_args=()
if python -c 'import pytest_cov' 2>/dev/null; then
    # floor comes from [tool.coverage.report] fail_under in pyproject.toml
    cov_args=(--cov=repro --cov-report=term-missing:skip-covered)
fi

echo "== tier-1: pytest =="
python -m pytest -x -q "${cov_args[@]}"

echo "== tier-1: api surface =="
python tools/gen_api_surface.py | diff -u tests/api_surface.txt - \
    || { echo "api surface drifted; if intentional:"; \
         echo "  PYTHONPATH=src python tools/gen_api_surface.py --write"; \
         exit 1; }
echo "api surface clean"

echo "== tier-1: golden corpus =="
python tools/gen_golden.py

echo "== tier-1: pool smoke =="
python tools/pool_smoke.py

echo "== tier-1: corpus smoke =="
python tools/corpus_smoke.py

echo "== tier-1: query smoke =="
python tools/query_smoke.py

echo "== tier-1: trace smoke =="
python tools/trace_smoke.py

echo "== tier-1: coverage ratchet =="
python tools/check_coverage_ratchet.py

echo "tier-1 OK"

#!/usr/bin/env python
"""Fast tier-1 smoke of the time-dimension trace pipeline, end to end.

One run proves, in a couple of seconds, that the whole trace path
works on this machine:

1. the simulator executes Figure 1 in trace mode on two ranks and the
   unbounded window reproduces the untimed scope set;
2. the trace lands in a time-partitioned ``.rpstore`` whose windowed
   query answers are **bit-identical** to the in-memory trace, and a
   narrow window provably touches fewer chunks than the store holds;
3. killing the store writer before the manifest commit leaves nothing
   that opens as a store (manifest-last crash safety);
4. ``POST /v1/trace`` serves a flame slab over the store, the columnar
   wire form decodes to exactly the JSON rows, and the idleness series
   has the requested bins.

The exhaustive batteries live in ``tests/trace/``,
``tests/props/test_trace_props.py``, and
``tests/server/test_trace_endpoint.py``; this script only proves the
pipeline is alive inside the tier-1 gate.
"""

from __future__ import annotations

import base64
import json
import math
import os
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.query import query, run_query  # noqa: E402
from repro.server import AnalysisApp  # noqa: E402
from repro.server.wire import COLUMNAR_CONTENT_TYPE, decode_columnar  # noqa: E402
from repro.sim.spmd import spmd_experiment, trace_spmd  # noqa: E402
from repro.sim.workloads import fig1  # noqa: E402
from repro.testing.faults import CrashPointHit, crashing_at  # noqa: E402
from repro.trace import create_trace_store, is_trace_path  # noqa: E402


def build_traces():
    traces = trace_spmd(fig1.build(), nranks=2, seed=7, trace_slices=3,
                        name="smoke-trace")
    windowed = traces.window_experiment(None, None)
    untimed = spmd_experiment(fig1.build(), nranks=2, seed=7)
    names = lambda exp: sorted(  # noqa: E731
        n.name for n in exp.cct.walk() if n.name)
    assert names(windowed) == names(untimed), (
        "window(None, None) diverged from the untimed experiment")
    return traces


def check_store(traces, tmp: str):
    span = traces.t_end - traces.t_begin
    path = os.path.join(tmp, "smoke-trace.rpstore")
    store = create_trace_store(traces, path,
                               chunk_duration=max(span / 5, 1e-6))
    metric = traces.metrics.by_id(0).name
    t0 = traces.t_begin + 0.25 * span
    t1 = traces.t_begin + 0.75 * span
    q = query("**/*").window(t0, t1).sort(metric)
    want = run_query(q, traces).to_rows()
    assert want, "smoke window query matched nothing"
    store.reset_counters()
    assert run_query(q, store).to_rows() == want, (
        "chunked store window diverged from in-memory trace")
    assert 0 < store.chunks_touched < store.chunks_total, (
        f"mid-half window should prune chunks "
        f"(touched {store.chunks_touched}/{store.chunks_total})")
    touched, total = store.chunks_touched, store.chunks_total
    store.close()
    return path, len(want), touched, total


def check_crash_safety(traces, tmp: str) -> None:
    doomed = os.path.join(tmp, "doomed.rpstore")
    try:
        with crashing_at("trace.write.manifest-staged"):
            create_trace_store(traces, doomed, chunk_duration=2.0)
    except CrashPointHit:
        pass
    else:  # pragma: no cover - would be a faults-layer bug
        raise AssertionError("crash point did not fire")
    assert not is_trace_path(doomed), (
        "a pre-commit crash left a readable (phantom) trace store")


def check_endpoint(store_path: str, tmp: str) -> None:
    app = AnalysisApp(corpus_root=os.path.join(tmp, "corpus"))
    try:
        body = json.dumps({"path": store_path, "rank": 0}).encode()
        status, as_json = app.handle("POST", "/v1/trace", body)
        assert status == 200, as_json
        assert as_json["span_count"] == len(as_json["rows"]) > 0

        status, blob, _h = app.handle_full(
            "POST", "/v1/trace", body,
            request_headers={"Accept": COLUMNAR_CONTENT_TYPE})
        assert status == 200 and blob.content_type == COLUMNAR_CONTENT_TYPE
        assert decode_columnar(blob.data)["rows"] == as_json["rows"], (
            "columnar flame slab diverged from JSON")

        series_body = json.dumps({"path": store_path, "view": "series",
                                  "bins": 6}).encode()
        status, series = app.handle("POST", "/v1/trace", series_body)
        assert status == 200, series
        assert len(series["idleness"]) == 6
        assert all(0.0 <= v <= 1.0 and math.isfinite(v)
                   for v in series["idleness"])
    finally:
        app.close()


def main() -> int:
    traces = build_traces()
    with tempfile.TemporaryDirectory(prefix="trace-smoke-") as tmp:
        store_path, rows, touched, total = check_store(traces, tmp)
        check_crash_safety(traces, tmp)
        check_endpoint(store_path, tmp)
    print(f"trace smoke OK: {traces.n_events} events on "
          f"{traces.nranks} ranks, {rows} windowed rows bit-identical "
          f"in-memory vs chunked ({touched}/{total} chunks touched), "
          f"pre-commit crash leaves no store, /v1/trace JSON == columnar")
    return 0


if __name__ == "__main__":
    sys.exit(main())

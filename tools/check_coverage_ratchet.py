#!/usr/bin/env python
"""Enforce the coverage ratchet: ``fail_under`` only ever goes up.

The floor lives in ``pyproject.toml`` under ``[tool.coverage.report]``.
This check compares the working tree's value against the last committed
one (``git show HEAD:pyproject.toml``) and fails if it was *lowered* —
raising it is always fine, which is what makes it a ratchet: once the
suite reaches a coverage level, the gate keeps it there.

Also validates the floor is a sane percentage, and — when the
``coverage`` package is importable and a ``.coverage`` data file from a
tier-1 run is present — that the measured total actually clears the
floor (the same comparison ``--cov-fail-under`` makes in-process).
With no coverage tooling installed this degrades to the ratchet check
alone, so bare environments still run tier-1 end to end.

    PYTHONPATH=src python tools/check_coverage_ratchet.py
"""

from __future__ import annotations

import subprocess
import sys
import tomllib
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
PYPROJECT = REPO / "pyproject.toml"


def fail_under_of(text: str) -> float | None:
    data = tomllib.loads(text)
    try:
        return float(data["tool"]["coverage"]["report"]["fail_under"])
    except KeyError:
        return None


def committed_pyproject() -> str | None:
    try:
        out = subprocess.run(
            ["git", "show", "HEAD:pyproject.toml"],
            cwd=REPO, capture_output=True, text=True, check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return None  # fresh repo / not a checkout: nothing to ratchet against
    return out.stdout


def measured_total() -> float | None:
    """Total coverage from a prior run's data file, if tooling exists."""
    try:
        import coverage
    except ImportError:
        return None
    data_file = REPO / ".coverage"
    if not data_file.exists():
        return None
    cov = coverage.Coverage(data_file=str(data_file))
    cov.load()
    import io

    return cov.report(file=io.StringIO())


def main() -> int:
    current = fail_under_of(PYPROJECT.read_text())
    if current is None:
        print("ratchet: [tool.coverage.report] fail_under missing "
              "from pyproject.toml")
        return 1
    if not 0 < current <= 100:
        print(f"ratchet: fail_under={current} is not a valid percentage")
        return 1

    previous_text = committed_pyproject()
    previous = fail_under_of(previous_text) if previous_text else None
    if previous is not None and current < previous:
        print(f"ratchet: fail_under lowered {previous} -> {current}; "
              f"the coverage floor only goes up")
        return 1

    total = measured_total()
    if total is not None and total < current:
        print(f"ratchet: measured coverage {total:.1f}% is below the "
              f"floor {current}%")
        return 1

    suffix = (f", measured {total:.1f}%" if total is not None
              else ", no coverage data (tooling not installed or no run)")
    print(f"ratchet ok: floor {current}%"
          + (f" (was {previous}%)" if previous is not None else "")
          + suffix)
    return 0


if __name__ == "__main__":
    sys.exit(main())

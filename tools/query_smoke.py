#!/usr/bin/env python
"""Fast tier-1 smoke of the call-path query engine, end to end.

One run proves, in a couple of seconds, that the whole query path
works on this machine:

1. a composed query (pattern + predicate + sort + limit) evaluates on
   the in-memory Figure 1 experiment and returns the expected scopes;
2. the same query returns **bit-identical** rows on a binary-round-trip
   copy and on an mmap-backed ``.rpstore`` of the same experiment;
3. the legacy ``search()`` shim agrees with the engine on the hit set;
4. ``POST /v1/query`` serves the query in session mode, and the
   columnar wire form decodes to exactly the JSON rows;
5. a two-profile corpus diagnoses cleanly through the same endpoint.

The exhaustive batteries live in ``tests/query/``,
``tests/props/test_query_props.py``, and
``tests/server/test_query_endpoint.py``; this script only proves the
pipeline is alive inside the tier-1 gate.
"""

from __future__ import annotations

import base64
import json
import os
import sys
import tempfile
import warnings
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core.store import create_store  # noqa: E402
from repro.hpcprof import binio, database  # noqa: E402
from repro.hpcprof.experiment import Experiment  # noqa: E402
from repro.query import query, run_query  # noqa: E402
from repro.server import AnalysisApp  # noqa: E402
from repro.server.wire import COLUMNAR_CONTENT_TYPE, decode_columnar  # noqa: E402
from repro.sim.workloads import fig1  # noqa: E402

Q = (query("m / ** / *")
     .where("cycles.inclusive >= 5%")
     .sort("cycles")
     .limit(8))


def check_backends(exp: Experiment, tmp: str) -> int:
    reference = run_query(Q, exp).to_rows()
    assert reference, "smoke query matched nothing on fig1"
    assert reference[0][0] == "file1.c:7", reference[0]  # fig1's hottest call site

    round_trip = database.loads(binio.dumps_binary(exp))
    assert run_query(Q, round_trip).to_rows() == reference, (
        "binary round-trip backend diverged from in-memory")

    store = create_store(exp, os.path.join(tmp, "smoke.rpstore"))
    try:
        assert run_query(Q, store).to_rows() == reference, (
            ".rpstore backend diverged from in-memory")
    finally:
        store.close()
    return len(reference)


def check_shim(exp: Experiment) -> None:
    from repro.core.search import search

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        hits = search(exp.views()[0], "m*")
    engine = run_query(query("** / m*"), exp)
    assert {h.node.name for h in hits} == set(engine.names), (
        "search() shim hit set diverged from the engine")


def check_endpoint(payload: bytes, tmp: str) -> None:
    app = AnalysisApp(corpus_root=os.path.join(tmp, "corpus"))
    try:
        status, out = app.handle(
            "POST", "/v1/sessions",
            json.dumps({"workload": "fig1"}).encode())
        assert status == 201, out
        sid = out["session"]["id"]

        body = json.dumps({"session": sid, "query": Q.to_spec()}).encode()
        status, as_json = app.handle("POST", "/v1/query", body)
        assert status == 200, as_json
        assert as_json["rows"] and as_json["rows"][0][0] == "file1.c:7"

        status, blob, _h = app.handle_full(
            "POST", "/v1/query", body,
            request_headers={"Accept": COLUMNAR_CONTENT_TYPE})
        assert status == 200 and blob.content_type == COLUMNAR_CONTENT_TYPE
        assert decode_columnar(blob.data)["rows"] == as_json["rows"], (
            "columnar wire form diverged from JSON")

        upload = {"name": "r.rpdb",
                  "data": base64.b64encode(payload).decode(),
                  "group": "nightly"}
        for _ in range(2):
            status, out = app.handle(
                "POST", "/v1/corpus/smoke/profiles",
                json.dumps(upload).encode())
            assert status == 201, out
        status, diag = app.handle(
            "POST", "/v1/query",
            json.dumps({"tenant": "smoke", "diagnose": True}).encode())
        assert status == 200, diag
        assert diag["profiles_examined"] == 2
        assert diag["findings"] == [], (
            f"identical profiles produced findings: {diag['findings']}")
    finally:
        app.close()


def main() -> int:
    exp = Experiment.from_program(fig1.build())
    payload = binio.dumps_binary(exp)
    with tempfile.TemporaryDirectory(prefix="query-smoke-") as tmp:
        rows = check_backends(exp, tmp)
        check_shim(exp)
        check_endpoint(payload, tmp)
    print(f"query smoke OK: {rows} rows bit-identical across "
          f"in-memory/.rpdb/.rpstore, shim agrees, /v1/query JSON == "
          f"columnar, 2-profile corpus diagnosis clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Snapshot the public API surface into ``tests/api_surface.txt``.

The surface has two halves:

* **python** — every name in the ``__all__`` of the blessed modules
  (``repro``, ``repro.api``, ``repro.errors``, ``repro.obs``,
  ``repro.query``, ``repro.server``), one ``python <module>.<name>``
  line each;
* **http** — every ``(method, /v1 path)`` pair in the server's
  endpoint registry, one ``http <METHOD> /v1<path>`` line each.

``tests/test_api_surface.py`` regenerates this in-memory and compares
against the checked-in file, so any unintentional drift — a name
removed, an endpoint renamed, a method dropped — fails tier-1.  When a
change IS intentional, rerun with ``--write`` and commit the diff:

    PYTHONPATH=src python tools/gen_api_surface.py --write
"""

from __future__ import annotations

import argparse
import importlib
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SNAPSHOT = REPO / "tests" / "api_surface.txt"

#: the modules whose ``__all__`` constitutes the blessed Python surface
PUBLIC_MODULES = (
    "repro",
    "repro.api",
    "repro.errors",
    "repro.obs",
    "repro.query",
    "repro.server",
)


def surface_lines() -> list[str]:
    """The full public surface, one sorted line per entry."""
    lines: list[str] = []
    for module_name in PUBLIC_MODULES:
        module = importlib.import_module(module_name)
        for name in module.__all__:
            lines.append(f"python {module_name}.{name}")
    from repro.server.schema import API_VERSION, ENDPOINTS

    for endpoint in ENDPOINTS:
        for method in endpoint.methods():
            lines.append(f"http {method} /{API_VERSION}{endpoint.path}")
    return sorted(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write", action="store_true",
        help=f"rewrite {SNAPSHOT.relative_to(REPO)} instead of printing",
    )
    args = parser.parse_args(argv)
    text = "\n".join(surface_lines()) + "\n"
    if args.write:
        SNAPSHOT.write_text(text)
        print(f"wrote {SNAPSHOT} ({len(text.splitlines())} entries)")
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())

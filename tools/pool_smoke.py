#!/usr/bin/env python
"""Fast tier-1 smoke of the multi-worker pool.

Starts a 2-worker :class:`~repro.server.pool.ServerPool`, serves one
JSON render, one columnar table (decoded and checked against the JSON
table), and one aggregated ``/stats``, then shuts down cleanly.  The
deep lifecycle coverage (crash restart, adoption, chaos) lives in
``tests/server/test_pool.py``; this script only proves the forked
serving path works at all on this machine, in a few seconds, inside the
tier-1 gate.

All timeouts honor ``REPRO_TEST_TIMEOUT_SCALE``.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.server.client import RetryingClient  # noqa: E402
from repro.server.pool import ServerPool  # noqa: E402
from repro.server.wire import COLUMNAR_CONTENT_TYPE  # noqa: E402


def scaled(seconds: float) -> float:
    try:
        scale = float(os.environ.get("REPRO_TEST_TIMEOUT_SCALE", "1"))
    except ValueError:
        scale = 1.0
    return seconds * (scale if scale > 0 else 1.0)


def main() -> int:
    pool = ServerPool(
        workers=2,
        config={"workload": "fig1", "nranks": 2, "seed": 7,
                "max_body": 1 << 20},
    ).start()
    try:
        host, port = pool.address
        client = RetryingClient(base_url=f"http://{host}:{port}",
                                timeout=scaled(30))

        health = client.get("/v1/healthz").payload
        assert health["status"] == "ok", health
        assert len(health["workers"]) == 2, health

        render = client.post("/v1/sessions/s1/render",
                             {"view": "cct", "depth": 3})
        assert render.status == 200 and "text" in render.payload, render

        as_json = client.get_table("s1", columnar=False, view="cct", depth=3)
        as_cols = client.get_table("s1", columnar=True, view="cct", depth=3)
        assert as_cols.content_type == COLUMNAR_CONTENT_TYPE, as_cols
        reference = {k: v for k, v in as_json.payload.items()
                     if k != "session"}
        assert as_cols.payload == reference, "columnar/JSON table mismatch"

        stats = client.get("/v1/stats").payload
        # the render + both table fetches (healthz/stats are answered by
        # the pool parent and do not count against worker endpoints)
        assert stats["requests"]["total"] >= 3, stats
        assert all(w["alive"] for w in stats["pool"]["workers"]), stats
        rows = as_cols.payload["row_count"]
        print(f"pool smoke OK: 2 workers at {host}:{port}, "
              f"{rows}-row table served as JSON and columnar, "
              f"{stats['requests']['total']} requests aggregated")
        return 0
    finally:
        pool.close()


if __name__ == "__main__":
    sys.exit(main())

"""Tests for comprehension-frame recovery (CPython <= 3.11 semantics)."""

from __future__ import annotations

import sys
import textwrap

import pytest

from repro.hpcstruct.pystruct import build_python_structure


@pytest.fixture()
def make_module(tmp_path):
    def _make(source: str) -> "StructureModel":
        path = tmp_path / "comp.py"
        path.write_text(textwrap.dedent(source))
        return build_python_structure([str(path)])

    return _make


class TestComprehensionScopes:
    def test_listcomp_in_function(self, make_module):
        model = make_module(
            """
            def f(n):
                return [i * i for i in range(n)]
            """
        )
        proc = model.find_procedure("f.<locals>.<listcomp>")
        assert proc is not None
        assert proc.location.line == 3
        # the owner records the comprehension line as a call site
        assert (3, "f.<locals>.<listcomp>") in model.procedure("f").calls

    def test_module_level_comprehension(self, make_module):
        model = make_module("squares = [i * i for i in range(10)]\n")
        assert model.find_procedure("<listcomp>") is not None

    def test_all_comprehension_kinds(self, make_module):
        model = make_module(
            """
            def f(n):
                a = [i for i in range(n)]
                b = {i for i in range(n)}
                c = {i: i for i in range(n)}
                d = sum(i for i in range(n))
                return a, b, c, d
            """
        )
        for kind in ("<listcomp>", "<setcomp>", "<dictcomp>", "<genexpr>"):
            assert model.find_procedure(f"f.<locals>.{kind}") is not None

    @pytest.mark.skipif(sys.version_info >= (3, 12),
                        reason="PEP 709 inlines comprehensions from 3.12")
    def test_traced_comprehension_correlates(self, tmp_path):
        """End to end: a profiled comprehension frame lands in its own
        procedure scope instead of the <unknown> module."""
        import os

        from repro.hpcprof.experiment import Experiment
        from repro.hpcrun.tracer import trace_call

        path = tmp_path / "workc.py"
        path.write_text(textwrap.dedent(
            """
            def crunch(n):
                return sum([i * i for i in range(n)])
            """
        ))
        namespace: dict = {}
        exec(compile(path.read_text(), str(path), "exec"), namespace)
        _res, profile = trace_call(namespace["crunch"], 300,
                                   roots=[str(tmp_path)])
        structure = build_python_structure([str(path)])
        exp = Experiment.from_profile(profile, structure)
        callers = exp.callers_view()
        comp = next(
            (r for r in callers.roots if r.name.endswith("<listcomp>")), None
        )
        assert comp is not None
        assert {c.name for c in comp.children} == {"crunch"}
        # the comprehension body dominates crunch's cost
        events = exp.metric_id("line events")
        crunch_row = next(r for r in callers.roots if r.name == "crunch")
        assert comp.inclusive[events] > 0.5 * crunch_row.inclusive[events]

"""Tests for AST-based structure recovery."""

from __future__ import annotations

import textwrap

import pytest

from repro.core.errors import StructureError
from repro.hpcstruct.model import StructKind, StructureModel
from repro.hpcstruct.pystruct import build_python_structure


@pytest.fixture()
def make_module(tmp_path):
    def _make(source: str, name: str = "mod.py") -> StructureModel:
        path = tmp_path / name
        path.write_text(textwrap.dedent(source))
        return build_python_structure([str(path)], load_module="test")

    return _make


class TestProcedures:
    def test_top_level_function(self, make_module):
        model = make_module(
            """
            def f():
                return 1
            """
        )
        proc = model.procedure("f")
        assert proc.location.line == 2
        assert proc.location.end_line == 3

    def test_module_procedure_exists(self, make_module):
        model = make_module("x = 1\n")
        assert model.procedure("<module>") is not None

    def test_method_qualname(self, make_module):
        model = make_module(
            """
            class Store:
                def get(self):
                    return 1

                def put(self, v):
                    self.v = v
            """
        )
        assert model.procedure("Store.get").location.line == 3
        assert model.procedure("Store.put").location.line == 6

    def test_nested_function_qualname(self, make_module):
        model = make_module(
            """
            def outer():
                def inner():
                    return 2
                return inner()
            """
        )
        assert model.procedure("outer.<locals>.inner").location.line == 3

    def test_nested_class_method(self, make_module):
        model = make_module(
            """
            class A:
                class B:
                    def m(self):
                        return 0
            """
        )
        assert model.find_procedure("A.B.m") is not None


class TestLoops:
    def test_for_loop_scope(self, make_module):
        model = make_module(
            """
            def f(n):
                total = 0
                for i in range(n):
                    total += i
                return total
            """
        )
        proc = model.procedure("f")
        loops = [c for c in proc.children if c.kind is StructKind.LOOP]
        assert len(loops) == 1
        assert loops[0].location.line == 4
        assert loops[0].location.end_line == 5

    def test_nested_loops(self, make_module):
        model = make_module(
            """
            def f(n):
                for i in range(n):
                    for j in range(n):
                        x = i * j
                while n > 0:
                    n -= 1
            """
        )
        proc = model.procedure("f")
        outer = [c for c in proc.children if c.kind is StructKind.LOOP]
        assert len(outer) == 2
        fors = next(l for l in outer if l.location.line == 3)
        inner = [c for c in fors.children if c.kind is StructKind.LOOP]
        assert len(inner) == 1 and inner[0].location.line == 4

    def test_loop_in_if_branch(self, make_module):
        model = make_module(
            """
            def f(n):
                if n > 0:
                    for i in range(n):
                        pass
            """
        )
        proc = model.procedure("f")
        loops = [c for c in proc.children if c.kind is StructKind.LOOP]
        assert len(loops) == 1

    def test_loop_in_try_and_with(self, make_module):
        model = make_module(
            """
            def f(n):
                try:
                    for i in range(n):
                        pass
                except ValueError:
                    while n:
                        n -= 1
                with open("x") as fh:
                    for line in fh:
                        pass
            """
        )
        proc = model.procedure("f")
        loops = [c for c in proc.walk() if c.kind is StructKind.LOOP]
        assert len(loops) == 3

    def test_scope_chain_for_line(self, make_module):
        model = make_module(
            """
            def f(n):
                for i in range(n):
                    for j in range(n):
                        x = 1
                return x
            """
        )
        proc = model.procedure("f")
        chain = StructureModel.scope_chain_for_line(proc, 5)
        assert [s.location.line for s in chain] == [3, 4]
        assert StructureModel.scope_chain_for_line(proc, 6) == []


class TestCallSites:
    def test_call_lines_recorded(self, make_module):
        model = make_module(
            """
            def f(n):
                g(n)
                return h(n) + 1

            def g(n):
                return n

            def h(n):
                return n
            """
        )
        calls = dict(model.procedure("f").calls)
        assert calls[3] == "g"
        assert calls[4] == "h"

    def test_method_and_nested_calls(self, make_module):
        model = make_module(
            """
            def f(obj):
                return obj.method(len(obj.items))
            """
        )
        calls = model.procedure("f").calls
        names = {c for _l, c in calls}
        assert {"method", "len"} <= names

    def test_calls_in_loop_header(self, make_module):
        model = make_module(
            """
            def f(n):
                for i in range(n):
                    pass
            """
        )
        assert (3, "range") in model.procedure("f").calls

    def test_decorator_call_recorded(self, make_module):
        model = make_module(
            """
            @decorate(1)
            def f():
                pass
            """
        )
        calls = model.procedure("<module>").calls
        assert (2, "decorate") in calls


class TestErrors:
    def test_missing_file(self):
        with pytest.raises(StructureError):
            build_python_structure(["/nonexistent/never.py"])

    def test_syntax_error(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        with pytest.raises(StructureError):
            build_python_structure([str(bad)])

    def test_unknown_procedure_lookup(self, make_module):
        model = make_module("def f():\n    pass\n")
        with pytest.raises(StructureError):
            model.procedure("nope")
        assert model.find_procedure("nope") is None

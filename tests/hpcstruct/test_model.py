"""Unit tests for the static structure model."""

from __future__ import annotations

import pytest

from repro.core.errors import StructureError
from repro.hpcstruct.model import (
    SourceLocation,
    StructKind,
    StructureModel,
    StructureNode,
)


@pytest.fixture()
def model():
    m = StructureModel("app")
    lm = m.add_load_module("app.x")
    f = m.add_file(lm, "solver.c")
    m.add_procedure(f, "solve", 10, 80)
    return m


class TestSourceLocation:
    def test_end_line_clamped(self):
        loc = SourceLocation(file="a.c", line=10, end_line=5)
        assert loc.end_line == 10

    def test_contains_line(self):
        loc = SourceLocation(file="a.c", line=10, end_line=20)
        assert loc.contains_line(10)
        assert loc.contains_line(20)
        assert not loc.contains_line(9)
        assert not loc.contains_line(21)


class TestHierarchy:
    def test_add_load_module_idempotent(self, model):
        lm1 = model.add_load_module("app.x")
        lm2 = model.add_load_module("app.x")
        assert lm1 is lm2

    def test_add_file_idempotent(self, model):
        lm = model.add_load_module("app.x")
        f1 = model.add_file(lm, "solver.c")
        f2 = model.add_file(lm, "solver.c")
        assert f1 is f2

    def test_file_requires_load_module(self, model):
        proc = model.procedure("solve")
        with pytest.raises(StructureError):
            model.add_file(proc, "x.c")

    def test_procedure_requires_file(self, model):
        lm = model.add_load_module("app.x")
        with pytest.raises(StructureError):
            model.add_procedure(lm, "oops", 1)

    def test_duplicate_child_key_rejected(self, model):
        lm = model.add_load_module("app.x")
        f = model.add_file(lm, "solver.c")
        with pytest.raises(StructureError):
            model.add_procedure(f, "solve", 10)  # same (name, line)

    def test_enclosing_navigation(self, model):
        proc = model.procedure("solve")
        loop = StructureNode(
            StructKind.LOOP, "loop@20",
            SourceLocation("solver.c", 20, 40), parent=proc,
        )
        assert loop.enclosing_procedure is proc
        assert loop.enclosing_file.name == "solver.c"
        assert [a.kind for a in loop.ancestors()][0] is StructKind.PROCEDURE

    def test_describe(self, model):
        assert "procedure solve" in model.procedure("solve").describe()


class TestProcedureLookup:
    def test_by_name_and_file(self, model):
        assert model.procedure("solve", "solver.c").name == "solve"

    def test_ambiguous_name_needs_file(self, model):
        lm = model.add_load_module("app.x")
        f2 = model.add_file(lm, "other.c")
        model.add_procedure(f2, "solve", 5)
        with pytest.raises(StructureError):
            model.procedure("solve")
        assert model.procedure("solve", "other.c").location.line == 5

    def test_unknown(self, model):
        with pytest.raises(StructureError):
            model.procedure("nope")
        with pytest.raises(StructureError):
            model.procedure("solve", "wrong.c")
        assert model.find_procedure("nope") is None

    def test_procedures_iterator(self, model):
        assert [p.name for p in model.procedures()] == ["solve"]


class TestScopeChain:
    def test_nested_chain_resolution(self, model):
        proc = model.procedure("solve")
        outer = StructureNode(StructKind.LOOP, "loop@20",
                              SourceLocation("solver.c", 20, 60), parent=proc)
        inner = StructureNode(StructKind.LOOP, "loop@30",
                              SourceLocation("solver.c", 30, 50), parent=outer)
        chain = StructureModel.scope_chain_for_line(proc, 35)
        assert chain == [outer, inner]
        assert StructureModel.scope_chain_for_line(proc, 25) == [outer]
        assert StructureModel.scope_chain_for_line(proc, 70) == []

    def test_sibling_loops(self, model):
        proc = model.procedure("solve")
        l1 = StructureNode(StructKind.LOOP, "loop@20",
                           SourceLocation("solver.c", 20, 30), parent=proc)
        l2 = StructureNode(StructKind.LOOP, "loop@40",
                           SourceLocation("solver.c", 40, 50), parent=proc)
        assert StructureModel.scope_chain_for_line(proc, 45) == [l2]
        assert StructureModel.scope_chain_for_line(proc, 25) == [l1]

    def test_inlined_scopes_participate(self, model):
        proc = model.procedure("solve")
        inl = StructureNode(StructKind.INLINED_PROC, "find",
                            SourceLocation("solver.c", 20, 40), parent=proc)
        inner = StructureNode(StructKind.INLINED_LOOP, "loop@25",
                              SourceLocation("solver.c", 25, 35), parent=inl)
        assert StructureModel.scope_chain_for_line(proc, 30) == [inl, inner]


class TestMergeAndStats:
    def test_merge_from_unions_structure(self, model):
        other = StructureModel("app")
        lm = other.add_load_module("app.x")
        f = other.add_file(lm, "solver.c")
        other.add_procedure(f, "solve", 10, 80)      # same as model
        other.add_procedure(f, "helper", 90, 120)    # new
        model.merge_from(other)
        assert model.find_procedure("helper") is not None
        assert model.stats()["procedure"] == 2
        # no duplicates created
        assert model.stats()["file"] == 1

    def test_stats(self, model):
        stats = model.stats()
        assert stats == {"root": 1, "load-module": 1, "file": 1, "procedure": 1}

    def test_kind_predicates(self):
        assert StructKind.INLINED_LOOP.is_loop
        assert StructKind.LOOP.is_loop
        assert StructKind.INLINED_PROC.is_inlined
        assert not StructKind.PROCEDURE.is_inlined

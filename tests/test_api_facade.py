"""The blessed ``repro.api`` facade and the deprecation shims.

Pins the Python-side v1 promise: every facade name resolves, the
one-call :func:`repro.api.open_database` works on both database
formats, and the moved error modules keep working as shims that (a)
warn and (b) re-export the *identical* class objects — so existing
``except`` clauses still catch.
"""

from __future__ import annotations

import warnings

import pytest

import repro.api as api


class TestFacadeSurface:
    def test_all_names_resolve(self):
        missing = [name for name in api.__all__ if not hasattr(api, name)]
        assert missing == []

    def test_all_is_sorted_by_section_not_duplicated(self):
        assert len(api.__all__) == len(set(api.__all__))

    def test_star_import(self):
        namespace: dict = {}
        exec("from repro.api import *", namespace)
        assert set(api.__all__) <= set(namespace)


class TestOpenDatabase:
    @pytest.fixture(scope="class")
    def experiment(self):
        from repro.sim.workloads import fig1
        from repro.hpcprof.experiment import Experiment

        return Experiment.from_program(fig1.build())

    def test_binary_round_trip(self, experiment, tmp_path):
        path = str(tmp_path / "exp.rpdb")
        api.save(experiment, path)
        session = api.open_database(path)
        assert isinstance(session, api.ViewerSession)
        for kind in api.ViewKind:
            text = api.render_view(session.view(kind), depth=2)
            assert experiment.name in text or text

    def test_xml_round_trip(self, experiment, tmp_path):
        path = str(tmp_path / "experiment.xml")
        api.save(experiment, path)
        session = api.open_database(path)
        assert len(session.experiment.cct) == len(experiment.cct)

    def test_missing_file_raises_taxonomy(self, tmp_path):
        with pytest.raises(api.DatabaseError):
            api.open_database(str(tmp_path / "absent.rpdb"))

    def test_salvage_flag(self, experiment, tmp_path):
        from repro.hpcprof import binio

        blob = binio.dumps_binary(experiment)
        path = tmp_path / "cut.rpdb"
        path.write_bytes(blob[: len(blob) - 40])
        with pytest.raises(api.DatabaseError):
            api.open_database(str(path))
        session = api.open_database(str(path), salvage=True)
        assert session.experiment.load_report is not None


class TestDeprecationShims:
    def test_core_errors_warns_and_aliases(self):
        import importlib
        import repro.core.errors as shim_module

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shim = importlib.reload(shim_module)
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        from repro.errors import DatabaseError, ReproError

        assert shim.DatabaseError is DatabaseError
        assert shim.ReproError is ReproError

    def test_server_errors_warns_and_aliases(self):
        import importlib
        import repro.server.errors as shim_module

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shim = importlib.reload(shim_module)
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        from repro.errors import ApiError, BadRequest, NotFound

        assert shim.ApiError is ApiError
        assert shim.BadRequest is BadRequest
        assert shim.NotFound is NotFound

    def test_old_except_clauses_still_catch(self, tmp_path):
        """The load path raises repro.errors classes; a caller still
        importing from the old module must catch them unchanged."""
        from repro.core.errors import DatabaseError as OldDatabaseError

        with pytest.raises(OldDatabaseError):
            api.open_database(str(tmp_path / "nope.rpdb"))

    def test_wire_codes_cover_every_domain_family(self):
        from repro import errors

        for exc_type in errors.WIRE_CODES:
            assert issubclass(exc_type, errors.ReproError)
        code, status = errors.wire_code(errors.FormulaError("x"))
        assert (code, status) == ("bad-formula", 400)
        # MRO walk: an unlisted subclass maps through its parent
        class CustomMetricError(errors.MetricError):
            pass

        code, status = errors.wire_code(CustomMetricError("x"))
        assert (code, status) == ("bad-metric", 400)

"""Tests for multi-process SPMD execution."""

from __future__ import annotations

import pytest

from repro.core.errors import SimulationError
from repro.hpcrun.counters import CYCLES
from repro.sim.parallel import (
    resolve_factory,
    run_spmd_parallel,
    spmd_experiment_parallel,
)
from repro.sim.spmd import run_spmd
from repro.sim.workloads import pflotran

FACTORY = "repro.sim.workloads.pflotran:build"


class TestFactoryResolution:
    def test_resolves(self):
        assert resolve_factory(FACTORY) is pflotran.build

    @pytest.mark.parametrize("bad", ["", "no-colon", "repro.sim:", ":build",
                                     "not.a.module:build",
                                     "repro.sim.workloads.pflotran:missing"])
    def test_rejects_bad_references(self, bad):
        with pytest.raises(SimulationError):
            resolve_factory(bad)


class TestParallelExecution:
    def test_matches_sequential_results(self):
        """Worker-process execution must reproduce in-process profiles
        exactly: same trie, same totals, rank by rank."""
        nranks = 4
        sequential = run_spmd(pflotran.build(), nranks, seed=7)
        parallel = run_spmd_parallel(FACTORY, nranks, seed=7, processes=2)
        assert len(parallel) == nranks
        for seq, par in zip(sequential, parallel):
            assert par.rank == seq.rank
            assert par.totals() == pytest.approx(seq.totals())
            seq_paths = sorted(
                (tuple(f.key for f in frames), line, tuple(sorted(costs.items())))
                for frames, line, costs in seq.paths()
            )
            par_paths = sorted(
                (tuple(f.key for f in frames), line, tuple(sorted(costs.items())))
                for frames, line, costs in par.paths()
            )
            assert len(seq_paths) == len(par_paths)
            for (sk, sl, sc), (pk, pl, pc) in zip(seq_paths, par_paths):
                assert sk == pk and sl == pl
                assert dict(sc) == pytest.approx(dict(pc))

    def test_experiment_assembly(self):
        # 8+ ranks: fewer and the heterogeneity field's correlation window
        # covers every rank, flattening the imbalance to zero idleness
        exp = spmd_experiment_parallel(FACTORY, nranks=8, processes=2)
        assert exp.nranks == 8
        assert "(mp)" in exp.name
        result = exp.hot_path(pflotran.IDLENESS)
        assert any(n.name.startswith("loop at timestepper")
                   for n in result.path)

    def test_single_process_fallback(self):
        profiles = run_spmd_parallel(FACTORY, nranks=2, processes=1)
        assert len(profiles) == 2

    def test_invalid_nranks(self):
        with pytest.raises(SimulationError):
            run_spmd_parallel(FACTORY, nranks=0)

"""Trace mode of the simulated executor: timestamped attribution,
slice splitting, rank-dependent timelines, and the untimed contract."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.executor import execute_trace
from repro.sim.spmd import spmd_experiment, trace_spmd
from repro.sim.workloads import fig1


def test_trace_spmd_validates_nranks():
    with pytest.raises(SimulationError, match="nranks"):
        trace_spmd(fig1.build(), nranks=0)


def test_execute_trace_validates_slices():
    with pytest.raises(SimulationError, match="trace_slices"):
        execute_trace(fig1.build(), trace_slices=0)


def test_trace_is_sealed_and_timed():
    trace = execute_trace(fig1.build(), seed=7)
    assert trace.sealed
    assert trace.n_events > 0
    assert trace.t_begin >= 0.0
    assert list(trace.times) == sorted(trace.times)


def test_slices_partition_costs_exactly():
    """trace_slices splits each attribution into integer parts that sum
    to the unsliced ticks — the whole-trace profile is identical."""
    one = execute_trace(fig1.build(), seed=7, trace_slices=1)
    many = execute_trace(fig1.build(), seed=7, trace_slices=5)
    assert many.n_events >= one.n_events
    # same contexts, same exact tick totals
    assert {c[0] for c in one.contexts} == {c[0] for c in many.contexts}
    totals_one = one.window_ticks(None, None).sum(axis=0)
    totals_many = many.window_ticks(None, None).sum(axis=0)
    assert np.array_equal(np.sort(totals_one), np.sort(totals_many))


def test_untimed_window_matches_spmd_experiment():
    """window(None, None) over the trace covers exactly the scopes of
    the untimed SPMD run, with matching inclusive root totals."""
    traces = trace_spmd(fig1.build(), nranks=2, seed=7, trace_slices=2)
    windowed = traces.window_experiment(None, None)
    untimed = spmd_experiment(fig1.build(), nranks=2, seed=7)

    def names(exp):
        return sorted(n.name for n in exp.cct.walk() if n.name)

    assert names(windowed) == names(untimed)


def test_rank_dependent_costs_skew_timelines(straggler_traces):
    ends = [t.t_end for t in straggler_traces.traces]
    assert ends == sorted(ends)
    assert ends[-1] > ends[0]


def test_rank_clocks_start_at_zero(fig1_traces):
    for t in fig1_traces.traces:
        assert t.t_begin >= 0.0


@pytest.fixture(scope="module")
def fig1_traces():
    return trace_spmd(fig1.build(), nranks=2, seed=7, trace_slices=3)


@pytest.fixture(scope="module")
def straggler_traces():
    from repro.sim.program import Call, Module, Procedure, Program, Work

    ranked = Procedure(name="ranked_work", line=1, end_line=4, body=[
        Work(line=2, costs=lambda ctx: {"cycles": 2.0 * (1 + ctx.rank)}),
    ])
    main = Procedure(name="main", line=6, end_line=10, body=[
        Work(line=7, costs={"cycles": 1.0}),
        Call(line=8, callee="ranked_work"),
    ])
    program = Program(
        name="straggler",
        modules=[Module(path="straggler.c", procedures=[main, ranked])],
        entry="main",
        metrics=[("cycles", "cycles")],
    )
    return trace_spmd(program, nranks=4, seed=7, trace_slices=4)

"""Calibration of the S3D model against the paper's Figures 3 and 6.

The reproduction criterion is *shape*, not absolute numbers: who wins,
by roughly what factor, and where the hot path lands.  Tolerances below
are absolute percentage points against the values printed in the paper.
"""

from __future__ import annotations

import pytest

from repro.core.views import NodeCategory
from repro.hpcprof.experiment import Experiment
from repro.hpcrun.counters import CYCLES, FLOPS
from repro.sim.workloads import s3d


@pytest.fixture(scope="module")
def exp():
    return Experiment.from_program(s3d.build())


@pytest.fixture(scope="module")
def shares(exp):
    total = exp.total(CYCLES)
    cyc = exp.metric_id(CYCLES)

    def pct(node, flavor="inclusive"):
        return 100.0 * getattr(node, flavor).get(cyc, 0.0) / total

    return exp, total, cyc, pct


class TestFig3CallingContext:
    def test_loop82_dominates_inclusively_but_not_exclusively(self, shares):
        exp, _total, _cyc, pct = shares
        flat = exp.flat_view()
        ierk = flat.find("integrate_erk", category=NodeCategory.PROCEDURE)
        loop82 = next(c for c in ierk.children if c.category is NodeCategory.LOOP)
        assert loop82.line == 82
        assert pct(loop82) == pytest.approx(97.9, abs=0.5)
        assert pct(loop82, "exclusive") < 0.5  # "negligible, only 0.0%"

    def test_rhsf_exclusive_share(self, shares):
        exp, _total, _cyc, pct = shares
        rhsf = exp.flat_view().find("rhsf", category=NodeCategory.PROCEDURE)
        assert pct(rhsf, "exclusive") == pytest.approx(8.7, abs=0.8)

    def test_chemkin_inclusive_share(self, shares):
        exp, _total, _cyc, pct = shares
        chem = exp.flat_view().find(
            "chemkin_m_reaction_rate", category=NodeCategory.PROCEDURE
        )
        assert pct(chem) == pytest.approx(41.4, abs=1.0)

    def test_hot_path_lands_on_chemkin(self, exp):
        """Figure 3: 'hot path analysis detects a potential performance
        bottleneck in chemkin_m_reaction_rate, where 41.4% of the
        inclusive cycles is spent computing reaction rates'."""
        result = exp.hot_path(CYCLES)
        assert result.hotspot.name == "chemkin_m_reaction_rate"
        assert 100.0 * result.hotspot_value / exp.total(CYCLES) == pytest.approx(
            41.4, abs=1.0
        )

    def test_hot_path_passes_through_loop82(self, exp):
        """The paper highlights that the expanded call chain interleaves
        loops with procedure calls (static + dynamic context)."""
        result = exp.hot_path(CYCLES)
        names = [n.name for n in result.path]
        assert any("82" in n for n in names if n.startswith("loop"))
        loops = [n for n in result.path if n.category is NodeCategory.LOOP]
        assert len(loops) >= 2

    def test_chain_main_to_chemkin(self, exp):
        result = exp.hot_path(CYCLES)
        names = [n.name for n in result.path]
        for expected in ["main", "solve_driver", "integrate_erk", "rhsf"]:
            assert expected in names


class TestFig6DerivedMetrics:
    @pytest.fixture(scope="class")
    def waste_rows(self, exp):
        """(name, waste share %, efficiency %) for every loop, sorted."""
        cyc, fl = exp.metric_id(CYCLES), exp.metric_id(FLOPS)
        total_waste = 4.0 * exp.total(CYCLES) - exp.total(FLOPS)
        flat = exp.flat_view()
        rows = []
        for proc_name in [
            "compute_diffusive_flux", "exp", "thermchem_m_calc_temp",
            "derivative_m_deriv", "ratt", "ratx", "qssa",
        ]:
            proc = flat.find(proc_name, category=NodeCategory.PROCEDURE)
            for child in proc.children:
                if child.category is NodeCategory.LOOP:
                    c = child.inclusive.get(cyc, 0.0)
                    f = child.inclusive.get(fl, 0.0)
                    rows.append(
                        (proc_name, 100.0 * (4 * c - f) / total_waste,
                         100.0 * f / (4 * c) if c else 0.0)
                    )
        rows.sort(key=lambda r: -r[1])
        return rows

    def test_flux_loop_has_most_waste(self, waste_rows):
        name, share, eff = waste_rows[0]
        assert name == "compute_diffusive_flux"
        assert share == pytest.approx(13.5, abs=1.0)

    def test_flux_loop_efficiency_is_low(self, waste_rows):
        _name, _share, eff = waste_rows[0]
        assert eff == pytest.approx(6.0, abs=1.0)

    def test_exp_loop_is_second_and_tight(self, waste_rows):
        name, _share, eff = waste_rows[1]
        assert name == "exp"
        assert eff == pytest.approx(39.0, abs=2.0)

    def test_tuned_flux_loop_speedup(self, exp):
        """The paper's loop transformations improved the flux loop 2.9x."""
        tuned = Experiment.from_program(s3d.build(tuned=True))
        cyc = exp.metric_id(CYCLES)

        def flux_cycles(e):
            flat = e.flat_view()
            proc = flat.find("compute_diffusive_flux", category=NodeCategory.PROCEDURE)
            loop = next(c for c in proc.children if c.category is NodeCategory.LOOP)
            return loop.inclusive[cyc]

        speedup = flux_cycles(exp) / flux_cycles(tuned)
        assert speedup == pytest.approx(2.9, abs=0.01)

    def test_derived_waste_metric_sorts_flux_loop_first(self, exp):
        """Figure 6's workflow: define the waste metric, flatten the Flat
        View so loops from different routines sit side by side, and sort
        by the loops' own (exclusive) waste — the flux-diffusion loop
        ranks first and the math-library exp loop second."""
        from repro.core.metrics import MetricFlavor

        cyc, fl = exp.metric_id(CYCLES), exp.metric_id(FLOPS)
        exp.add_derived_metric("fp waste", f"4 * ${cyc} - ${fl}")
        flat = exp.flat_view()
        flat.flatten()  # files -> procedures
        flat.flatten()  # procedures -> loops (Figure 6 uses flattening)
        spec = exp.spec("fp waste", MetricFlavor.EXCLUSIVE)
        rows = sorted(
            flat.current_roots(), key=lambda r: flat.value(r, spec), reverse=True
        )
        top_loops = [r for r in rows if r.category is NodeCategory.LOOP][:2]
        assert top_loops[0].struct.location.file == "diffflux.f90"
        assert top_loops[1].struct.location.file == "e_exp.c"

"""Unit tests for the thousand-rank generator (:mod:`repro.sim.scale`)."""

from __future__ import annotations

import os

import pytest

from repro.errors import SimulationError
from repro.hpcprof import database
from repro.sim.scale import IMBALANCE_MODELS, generate_rank_files, scale_program


class TestScaleProgram:
    def test_shape_matches_uniform_tree(self):
        prog = scale_program(fanout=3, depth=2)
        procs = [p for m in prog.modules for p in m.procedures]
        assert len(procs) == 1 + 3 + 3  # one per level-0, fanout per deeper level
        assert prog.entry == "p0_0"

    def test_unknown_imbalance_model_rejected(self):
        with pytest.raises(SimulationError, match="unknown imbalance"):
            scale_program(imbalance="bogus")

    def test_all_registered_models_build(self):
        for name in IMBALANCE_MODELS:
            assert scale_program(fanout=2, depth=1, imbalance=name)


class TestGenerateRankFiles:
    def test_writes_one_file_per_rank(self, tmp_path):
        paths = generate_rank_files(str(tmp_path), 5, fanout=2, depth=2)
        assert len(paths) == 5
        assert [os.path.basename(p) for p in paths] == [
            f"rank{r:04d}.rpdb" for r in range(5)
        ]
        assert all(os.path.exists(p) for p in paths)

    def test_deterministic(self, tmp_path):
        a = generate_rank_files(str(tmp_path / "a"), 3, fanout=2, depth=2)
        b = generate_rank_files(str(tmp_path / "b"), 3, fanout=2, depth=2)
        for pa, pb in zip(a, b):
            with open(pa, "rb") as fa, open(pb, "rb") as fb:
                assert fa.read() == fb.read()

    def test_ranks_differ_under_imbalance(self, tmp_path):
        paths = generate_rank_files(str(tmp_path), 4, fanout=2, depth=2,
                                    imbalance="linear_skew")
        totals = []
        for path in paths:
            exp = database.load(path)
            totals.append(exp.cct.root.inclusive.get(0, 0.0))
        assert totals == sorted(totals)
        assert totals[0] < totals[-1]

    def test_progress_callback(self, tmp_path):
        seen = []
        generate_rank_files(str(tmp_path), 3, fanout=2, depth=1,
                            progress=lambda r, n: seen.append((r, n)))
        assert seen == [(0, 3), (1, 3), (2, 3)]

    def test_zero_ranks_rejected(self, tmp_path):
        with pytest.raises(SimulationError, match="nranks"):
            generate_rank_files(str(tmp_path), 0)

"""Unit tests for the synthetic program DSL and its executor."""

from __future__ import annotations

import pytest

from repro.core.errors import SimulationError
from repro.sim.executor import execute
from repro.sim.program import (
    Call,
    ExecContext,
    Inlined,
    Loop,
    Module,
    Procedure,
    Program,
    Work,
    resolve_costs,
    resolve_number,
)


def one_proc_program(body, metrics=(("c", "units"),), entry="main", extra=()):
    return Program(
        name="t",
        modules=[Module(path="t.c",
                        procedures=[Procedure(name="main", line=1, body=body),
                                    *extra])],
        entry=entry,
        metrics=list(metrics),
    )


class TestValidation:
    def test_duplicate_procedure_names_rejected(self):
        with pytest.raises(SimulationError):
            Program(
                name="dup",
                modules=[
                    Module(path="a.c", procedures=[Procedure("f", line=1)]),
                    Module(path="b.c", procedures=[Procedure("f", line=1)]),
                ],
                entry="f",
            )

    def test_missing_entry_rejected(self):
        with pytest.raises(SimulationError):
            one_proc_program([], entry="nope")

    def test_undefined_callee_rejected(self):
        with pytest.raises(SimulationError):
            one_proc_program([Call(line=2, callee="ghost")])

    def test_callee_check_descends_into_loops_and_inlines(self):
        with pytest.raises(SimulationError):
            one_proc_program([
                Loop(line=2, body=[
                    Inlined(line=3, name="inl",
                            body=[Call(line=4, callee="ghost")])
                ])
            ])

    def test_lookup_helpers(self):
        prog = one_proc_program([])
        assert prog.procedure("main").name == "main"
        assert prog.module_of("main").path == "t.c"
        with pytest.raises(SimulationError):
            prog.procedure("nope")
        with pytest.raises(SimulationError):
            prog.module_of("nope")

    def test_extent_inference(self):
        loop = Loop(line=5, body=[Work(line=8), Work(line=12)])
        assert loop.end_line == 12
        inl = Inlined(line=3, name="x", body=[loop])
        assert inl.end_line == 12
        proc = Procedure(name="p", line=1, body=[inl])
        assert proc.end_line == 12


class TestExecContext:
    def test_helpers(self):
        ctx = ExecContext(path=("m", "f", "g"))
        assert ctx.current == "g"
        assert ctx.caller == "f"
        assert ctx.depth_of("g") == 1
        assert ctx.called_from("f")
        assert ctx.called_from("m", "f")
        assert not ctx.called_from("g")

    def test_entry_has_no_caller(self):
        assert ExecContext(path=("m",)).caller is None

    def test_resolvers(self):
        ctx = ExecContext(path=("m",), rank=3)
        assert resolve_number(5, ctx) == 5.0
        assert resolve_number(lambda c: c.rank * 2, ctx) == 6.0
        assert resolve_costs(None, ctx) == {}
        assert resolve_costs({"c": 2, "z": 0.0}, ctx) == {"c": 2.0}
        assert resolve_costs(lambda c: {"c": c.rank}, ctx) == {"c": 3.0}


class TestExecutor:
    def test_loop_trips_multiply_costs(self):
        prog = one_proc_program([
            Loop(line=2, trips=3, body=[
                Loop(line=3, trips=4, body=[Work(line=4, costs={"c": 1.0})])
            ])
        ])
        profile = execute(prog)
        assert profile.totals() == {0: 12.0}

    def test_zero_trips_skip_body(self):
        prog = one_proc_program([
            Loop(line=2, trips=0, body=[Work(line=3, costs={"c": 1.0})])
        ])
        assert execute(prog).totals() == {}

    def test_call_count_scales_callee(self):
        callee = Procedure(name="leaf", line=10,
                           body=[Work(line=11, costs={"c": 2.0})])
        prog = one_proc_program([Call(line=2, callee="leaf", count=5)],
                                extra=[callee])
        assert execute(prog).totals() == {0: 10.0}

    def test_site_costs_attributed_at_call_line(self):
        callee = Procedure(name="leaf", line=10,
                           body=[Work(line=11, costs={"c": 1.0})])
        prog = one_proc_program(
            [Call(line=2, callee="leaf", site_costs={"c": 0.5})],
            extra=[callee],
        )
        profile = execute(prog)
        by_line = {
            (frames[-1].proc, line): costs
            for frames, line, costs in profile.paths()
        }
        assert by_line[("main", 2)] == {0: 0.5}
        assert by_line[("leaf", 11)] == {0: 1.0}

    def test_inlined_work_stays_in_frame(self):
        prog = one_proc_program([
            Inlined(line=2, name="inlme",
                    body=[Work(line=3, costs={"c": 7.0})])
        ])
        profile = execute(prog)
        frames, line, costs = next(iter(profile.paths()))
        assert [f.proc for f in frames] == ["main"]
        assert line == 3 and costs == {0: 7.0}

    def test_runaway_recursion_guarded(self):
        rec = Procedure(name="rec", line=10,
                        body=[Call(line=11, callee="rec")])
        prog = one_proc_program([Call(line=2, callee="rec")], extra=[rec])
        with pytest.raises(SimulationError):
            execute(prog, max_depth=50)

    def test_bounded_recursion_by_context(self):
        rec = Procedure(
            name="rec", line=10,
            body=[
                Work(line=11, costs={"c": 1.0}),
                Call(line=12, callee="rec",
                     count=lambda ctx: 1.0 if ctx.depth_of("rec") < 4 else 0.0),
            ],
        )
        prog = one_proc_program([Call(line=2, callee="rec")], extra=[rec])
        assert execute(prog).totals() == {0: 4.0}

    def test_unknown_metric_autoregistered(self):
        prog = one_proc_program([Work(line=2, costs={"surprise": 1.0})],
                                metrics=[("c", "u")])
        profile = execute(prog)
        assert "surprise" in profile.metrics
        assert profile.totals()[profile.metrics.by_name("surprise").mid] == 1.0

    def test_rank_and_params_reach_context(self):
        prog = one_proc_program([
            Work(line=2, costs=lambda ctx: {
                "c": ctx.rank * 100 + ctx.params["boost"]
            })
        ])
        profile = execute(prog, rank=2, nranks=4, params={"boost": 7})
        assert profile.totals() == {0: 207.0}

    def test_deterministic_under_seed(self):
        prog = one_proc_program([
            Work(line=2, costs=lambda ctx: {"c": float(ctx.rng.integers(1, 100))})
        ])
        a = execute(prog, seed=42).totals()
        b = execute(prog, seed=42).totals()
        c = execute(prog, seed=43).totals()
        assert a == b
        assert a != c

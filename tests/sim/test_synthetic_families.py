"""Tests for the parametric synthetic program families."""

from __future__ import annotations

import pytest

from repro.core.attribution import exposed_instances
from repro.core.views import NodeCategory
from repro.hpcprof.experiment import Experiment
from repro.sim.workloads.synthetic import (
    deep_chain,
    recursive_ladder,
    uniform_tree,
    wide_flat,
)


class TestUniformTree:
    @pytest.mark.parametrize("fanout,depth", [(2, 2), (4, 3)])
    def test_frame_count(self, fanout, depth):
        exp = Experiment.from_program(uniform_tree(fanout, depth))
        frames = sum(1 for _ in exp.cct.frames())
        expected = sum(fanout**level for level in range(depth + 1))
        assert frames == expected

    def test_every_frame_costed(self):
        exp = Experiment.from_program(uniform_tree(3, 2))
        assert all(f.exclusive for f in exp.cct.frames())


class TestDeepChain:
    def test_chain_depth(self):
        exp = Experiment.from_program(deep_chain(length=30))
        max_frames = max(
            len(f.call_path()) for f in exp.cct.frames()
        )
        assert max_frames == 31

    def test_loops_interleave(self):
        exp = Experiment.from_program(deep_chain(length=5, with_loops=True))
        view = exp.calling_context_view()
        result = exp.hot_path("cycles", view=view)
        loops = [n for n in result.path if n.category is NodeCategory.LOOP]
        # at the last link the loop (1 unit) ties with the local statement
        # (1 unit) and the tie resolves to the first child, so the path
        # interleaves a loop at every link but the last
        assert len(loops) == 4

    def test_without_loops(self):
        exp = Experiment.from_program(deep_chain(length=5, with_loops=False))
        view = exp.calling_context_view()
        kinds = {n.category for r in view.roots for n in r.walk()}
        assert NodeCategory.LOOP not in kinds

    def test_total_cost_linear_in_length(self):
        short = Experiment.from_program(deep_chain(length=10))
        long = Experiment.from_program(deep_chain(length=20))
        assert long.total("cycles") / short.total("cycles") == pytest.approx(
            21 / 11
        )


class TestWideFlat:
    def test_width(self):
        exp = Experiment.from_program(wide_flat(width=50))
        driver = exp.calling_context_view().roots[0]
        assert len(driver.children) == 50

    def test_sorted_order_is_by_cost(self):
        exp = Experiment.from_program(wide_flat(width=25))
        view = exp.calling_context_view()
        rows = view.sorted_children(view.roots[0], exp.spec("cycles"))
        assert rows[0].name == "leaf24"  # cost i+1: last leaf is heaviest
        assert rows[-1].name == "leaf0"


class TestRecursiveLadder:
    def test_depth_per_context(self):
        exp = Experiment.from_program(recursive_ladder(depth=6, contexts=2))
        rec_frames = [f for f in exp.cct.frames() if f.name == "rec"]
        assert len(rec_frames) == 12

    def test_exposed_rule_under_stress(self):
        contexts, depth = 4, 8
        exp = Experiment.from_program(
            recursive_ladder(depth=depth, contexts=contexts)
        )
        rec_frames = [f for f in exp.cct.frames() if f.name == "rec"]
        exposed = exposed_instances(rec_frames)
        assert len(exposed) == contexts  # one chain head per call site
        mid = exp.metric_id("cycles")
        callers = exp.callers_view()
        rec_row = next(r for r in callers.roots if r.name == "rec")
        # each chain costs `depth` units; exposure counts each chain once
        assert rec_row.inclusive[mid] == float(contexts * depth)
        # excluding nested instances, exclusive = one frame per chain
        assert rec_row.exclusive[mid] == float(contexts)

    def test_flat_view_matches_callers(self):
        exp = Experiment.from_program(recursive_ladder(depth=5, contexts=3))
        mid = exp.metric_id("cycles")
        callers = next(r for r in exp.callers_view().roots if r.name == "rec")
        flat = exp.flat_view().find("rec", category=NodeCategory.PROCEDURE)
        assert callers.inclusive[mid] == flat.inclusive[mid]
        assert callers.exclusive[mid] == flat.exclusive[mid]

"""Tests for the imbalance models and the PFLOTRAN case study (Figure 7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import SimulationError
from repro.hpcprof.summarize import imbalance_factor
from repro.hpcrun.counters import CYCLES
from repro.sim import imbalance
from repro.sim.spmd import run_spmd, spmd_experiment
from repro.sim.workloads import pflotran


class TestImbalanceModels:
    def test_uniform(self):
        shares = imbalance.work_shares(imbalance.uniform(), 16)
        assert np.allclose(shares, 1.0)
        assert imbalance_factor(shares) == 1.0

    def test_linear_skew_range_and_mean(self):
        shares = imbalance.work_shares(imbalance.linear_skew(0.5), 32)
        assert shares[0] == pytest.approx(0.5)
        assert shares[-1] == pytest.approx(1.5)
        assert shares.mean() == pytest.approx(1.0)

    def test_linear_skew_single_rank(self):
        assert imbalance.work_shares(imbalance.linear_skew(0.5), 1)[0] == 1.0

    def test_hotspot(self):
        shares = imbalance.work_shares(imbalance.hotspot(count=2, factor=4.0), 8)
        assert list(shares[:2]) == [4.0, 4.0]
        assert np.allclose(shares[2:], 1.0)

    def test_lognormal_deterministic_per_rank(self):
        model = imbalance.lognormal_field(sigma=0.5, seed=3)
        a = imbalance.work_shares(model, 64)
        b = imbalance.work_shares(model, 64)
        assert np.array_equal(a, b)
        assert a.std() > 0

    def test_heterogeneous_media_is_correlated(self):
        """Smoothing must reduce rank-to-rank variation vs the raw field."""
        raw = imbalance.work_shares(imbalance.lognormal_field(0.5, seed=11), 128)
        smooth = imbalance.work_shares(
            imbalance.heterogeneous_media(0.5, correlation=16, seed=11), 128
        )
        assert np.abs(np.diff(smooth)).mean() < np.abs(np.diff(raw)).mean()

    def test_idleness_shares(self):
        model = imbalance.linear_skew(0.5)
        idle = imbalance.idleness_shares(model, 16)
        assert idle.min() == 0.0          # the busiest rank never idles
        assert idle.argmin() == 15
        assert idle[0] == pytest.approx(1.0)  # lightest rank idles the most

    def test_invalid_parameters(self):
        with pytest.raises(SimulationError):
            imbalance.linear_skew(1.5)
        with pytest.raises(SimulationError):
            imbalance.hotspot(count=0)
        with pytest.raises(SimulationError):
            imbalance.work_shares(imbalance.uniform(), 0)


class TestPflotran:
    @pytest.fixture(scope="class")
    def exp(self):
        return spmd_experiment(pflotran.build(), nranks=32)

    def test_ranks_have_uneven_cycles(self, exp):
        vec = exp.rank_vector(exp.cct.root, CYCLES)
        assert len(vec) == 32
        assert imbalance_factor(vec) > 1.15

    def test_cycle_vector_matches_imbalance_model(self, exp):
        """Per-rank totals must follow the heterogeneity field's shape."""
        vec = exp.rank_vector(exp.cct.root, CYCLES)
        shares = pflotran.rank_work_shares({}, 32)
        correlation = np.corrcoef(vec, shares)[0, 1]
        assert correlation > 0.99

    def test_idleness_complements_work(self, exp):
        idle = exp.rank_vector(exp.cct.root, pflotran.IDLENESS)
        work = exp.rank_vector(exp.cct.root, CYCLES)
        # the busiest rank idles least
        assert idle[np.argmax(work)] == idle.min()
        # idleness + work share is flat across ranks (BSP synchronization)
        shares = pflotran.rank_work_shares({}, 32)
        gap = shares.max() - shares
        assert np.corrcoef(idle, gap)[0, 1] > 0.99

    def test_hot_path_on_idleness_finds_timestepper_loop(self, exp):
        """Sorting by total inclusive idleness and applying hot path
        analysis drills down into the main iteration loop at
        timestepper.F90:384 (the paper's Figure 7 workflow)."""
        result = exp.hot_path(pflotran.IDLENESS)
        loop_names = [
            n.name for n in result.path if n.name.startswith("loop at timestepper")
        ]
        assert loop_names == ["loop at timestepper.F90:384-425"]
        assert result.hotspot.name in ("MPI_Allreduce", "libmpi.so:0")

    def test_summary_metrics_capture_spread(self, exp):
        ids = exp.summarize(CYCLES)
        root = exp.cct.root
        assert root.inclusive[ids.maximum] > root.inclusive[ids.mean] * 1.1
        assert root.inclusive[ids.stddev] > 0

    def test_full_grid_params_scale_costs(self):
        small = spmd_experiment(pflotran.build(), nranks=4)
        big = spmd_experiment(
            pflotran.build(), nranks=4,
            params={"nx": 850, "ny": 1000, "nz": 80},
        )
        ratio = big.total(CYCLES) / small.total(CYCLES)
        assert ratio == pytest.approx(1000.0, rel=0.01)  # 1000x more cells

    def test_deterministic_given_seed(self):
        a = run_spmd(pflotran.build(), nranks=4, seed=5)
        b = run_spmd(pflotran.build(), nranks=4, seed=5)
        assert [p.totals() for p in a] == [p.totals() for p in b]

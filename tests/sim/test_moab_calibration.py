"""Calibration of the MOAB model against the paper's Figures 4 and 5."""

from __future__ import annotations

import pytest

from repro.core.views import NodeCategory
from repro.hpcprof.experiment import Experiment
from repro.hpcrun.counters import CYCLES, L1_DCM
from repro.sim.workloads import moab


@pytest.fixture(scope="module")
def exp():
    return Experiment.from_program(moab.build())


class TestFig4CallersView:
    def test_memset_total_l1_share(self, exp):
        """_intel_fast_memset.A accounts for 9.7% of total L1 misses."""
        l1 = exp.metric_id(L1_DCM)
        callers = exp.callers_view()
        memset = next(r for r in callers.roots if r.name == "_intel_fast_memset.A")
        share = 100.0 * memset.inclusive[l1] / exp.total(L1_DCM)
        assert share == pytest.approx(9.7, abs=0.3)

    def test_memset_has_two_callers(self, exp):
        callers = exp.callers_view()
        memset = next(r for r in callers.roots if r.name == "_intel_fast_memset.A")
        assert len(memset.children) == 2

    def test_create_dominates_memset_cost(self, exp):
        """Almost all of it (9.6%) comes from Sequence_data::create."""
        l1 = exp.metric_id(L1_DCM)
        total = exp.total(L1_DCM)
        callers = exp.callers_view()
        memset = next(r for r in callers.roots if r.name == "_intel_fast_memset.A")
        by_name = {c.name: c for c in memset.children}
        create = by_name["Sequence_data::create"]
        other = by_name["TypeSequenceManager::allocate"]
        assert 100.0 * create.inclusive[l1] / total == pytest.approx(9.6, abs=0.3)
        assert 100.0 * other.inclusive[l1] / total < 0.5

    def test_memset_lives_in_the_runtime_library(self, exp):
        """The replaced memset belongs to the Intel runtime, not MOAB;
        the fused rows display it at the caller's call site while its
        static home stays libirc.so."""
        ccv = exp.calling_context_view()
        rows = ccv.find_all("_intel_fast_memset.A")
        assert len(rows) == 2
        assert {r.file for r in rows} == {
            "Sequence_data.cpp", "TypeSequenceManager.cpp"
        }
        assert all(r.struct.location.file == "libirc.so" for r in rows)


class TestFig5FlatView:
    def test_get_coords_cycles_all_in_loop(self, exp):
        """18.9% of total cycles, all inside the highlighted loop."""
        cyc = exp.metric_id(CYCLES)
        total = exp.total(CYCLES)
        flat = exp.flat_view()
        gc = flat.find("MBCore::get_coords", category=NodeCategory.PROCEDURE)
        assert 100.0 * gc.inclusive[cyc] / total == pytest.approx(18.9, abs=0.3)
        loop = next(c for c in gc.children if c.category is NodeCategory.LOOP)
        assert loop.inclusive[cyc] == pytest.approx(gc.inclusive[cyc])

    def test_inlined_hierarchy(self, exp):
        """loop -> inlined find -> inlined STL loop -> inlined compare."""
        flat = exp.flat_view()
        gc = flat.find("MBCore::get_coords", category=NodeCategory.PROCEDURE)
        loop = next(c for c in gc.children if c.category is NodeCategory.LOOP)
        find = next(c for c in loop.children if c.category is NodeCategory.INLINED)
        assert find.name == "SequenceManager::find"
        rb_loop = next(
            c for c in find.children
            if c.category in (NodeCategory.LOOP, NodeCategory.INLINED)
            and c.struct.kind.is_loop
        )
        compare = next(
            c for c in rb_loop.children if c.category is NodeCategory.INLINED
        )
        assert compare.name == "SequenceCompare::operator()"

    def test_sequence_compare_l1_share(self, exp):
        """Applying the comparison operator: 19.8% of L1 misses."""
        l1 = exp.metric_id(L1_DCM)
        flat = exp.flat_view()
        compare = flat.find("SequenceCompare::operator()")
        share = 100.0 * compare.inclusive[l1] / exp.total(L1_DCM)
        assert share == pytest.approx(19.8, abs=0.3)

    def test_inlined_scopes_also_in_calling_context_view(self, exp):
        """Static structure is first-class in the CC view too (Sec. III-D)."""
        ccv = exp.calling_context_view()
        found = ccv.find_all("SequenceCompare::operator()")
        assert found and all(r.category is NodeCategory.INLINED for r in found)

"""Unit coverage for the in-memory trace model: quantization, event
recording and validation, sealing, window semantics, and the multi-rank
context table."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.metrics import MetricTable
from repro.errors import TraceError
from repro.hpcrun.profile_data import Frame
from repro.trace import TraceData, TraceSet
from repro.trace.model import (
    DEFAULT_RESOLUTION,
    check_window,
    quantize,
)


def _metrics(*names) -> MetricTable:
    table = MetricTable()
    for name in names:
        table.add(name, unit=name)
    return table


def _frame(proc: str, line: int = 1) -> Frame:
    return Frame(proc=proc, file="t.c", call_line=line)


# --------------------------------------------------------------------- #
# quantize
# --------------------------------------------------------------------- #
def test_quantize_round_trips_dyadic_values_exactly():
    for value in (0.0, 1.0, 3.5, 123.0625, -2.25):
        ticks = quantize(value)
        assert ticks * DEFAULT_RESOLUTION == value


def test_quantize_rejects_overflow():
    with pytest.raises(TraceError, match="overflows"):
        quantize(1e30, resolution=1e-12)


# --------------------------------------------------------------------- #
# check_window
# --------------------------------------------------------------------- #
def test_check_window_normalizes_none_to_infinities():
    assert check_window(None, None) == (-math.inf, math.inf)
    assert check_window(1.5, None) == (1.5, math.inf)


def test_check_window_rejects_nan_and_inversion():
    with pytest.raises(TraceError, match="NaN"):
        check_window(float("nan"), 1.0)
    with pytest.raises(TraceError, match="inverted"):
        check_window(2.0, 1.0)


# --------------------------------------------------------------------- #
# TraceData recording + sealing
# --------------------------------------------------------------------- #
def test_record_validates_inputs():
    td = TraceData(_metrics("m"))
    with pytest.raises(TraceError, match="at least one frame"):
        td.record([], 1, 0.0, {0: 1})
    with pytest.raises(TraceError, match="finite"):
        td.record([_frame("p")], 1, float("nan"), {0: 1})
    with pytest.raises(TraceError, match="finite"):
        td.record([_frame("p")], 1, -1.0, {0: 1})
    with pytest.raises(TraceError, match="unknown metric id"):
        td.record([_frame("p")], 1, 0.0, {3: 1})


def test_seal_sorts_by_time_and_freezes():
    td = TraceData(_metrics("m"))
    td.record([_frame("p")], 1, 2.0, {0: 20})
    td.record([_frame("p")], 1, 0.5, {0: 5})
    td.record([_frame("q")], 2, 1.0, {0: 10})
    td.seal()
    assert list(td.times) == [0.5, 1.0, 2.0]
    assert td.t_begin == 0.5 and td.t_end == 2.0
    assert td.n_events == 3
    with pytest.raises(TraceError, match="sealed"):
        td.record([_frame("p")], 1, 3.0, {0: 1})
    # sealing twice is a no-op
    assert td.seal() is td


def test_unsealed_trace_refuses_inspection():
    td = TraceData(_metrics("m"))
    with pytest.raises(TraceError, match="sealed"):
        td.n_events


def test_window_is_half_open():
    td = TraceData(_metrics("m"))
    for t in (0.0, 1.0, 2.0):
        td.record([_frame("p")], 1, t, {0: 1})
    td.seal()
    sel = td.window_slice(1.0, 2.0)
    assert list(td.times[sel]) == [1.0]  # t0 included, t1 excluded
    assert td.window_ticks(1.0, 2.0).sum() == 1
    assert td.window_ticks(5.0, 9.0).sum() == 0
    assert td.window_ticks(None, None).sum() == 3


def test_resolution_overrides_validated():
    with pytest.raises(TraceError, match="unknown metric id"):
        TraceData(_metrics("m"), resolutions={5: 1.0})
    with pytest.raises(TraceError, match="positive"):
        TraceData(_metrics("m"), resolutions={0: 0.0})
    with pytest.raises(TraceError, match="time_metric"):
        TraceData(_metrics("m"), time_metric=7)


# --------------------------------------------------------------------- #
# TraceSet
# --------------------------------------------------------------------- #
def _rank_trace(metrics, rank, events):
    td = TraceData(metrics, rank=rank)
    for proc, t, ticks in events:
        td.record([_frame("main"), _frame(proc)], 1, t, {0: ticks})
    return td


def test_traceset_builds_global_context_table(fig1_traces):
    total_local = sum(len(t.contexts) for t in fig1_traces.traces)
    assert len(fig1_traces.contexts) <= total_local
    assert fig1_traces.nranks == 2
    assert fig1_traces.n_events == sum(
        t.n_events for t in fig1_traces.traces)


def test_traceset_rejects_empty_and_mismatched():
    with pytest.raises(TraceError, match="at least one rank"):
        TraceSet([], structure=None)
    m = _metrics("m")
    other = _metrics("m", "n")
    a = _rank_trace(m, 0, [("p", 0.0, 1)])
    b = _rank_trace(other, 1, [("p", 0.0, 1)])
    with pytest.raises(TraceError, match="metric tables"):
        TraceSet([a, b], structure=None)


def test_events_window_checks_rank(fig1_traces):
    with pytest.raises(TraceError, match="rank 9 out of range"):
        fig1_traces.events_window(9)


def test_window_ticks_partition_is_exact(fig1_traces):
    whole = fig1_traces.window_ticks(None, None)
    mid = (fig1_traces.t_begin + fig1_traces.t_end) / 2
    left = fig1_traces.window_ticks(None, mid)
    right = fig1_traces.window_ticks(mid, None)
    assert np.array_equal(left + right, whole)


def test_window_experiment_matches_untimed(fig1_traces):
    """The unbounded window covers the same scopes as the untimed run."""
    from repro.hpcprof.experiment import Experiment
    from repro.sim.workloads import fig1

    windowed = fig1_traces.window_experiment(None, None)
    untimed = Experiment.from_program(fig1.build(), nranks=2, seed=7)

    def names(exp):
        return sorted(
            node.name for node in exp.cct.walk() if node.name)

    assert names(windowed) == names(untimed)

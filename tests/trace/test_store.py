"""Unit coverage for the time-partitioned chunked trace store: layout,
path resolution, chunk pruning, slab fast path, verification, and the
structured-error surface."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.errors import TraceCorrupt, TraceError
from repro.trace import create_trace_store, is_trace_path, open_trace
from repro.trace.store import TRACE_MANIFEST


def test_create_writes_manifest_chunks_and_skeleton(fig1_store):
    files = sorted(os.listdir(os.path.join(fig1_store.path)))
    assert TRACE_MANIFEST in files
    assert "skeleton.rpdb" in files
    assert any(f.endswith(".events") for f in files)
    assert any(f.endswith(".slab") for f in files)
    assert fig1_store.chunks_total >= 2


def test_create_refuses_existing_path(fig1_traces, tmp_path):
    path = str(tmp_path / "t.rpstore")
    create_trace_store(fig1_traces, path).close()
    with pytest.raises(TraceError, match="exists"):
        create_trace_store(fig1_traces, path)
    # overwrite replaces in place
    store = create_trace_store(fig1_traces, path, overwrite=True)
    store.close()


def test_create_validates_chunk_duration(fig1_traces, tmp_path):
    with pytest.raises(TraceError, match="chunk_duration"):
        create_trace_store(fig1_traces, str(tmp_path / "x"),
                           chunk_duration=0.0)


def test_open_resolves_enclosing_rpstore(fig1_traces, tmp_path):
    """A store dir containing a ``trace/`` subdir opens transparently."""
    root = tmp_path / "c.rpstore"
    create_trace_store(fig1_traces, str(root / "trace")).close()
    assert is_trace_path(str(root))
    assert is_trace_path(str(root / "trace"))
    with open_trace(str(root)) as store:
        assert store.n_events == fig1_traces.n_events


def test_open_missing_store_is_structured(tmp_path):
    assert not is_trace_path(str(tmp_path / "nope"))
    with pytest.raises(TraceError, match="no trace store"):
        open_trace(str(tmp_path / "nope"))


def test_info_summary(fig1_store, fig1_traces):
    info = fig1_store.info()
    assert info["nranks"] == 2
    assert info["n_events"] == fig1_traces.n_events
    assert info["chunks"] == fig1_store.chunks_total
    assert [m["name"] for m in info["metrics"]] == \
        fig1_traces.metrics.names()
    json.dumps(info)  # JSON-friendly by contract


def test_window_ticks_match_in_memory(fig1_store, fig1_traces):
    t0 = fig1_traces.t_begin
    t1 = fig1_traces.t_end
    for window in [(None, None), (t0, (t0 + t1) / 2), ((t0 + t1) / 2, None)]:
        assert np.array_equal(
            fig1_store.window_ticks(*window),
            fig1_traces.window_ticks(*window),
        )


def test_narrow_window_prunes_chunks(fig1_store, fig1_traces):
    """A window inside one partition must not touch every chunk."""
    import math

    middle = fig1_store._chunks[len(fig1_store._chunks) // 2]
    fig1_store.reset_counters()
    # the smallest window containing the chunk's own events
    fig1_store.window_ticks(middle.t_lo,
                            math.nextafter(middle.t_hi, math.inf))
    assert 0 < fig1_store.chunks_touched < fig1_store.chunks_total


def test_covered_chunks_use_slab_fast_path(fig1_store, fig1_traces):
    """Whole-trace window: every chunk is fully covered, so the answer
    comes from pre-aggregated slabs — and equals the event-level sum."""
    fig1_store.reset_counters()
    whole = fig1_store.window_ticks(None, None)
    assert fig1_store.chunks_touched == fig1_store.chunks_total
    # event-level reconstruction agrees
    by_events = np.zeros_like(whole)
    for rank in range(fig1_store.nranks):
        _times, ctx, ticks = fig1_store.events_window(rank)
        np.add.at(by_events[rank], ctx, ticks)
    assert np.array_equal(whole, by_events)


def test_events_window_checks_rank(fig1_store):
    with pytest.raises(TraceError, match="out of range"):
        fig1_store.events_window(99)


def test_skeleton_round_trips_structure(fig1_store, fig1_traces):
    skel = fig1_store.skeleton
    windowed = fig1_traces.window_experiment(None, None)
    assert sorted(n.name for n in skel.cct.walk() if n.name) == \
        sorted(n.name for n in windowed.cct.walk() if n.name)


def test_malformed_manifest_is_trace_corrupt(fig1_traces, tmp_path):
    path = str(tmp_path / "t.rpstore")
    create_trace_store(fig1_traces, path).close()
    manifest = os.path.join(path, TRACE_MANIFEST)
    with open(manifest, "w", encoding="utf-8") as fh:
        fh.write("{not json")
    with pytest.raises(TraceCorrupt):
        open_trace(path)


def test_missing_chunk_file_fails_eagerly(fig1_traces, tmp_path):
    """Size checks run at open: a deleted chunk can never serve a
    phantom (empty) window later."""
    path = str(tmp_path / "t.rpstore")
    create_trace_store(fig1_traces, path).close()
    victim = next(f for f in os.listdir(path) if f.endswith(".events"))
    os.unlink(os.path.join(path, victim))
    with pytest.raises(TraceCorrupt):
        open_trace(path)


def test_corrupt_chunk_payload_fails_on_read(fig1_traces, tmp_path):
    """Same-size bit damage passes the eager size check but the lazy
    CRC catches it the moment the chunk is read."""
    path = str(tmp_path / "t.rpstore")
    create_trace_store(fig1_traces, path).close()
    victim = next(f for f in sorted(os.listdir(path))
                  if f.endswith(".events"))
    full = os.path.join(path, victim)
    blob = bytearray(open(full, "rb").read())
    blob[len(blob) // 2] ^= 0x40
    with open(full, "wb") as fh:
        fh.write(bytes(blob))
    with open_trace(path) as store:
        with pytest.raises(TraceCorrupt, match="CRC32"):
            # partial windows force the event path through every chunk
            for chunk in store._chunks:
                store._chunk_events(chunk)


def test_window_experiment_equals_in_memory_query(fig1_store,
                                                  fig1_traces):
    from repro.query import query, run_query

    metric = fig1_traces.metrics.by_id(0).name
    span = fig1_traces.t_end - fig1_traces.t_begin
    t0 = fig1_traces.t_begin + 0.25 * span
    t1 = fig1_traces.t_begin + 0.75 * span
    q = query("**/*").window(t0, t1).sort(metric)
    assert run_query(q, fig1_store).to_rows() == \
        run_query(q, fig1_traces).to_rows()

"""Shared fixtures for the trace test battery."""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def fig1_traces():
    """A small deterministic two-rank trace of the paper's Figure 1."""
    from repro.sim.spmd import trace_spmd
    from repro.sim.workloads import fig1

    return trace_spmd(fig1.build(), nranks=2, seed=7, trace_slices=3,
                      name="fig1-trace")


@pytest.fixture(scope="session")
def straggler_traces():
    """Four ranks with rank-proportional work — planted late-rank
    idleness for series/flame assertions."""
    from repro.sim.program import Call, Module, Procedure, Program, Work
    from repro.sim.spmd import trace_spmd

    ranked = Procedure(name="ranked_work", line=1, end_line=4, body=[
        Work(line=2, costs=lambda ctx: {"cycles": 2.0 * (1 + ctx.rank)}),
    ])
    main = Procedure(name="main", line=6, end_line=10, body=[
        Work(line=7, costs={"cycles": 1.0}),
        Call(line=8, callee="ranked_work"),
    ])
    program = Program(
        name="straggler",
        modules=[Module(path="straggler.c", procedures=[main, ranked])],
        entry="main",
        metrics=[("cycles", "cycles")],
    )
    return trace_spmd(program, nranks=4, seed=7, trace_slices=6,
                      name="straggler-trace")


@pytest.fixture()
def fig1_store(fig1_traces, tmp_path):
    """The fig1 trace written as a chunked store (narrow chunks so
    window queries exercise pruning)."""
    from repro.trace import create_trace_store

    span = fig1_traces.t_end - fig1_traces.t_begin
    store = create_trace_store(fig1_traces, str(tmp_path / "t.rpstore"),
                               chunk_duration=max(span / 5, 1e-6))
    yield store
    store.close()

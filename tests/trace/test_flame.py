"""Flame-chart slabs and time-binned idleness series.

The straggler fixture plants rank-proportional work, so the idleness
series has a known shape (rising toward the end of the trace) and the
per-rank flame slabs have known relative spans.
"""

from __future__ import annotations

import pytest

from repro.errors import MetricError, TraceError
from repro.trace import flame_slab, idleness_series
from repro.trace.flame import flame_snapshot


def test_flame_slab_shape(fig1_traces):
    slab = flame_slab(fig1_traces, rank=0)
    assert slab["rank"] == 0
    assert slab["event_count"] > 0
    assert slab["span_count"] == sum(
        len(spans) for spans in slab["depths"])
    assert not slab["truncated"]
    for depth, spans in enumerate(slab["depths"]):
        for span in spans:
            assert span["end"] >= span["begin"] >= 0.0
            assert set(span) == {"name", "file", "begin", "end", "value"}
    # depth 0 is the entry procedure: exactly one merged span for a
    # single sequential rank
    assert len(slab["depths"][0]) >= 1


def test_flame_slab_windows_nest(fig1_traces):
    whole = flame_slab(fig1_traces, rank=0)
    t0, t1 = fig1_traces.t_begin, fig1_traces.t_end
    mid = (t0 + t1) / 2
    half = flame_slab(fig1_traces, rank=0, t0=t0, t1=mid)
    assert half["event_count"] <= whole["event_count"]
    for spans in half["depths"]:
        for span in spans:
            assert span["begin"] < mid


def test_flame_slab_max_spans_truncates(fig1_traces):
    slab = flame_slab(fig1_traces, rank=0, max_spans=1)
    assert slab["truncated"]
    assert slab["span_count"] <= 1 + sum(
        1 for _ in slab["depths"])  # at most one span admitted per depth


def test_flame_slab_validates_inputs(fig1_traces):
    with pytest.raises(TraceError, match="out of range"):
        flame_slab(fig1_traces, rank=9)
    with pytest.raises(MetricError):
        flame_slab(fig1_traces, metric="nope")


def test_flame_snapshot_is_tabular(fig1_traces):
    slab = flame_slab(fig1_traces, rank=0)
    snap = flame_snapshot(slab)
    assert snap.view == "trace-flame"
    rows = snap.to_rows()
    assert len(rows) == slab["span_count"]
    assert snap.labels[:2] == ("begin", "end")


def test_idleness_series_shape(straggler_traces):
    series = idleness_series(straggler_traces, bins=8)
    assert series["nranks"] == 4
    assert len(series["edges"]) == 9
    for key in ("mean_busy", "max_busy", "idleness", "imbalance"):
        assert len(series[key]) == 8
    for mean, mx, idle in zip(series["mean_busy"], series["max_busy"],
                              series["idleness"]):
        assert mx >= mean >= 0.0
        assert 0.0 <= idle <= 1.0


def test_idleness_rises_for_stragglers(straggler_traces):
    """Rank-proportional work: early bins are balanced, late bins are
    idle on the fast ranks — the planted signal the golden corpus and
    the paper's trace view are about."""
    series = idleness_series(straggler_traces, bins=8)
    idle = series["idleness"]
    first_half = sum(idle[:4]) / 4
    second_half = sum(idle[4:]) / 4
    assert second_half > first_half


def test_idleness_series_validates_bins(fig1_traces):
    with pytest.raises(TraceError):
        idleness_series(fig1_traces, bins=0)

"""Chaos battery for the chunked trace store.

Two attack surfaces, the same verdict required from both:

* **storage corruption** — for every byte offset of the manifest and of
  a chunk file, truncating there or flipping a bit there must yield
  either a store that still answers the pinned window query correctly,
  or a structured :class:`TraceError` / :class:`TraceCorrupt` — never
  an unhandled exception, and **never a phantom window** (a result that
  silently differs from the uncorrupted answer).  A strided subset runs
  unmarked in tier-1; the exhaustive sweep is ``-m chaos``.
* **writer crashes** — :func:`crashing_at` aborts ``create_trace_store``
  at every declared crash point; because the manifest rename commits
  last, the path must afterwards be either *not a trace store at all*
  or a fully working one.  One subprocess ``kill -9`` representative
  runs unmarked; the full SIGKILL sweep is ``-m chaos``.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys

import numpy as np
import pytest

from repro.errors import ReproError, TraceError
from repro.testing.faults import (
    CrashPointHit,
    bit_flip,
    crash_points,
    crashing_at,
    truncate,
)
from repro.trace import create_trace_store, is_trace_path, open_trace
from repro.trace.store import CRASH_POINTS, TRACE_MANIFEST


@pytest.fixture(scope="module")
def seeded(tmp_path_factory):
    """One store on disk + the uncorrupted answer to the probe window."""
    from repro.sim.spmd import trace_spmd
    from repro.sim.workloads import fig1

    traces = trace_spmd(fig1.build(), nranks=2, seed=7, trace_slices=3,
                        name="chaos-trace")
    root = str(tmp_path_factory.mktemp("chaos") / "t.rpstore")
    span = traces.t_end - traces.t_begin
    store = create_trace_store(traces, root,
                               chunk_duration=max(span / 4, 1e-6))
    t0 = traces.t_begin + 0.2 * span
    t1 = traces.t_begin + 0.8 * span
    truth = store.window_ticks(t0, t1)
    store.close()
    return root, traces, (t0, t1), truth


def _check_one(root: str, window, truth) -> None:
    """Open + query the mutated store: right answer or structured error."""
    try:
        with open_trace(root) as store:
            got = store.window_ticks(*window)
            assert np.array_equal(got, truth), (
                "corruption produced a silently wrong (phantom) window"
            )
    except TraceError:
        return  # structured refusal (TraceCorrupt is a TraceError)
    except ReproError as exc:  # pragma: no cover - would be a real bug
        raise AssertionError(
            f"corruption leaked a non-trace error: {exc!r}"
        )


def _mutate_file(root, tmp_path, fname, blob, tag):
    dst = str(tmp_path / tag)
    os.makedirs(dst)
    for other in os.listdir(root):
        if other == fname:
            continue
        with open(os.path.join(root, other), "rb") as fh:
            data = fh.read()
        with open(os.path.join(dst, other), "wb") as fh:
            fh.write(data)
    with open(os.path.join(dst, fname), "wb") as fh:
        fh.write(blob)
    return dst


def _target_files(root):
    chunk = sorted(f for f in os.listdir(root) if f.endswith(".events"))[0]
    slab = sorted(f for f in os.listdir(root) if f.endswith(".slab"))[0]
    return [TRACE_MANIFEST, chunk, slab]


def _sweep(seeded, tmp_path, stride) -> None:
    root, _traces, window, truth = seeded
    for fname in _target_files(root):
        with open(os.path.join(root, fname), "rb") as fh:
            original = fh.read()
        for offset in range(0, len(original) + 1, stride):
            dst = _mutate_file(root, tmp_path, fname,
                               truncate(original, offset),
                               f"t-{fname}-{offset}")
            _check_one(dst, window, truth)
        for offset in range(0, len(original), stride):
            dst = _mutate_file(root, tmp_path, fname,
                               bit_flip(original, offset, bit=offset % 8),
                               f"f-{fname}-{offset}")
            _check_one(dst, window, truth)


def test_corruption_subset(seeded, tmp_path):
    """Tier-1 insurance: strided offsets over manifest + chunk + slab."""
    _sweep(seeded, tmp_path, stride=41)


@pytest.mark.chaos
def test_corruption_every_offset(seeded, tmp_path):
    _sweep(seeded, tmp_path, stride=1)


def test_missing_file_is_structured(seeded, tmp_path):
    """Deleting any store file is caught at open (size check) or read
    (CRC) — covered here for the manifest-missing case explicitly."""
    root, _traces, window, truth = seeded
    for fname in _target_files(seeded[0]):
        dst = _mutate_file(root, tmp_path, fname, b"", f"gone-{fname}")
        os.unlink(os.path.join(dst, fname))
        if fname == TRACE_MANIFEST:
            assert not is_trace_path(dst)
        _check_one(dst, window, truth)


# --------------------------------------------------------------------- #
# writer crash battery: manifest-last means no half-written store
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("point", CRASH_POINTS)
def test_writer_crash_leaves_no_phantom_store(point, seeded, tmp_path):
    _root, traces, window, truth = seeded
    path = str(tmp_path / "crashed.rpstore")
    with pytest.raises(CrashPointHit):
        with crashing_at(point):
            create_trace_store(traces, path, chunk_duration=2.0)

    if point == "trace.write.committed":
        # the manifest rename already happened: the store is complete
        assert is_trace_path(path)
        with open_trace(path) as store:
            assert np.array_equal(store.window_ticks(*window), truth)
    else:
        # pre-commit crash: the path must not look like a store at all
        assert not is_trace_path(path)
        with pytest.raises(TraceError):
            open_trace(path)
        # and a retry over the debris succeeds cleanly
        store = create_trace_store(traces, path, chunk_duration=2.0,
                                   overwrite=True)
        try:
            assert np.array_equal(store.window_ticks(*window), truth)
        finally:
            store.close()


def test_crash_points_registered():
    assert set(crash_points("trace.")) == set(CRASH_POINTS)


# --------------------------------------------------------------------- #
# subprocess battery (kill -9 for real)
# --------------------------------------------------------------------- #
_CHILD = """
import sys
from repro.sim.spmd import trace_spmd
from repro.sim.workloads import fig1
from repro.trace import create_trace_store

traces = trace_spmd(fig1.build(), nranks=2, seed=7, trace_slices=3)
create_trace_store(traces, sys.argv[1], chunk_duration=2.0).close()
print("COMMITTED")
"""


def _run_child(path, point):
    env = dict(os.environ, PYTHONPATH="src")
    if point is not None:
        env["REPRO_CRASH_POINT"] = point
    return subprocess.run(
        [sys.executable, "-c", _CHILD, path],
        env=env, cwd=os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))),
        capture_output=True, text=True, timeout=120,
    )


def _assert_killed(proc):
    assert proc.returncode == -signal.SIGKILL, (
        f"child should have SIGKILLed itself: rc={proc.returncode} "
        f"stderr={proc.stderr[-500:]}"
    )


def test_subprocess_kill_before_manifest_leaves_no_store(tmp_path):
    path = str(tmp_path / "t.rpstore")
    proc = _run_child(path, "trace.write.manifest-staged")
    _assert_killed(proc)
    assert not is_trace_path(path)
    with pytest.raises(TraceError):
        open_trace(path)


@pytest.mark.chaos
@pytest.mark.parametrize("point", CRASH_POINTS)
def test_subprocess_kill_sweep(point, tmp_path):
    path = str(tmp_path / "t.rpstore")
    proc = _run_child(path, point)
    _assert_killed(proc)
    if point == "trace.write.committed":
        assert is_trace_path(path)
        with open_trace(path) as store:
            assert store.n_events > 0
    else:
        assert not is_trace_path(path)

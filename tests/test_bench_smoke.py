"""Tier-1 smoke coverage for the benchmark harness.

``benchmarks/`` is normally run on demand (``--benchmark-only``), so an
import error or API drift there would only surface when someone next
measures.  This test keeps an eight-benchmark subset — marked
``bench_smoke`` in ``benchmarks/bench_storage.py`` (storage kernels and the
out-of-core store open latency),
``benchmarks/bench_server.py`` (the analysis-server cached-render
throughput sanity check plus the disabled-span hook cost), and
``benchmarks/bench_ensemble.py`` (N-way alignment and diff+detect
latency) — compiling and passing under ``--benchmark-disable`` on every
tier-1 run.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]


def test_bench_smoke_subset_passes():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            "benchmarks",
            "-m",
            "bench_smoke",
            "--benchmark-disable",
        ],
        cwd=REPO,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    output = proc.stdout + proc.stderr
    assert proc.returncode == 0, output
    assert "8 passed" in output, output

"""Tier-1 golden-corpus drift test.

The checked-in ``.rpdb`` fixtures are decoded through every reader path
— eager strict, mmap streaming, and salvage — and the three rendered
views are compared **byte-for-byte** against the checked-in golden
text.  Any drift anywhere in decode → attribution (Eq. 1/2) → view
construction → table formatting fails here, on both the legacy v1 and
framed v2 formats.

Regenerate intentionally with::

    PYTHONPATH=src python tools/gen_golden.py --write
"""

from __future__ import annotations

import os

import pytest

from repro.hpcprof import binio, database
from tests.golden import corpus

NAMES = sorted(corpus.FIXTURES)
_missing = [n for n in NAMES
            if not os.path.exists(os.path.join(corpus.DATA_DIR,
                                               f"{n}.v2.rpdb"))]
pytestmark = pytest.mark.skipif(
    bool(_missing),
    reason=f"golden corpus not generated (missing {_missing}); "
           f"run tools/gen_golden.py --write",
)


def _data(name: str) -> str:
    return os.path.join(corpus.DATA_DIR, name)


def _golden_views(name: str) -> dict[str, str]:
    out = {}
    for slug in corpus.VIEW_SLUGS:
        with open(_data(f"{name}.{slug}.txt"), encoding="utf-8") as fh:
            out[slug] = fh.read()
    return out


@pytest.mark.parametrize("name", NAMES)
@pytest.mark.parametrize("version", ["v1", "v2"])
def test_eager_load_renders_golden(name: str, version: str) -> None:
    exp = database.load(_data(f"{name}.{version}.rpdb"))
    assert corpus.render_views(exp) == _golden_views(name)


@pytest.mark.parametrize("name", NAMES)
def test_streaming_load_renders_golden(name: str) -> None:
    """The mmap streaming reader decodes to the identical presentation."""
    exp = database.load(_data(f"{name}.v2.rpdb"), out_of_core=True)
    assert corpus.render_views(exp) == _golden_views(name)


@pytest.mark.parametrize("name", NAMES)
@pytest.mark.parametrize("version", ["v1", "v2"])
def test_salvage_of_intact_file_renders_golden(name: str,
                                               version: str) -> None:
    """Salvage mode on an *intact* database loses nothing."""
    exp = database.load(_data(f"{name}.{version}.rpdb"), strict=False)
    report = getattr(exp, "load_report", None)
    assert report is None or report.clean
    assert corpus.render_views(exp) == _golden_views(name)


@pytest.mark.parametrize("name", NAMES)
def test_reserialization_is_byte_stable(name: str) -> None:
    """decode → encode reproduces the checked-in bytes exactly, both
    formats — pins the encoders, string-table interning order and all."""
    for version in (1, 2):
        path = _data(f"{name}.v{version}.rpdb")
        with open(path, "rb") as fh:
            blob = fh.read()
        exp = binio.loads_binary(blob)
        assert binio.dumps_binary(exp, version=version) == blob


@pytest.mark.parametrize("name", NAMES)
def test_fixture_builders_still_match_corpus(name: str) -> None:
    """The deterministic builders still produce the checked-in bytes."""
    exp = corpus.build_fixture(name)
    for version in (1, 2):
        with open(_data(f"{name}.v{version}.rpdb"), "rb") as fh:
            assert binio.dumps_binary(exp, version=version) == fh.read()


def test_columnar_table_frame_is_byte_stable() -> None:
    """The framed columnar table bytes for the pinned fixture are exact.

    Re-encoding the checked-in database must reproduce the checked-in
    frame (pins magic, framing, header JSON and slab layout), and the
    checked-in frame must still decode to the same table the JSON
    encoding serves.
    """
    from repro.core.views import ViewKind
    from repro.server.sessions import table_snapshot
    from repro.server.wire import decode_columnar
    from repro.viewer.session import ViewerSession

    name = corpus.COLUMNAR_FIXTURE
    exp = database.load(_data(f"{name}.v2.rpdb"))
    with open(_data(f"{name}.table.rpcol"), "rb") as fh:
        golden = fh.read()
    assert corpus.columnar_table_bytes(exp) == golden

    decoded = decode_columnar(golden)
    snapshot = table_snapshot(ViewerSession(exp), ViewKind.CALLING_CONTEXT,
                              depth=4, max_rows=120)
    reference = {k: v for k, v in
                 snapshot.to_json_payload("s1").items() if k != "session"}
    assert decoded == reference


# --------------------------------------------------------------------- #
# golden query corpus
# --------------------------------------------------------------------- #
def test_query_corpus_is_byte_stable() -> None:
    """Every fixture x query pair still produces the checked-in JSON —
    pins pattern matching, predicate evaluation, subtree operators,
    value gathering and result ordering in one sweep."""
    for name, content in sorted(corpus.query_outputs().items()):
        with open(_data(name), "rb") as fh:
            assert fh.read() == content, f"golden drift in {name}"


@pytest.mark.parametrize("name", NAMES)
def test_queries_from_pinned_files_match_golden(name: str) -> None:
    """Queries over the checked-in ``.rpdb`` bytes reproduce the golden
    results — the loader path and the builder path agree."""
    import json

    from repro.query import run_query

    exp = database.load(_data(f"{name}.v2.rpdb"))
    metric = exp.metrics.by_id(0).name
    for slug, build in sorted(corpus.GOLDEN_QUERIES.items()):
        result = run_query(build(metric), exp)
        payload = result.to_columns()
        payload["truncated"] = result.truncated
        with open(_data(f"{name}.query.{slug}.json"),
                  encoding="utf-8") as fh:
            assert json.load(fh) == json.loads(json.dumps(payload)), \
                f"{name}.query.{slug}"


# --------------------------------------------------------------------- #
# ensemble diff corpus
# --------------------------------------------------------------------- #
def _ensemble_member_paths() -> list[str]:
    return [_data(f"ensemble-m{i}.v2.rpdb") for i in range(4)]


def test_ensemble_outputs_are_byte_stable() -> None:
    """The ensemble builders still produce every checked-in byte.

    One comparison covers the member binaries, the three rendered diff
    views, and the findings JSON — any drift in alignment, diff
    attribution, share computation, or detection ordering fails here.
    """
    for name, content in sorted(corpus.ensemble_outputs().items()):
        with open(_data(name), "rb") as fh:
            assert fh.read() == content, f"golden drift in {name}"


def test_ensemble_diff_from_pinned_files_matches_golden() -> None:
    """Aligning the checked-in ``.rpdb`` members reproduces the golden
    diff renders — the file-path loader and the in-memory path agree."""
    from repro.core.ensemble import align_experiments

    ensemble = align_experiments(_ensemble_member_paths(),
                                 name="golden-ensemble")
    diff = ensemble.diff("mean", corpus.ENSEMBLE_TARGET)
    rendered = corpus.render_views(diff)
    for slug in corpus.VIEW_SLUGS:
        with open(_data(f"ensemble-diff.{slug}.txt"),
                  encoding="utf-8") as fh:
            assert rendered[slug] == fh.read()


def test_ensemble_planted_regressions_all_flagged() -> None:
    """Every planted drift scope is found — the no-false-negative pin."""
    import json

    from repro.core.ensemble import align_experiments, detect_regressions

    ensemble = align_experiments(_ensemble_member_paths(),
                                 name="golden-ensemble")
    findings = detect_regressions(ensemble, target=corpus.ENSEMBLE_TARGET)
    regressed = {f.scope for f in findings if f.kind == "regression"}
    assert set(corpus.ENSEMBLE_PLANTED) <= regressed

    with open(_data("ensemble.findings.json"), encoding="utf-8") as fh:
        golden = json.load(fh)
    assert [f.to_payload() for f in findings] == golden["findings"]


# --------------------------------------------------------------------- #
# golden trace corpus
# --------------------------------------------------------------------- #
TRACE_NAMES = sorted(corpus.TRACE_FIXTURES)


def test_trace_corpus_is_byte_stable() -> None:
    """Every trace fixture still produces every checked-in byte — store
    files (manifest, skeleton, chunk events and slabs) plus the pinned
    window-query / flame-slab / series JSON renders in one sweep."""
    for name, content in sorted(corpus.trace_outputs().items()):
        with open(_data(name), "rb") as fh:
            assert fh.read() == content, f"golden drift in {name}"


@pytest.mark.parametrize("name", TRACE_NAMES)
def test_trace_store_reserialization_is_byte_stable(name: str,
                                                    tmp_path) -> None:
    """Writing the same trace twice produces identical store bytes —
    chunk partitioning, manifest layout, and slab encoding carry no
    run-to-run state (no timestamps, no randomized ordering)."""
    traces = corpus.build_trace_fixture(name)
    first = corpus.trace_store_files(traces, str(tmp_path / "a"))
    second = corpus.trace_store_files(traces, str(tmp_path / "b"))
    assert first == second


@pytest.mark.parametrize("name", TRACE_NAMES)
def test_windowed_queries_from_pinned_store_match_golden(name: str,
                                                         tmp_path) -> None:
    """The checked-in store bytes answer the pinned window query with
    the pinned JSON — the chunked loader path and the in-memory builder
    path agree on every cell."""
    import json
    import shutil

    from repro.query import query, run_query
    from repro.trace import open_trace

    store_dir = tmp_path / "store" / "trace"
    store_dir.mkdir(parents=True)
    prefix = f"{name}.trace."
    for fname in os.listdir(corpus.DATA_DIR):
        if fname.startswith(prefix) and not fname.endswith(
                (".window.json", ".flame.json", ".series.json")):
            shutil.copy(_data(fname), store_dir / fname[len(prefix):])

    with open(_data(f"{name}.trace.window.json"), encoding="utf-8") as fh:
        golden = json.load(fh)
    t0, t1 = golden["window"]
    with open_trace(str(tmp_path / "store")) as store:
        metric = store.metrics.by_id(0).name
        result = run_query(query("**/*").window(t0, t1).sort(metric),
                           store)
        payload = result.to_columns()
        payload["truncated"] = result.truncated
        payload["window"] = [t0, t1]
        assert json.loads(json.dumps(payload)) == golden


@pytest.mark.parametrize("name", TRACE_NAMES)
def test_flame_slab_from_pinned_store_matches_golden(name: str,
                                                     tmp_path) -> None:
    """The checked-in chunk bytes render the pinned flame slab."""
    import json
    import shutil

    from repro.trace import flame_slab, open_trace

    store_dir = tmp_path / "trace"
    store_dir.mkdir(parents=True)
    prefix = f"{name}.trace."
    for fname in os.listdir(corpus.DATA_DIR):
        if fname.startswith(prefix) and not fname.endswith(
                (".window.json", ".flame.json", ".series.json")):
            shutil.copy(_data(fname), store_dir / fname[len(prefix):])

    with open(_data(f"{name}.trace.flame.json"), encoding="utf-8") as fh:
        golden = json.load(fh)
    with open_trace(str(store_dir)) as store:
        slab = flame_slab(store, rank=0)
    assert json.loads(json.dumps(slab)) == golden


def test_ensemble_alignment_matrices_match_in_memory() -> None:
    """File-based and in-memory alignment produce bit-identical matrices."""
    import numpy as np

    from repro.core.ensemble import align_experiments

    from_files = align_experiments(_ensemble_member_paths())
    in_memory = align_experiments(corpus.ensemble_members())
    assert from_files.alignment.matrices.keys() \
        == in_memory.alignment.matrices.keys()
    for key, matrix in from_files.alignment.matrices.items():
        assert np.array_equal(matrix, in_memory.alignment.matrices[key]), key

"""Golden regression corpus: fixture builders + the canonical rendering.

One place defines (a) the deterministic experiments that make up the
corpus and (b) exactly how they are rendered to text, so the generator
(``tools/gen_golden.py``) and the tier-1 drift test
(``tests/golden/test_golden_corpus.py``) can never disagree about what
"the golden output" means.

Every fixture is checked in twice — as a legacy v1 ``.rpdb`` and a
framed v2 ``.rpdb`` — plus one golden text file per view.  The test
loads each binary through every reader path (eager, mmap-streaming,
salvage) and asserts the rendered views match the golden text
byte-for-byte, which pins the whole decode → attribute → view →
format pipeline against drift.
"""

from __future__ import annotations

import os

from repro.core.metrics import MetricFlavor, MetricSpec
from repro.hpcprof.experiment import Experiment
from repro.hpcprof.merge import merge_experiments
from repro.viewer.table import TableOptions, render_view

__all__ = ["COLUMNAR_FIXTURE", "DATA_DIR", "ENSEMBLE_DROPPED",
           "ENSEMBLE_PLANTED", "ENSEMBLE_TARGET", "FIXTURES",
           "GOLDEN_QUERIES", "TRACE_CHUNK_DURATION", "TRACE_FIXTURES",
           "VIEW_SLUGS", "build_fixture", "build_trace_fixture",
           "columnar_table_bytes", "ensemble_members", "ensemble_outputs",
           "query_outputs", "render_views", "trace_outputs",
           "trace_store_files", "trace_window"]

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")

#: file-name slug for each of the three presentation views, in order
VIEW_SLUGS = ("cct", "callers", "flat")

#: fixture name -> builder (zero-argument, fully deterministic)
FIXTURES: dict[str, "callable"] = {}


def _fixture(fn):
    FIXTURES[fn.__name__.replace("_", "-")] = fn
    return fn


@_fixture
def fig1_serial() -> Experiment:
    """The paper's Figure 1 program, one rank."""
    from repro.sim.workloads import fig1

    return Experiment.from_program(fig1.build(), nranks=1, seed=7)


@_fixture
def fig1_ranks4() -> Experiment:
    """Figure 1 across four ranks (union CCT, no summaries)."""
    from repro.sim.workloads import fig1

    return Experiment.from_program(fig1.build(), nranks=4, seed=7)


@_fixture
def scale_merged() -> Experiment:
    """Six imbalanced ranks of the scale program merged with summaries.

    Exercises the summary-statistic metrics (mean/min/max/stddev) in the
    golden render — the part of the format the out-of-core merge must
    reproduce bit-for-bit.
    """
    from repro.hpcstruct.synthstruct import build_structure
    from repro.sim.executor import execute
    from repro.sim.scale import scale_program

    program = scale_program(fanout=3, depth=2, imbalance="linear_skew")
    structure = build_structure(program)
    ranks = []
    for rank in range(6):
        profile = execute(program, rank=rank, nranks=6, seed=99)
        ranks.append(Experiment.from_profile(profile, structure,
                                             name=f"scale-r{rank}"))
    return merge_experiments(ranks, name="scale-merged", summarize="all")


@_fixture
def recursive_ladder() -> Experiment:
    """Self-recursion under several contexts (exposed-instance rule)."""
    from repro.sim.workloads.synthetic import recursive_ladder

    return Experiment.from_program(recursive_ladder(), nranks=1, seed=11)


#: the one fixture whose framed columnar table bytes are pinned —
#: ``<name>.table.rpcol`` in the data directory guards the wire format
#: (magic, framing, header JSON, column slab layout) against drift
COLUMNAR_FIXTURE = "fig1-serial"


def build_fixture(name: str) -> Experiment:
    return FIXTURES[name]()


def columnar_table_bytes(experiment: Experiment) -> bytes:
    """The canonical columnar table frame for a fixture.

    Calling-context view, four levels deep, the golden renders' row
    budget — the same shape a ``GET /table`` with columnar ``Accept``
    serves, so the pin covers the exact bytes a client decodes.
    """
    from repro.core.views import ViewKind
    from repro.server.sessions import table_snapshot
    from repro.server.wire import encode_columnar
    from repro.viewer.session import ViewerSession

    session = ViewerSession(experiment)
    snapshot = table_snapshot(session, ViewKind.CALLING_CONTEXT,
                              depth=4, max_rows=120)
    return encode_columnar(snapshot)


# --------------------------------------------------------------------- #
# the golden query corpus: every fixture through the query language
# --------------------------------------------------------------------- #

#: query slug -> builder taking the fixture's first metric name.  Covers
#: the language's operator surface: match, any-depth, category objects,
#: metric predicates, prune, squash, groupby, sort + limit.
GOLDEN_QUERIES: dict[str, "callable"] = {
    "all": lambda m: _query("**/*"),
    "loops": lambda m: _query('** / {"category": "loop"}'),
    "hot": lambda m: _query("**/*").filter(f"{m}.exclusive >= 5%")
                                   .sort(m, "exclusive"),
    "squashed": lambda m: _query("** / p*").squash(),
    "pruned": lambda m: _query("**/*").prune("*loop*").limit(10),
    "by-category": lambda m: _query("**/*").groupby("category").sort(m),
}


def _query(pattern):
    from repro.query import query as make_query

    return make_query(pattern)


def query_outputs() -> dict[str, bytes]:
    """filename -> bytes for the golden query corpus.

    Every fixture runs through every :data:`GOLDEN_QUERIES` shape; the
    columnar result is pinned as sorted JSON
    (``<fixture>.query.<slug>.json``).  Any drift in pattern matching,
    predicate evaluation, subtree operators, value gathering, or result
    ordering changes checked-in bytes.
    """
    import json

    from repro.query import run_query

    out: dict[str, bytes] = {}
    for name in sorted(FIXTURES):
        experiment = build_fixture(name)
        metric = experiment.metrics.by_id(0).name
        for slug, build in sorted(GOLDEN_QUERIES.items()):
            result = run_query(build(metric), experiment)
            payload = result.to_columns()
            payload["truncated"] = result.truncated
            out[f"{name}.query.{slug}.json"] = (
                json.dumps(payload, indent=2, sort_keys=True) + "\n"
            ).encode("utf-8")
    return out


# --------------------------------------------------------------------- #
# the ensemble diff corpus: four seeded runs with planted faults
# --------------------------------------------------------------------- #

#: the subtree member 1 is missing (union tolerance of absent scopes)
ENSEMBLE_DROPPED = "p2_0"

#: frames whose costs member 3 doubles — the planted regressions every
#: detection run over this corpus must flag (the no-false-negative pin)
ENSEMBLE_PLANTED = ("p1_1",)

#: the member the golden diff and findings target
ENSEMBLE_TARGET = 3


def _in_subtree(node, frame_name: str) -> bool:
    return any(f.name == frame_name for f in node.call_path())


def ensemble_members() -> list[Experiment]:
    """Four deterministic runs of the scale program, with seeded faults.

    Members 0 and 2 are pristine; member 1 is missing the
    :data:`ENSEMBLE_DROPPED` subtree entirely (alignment must tolerate
    the hole); member 3 doubles every cost under each
    :data:`ENSEMBLE_PLANTED` frame — the planted inclusive-share
    regression the detector must find.
    """
    from repro.core.attribution import attribute
    from repro.hpcstruct.synthstruct import build_structure
    from repro.sim.executor import execute
    from repro.sim.scale import scale_program

    program = scale_program(fanout=2, depth=2)
    structure = build_structure(program)
    members = []
    for rank in range(4):
        profile = execute(program, rank=rank, nranks=4, seed=31)
        members.append(Experiment.from_profile(profile, structure,
                                               name=f"ens-{rank}"))

    dropped = members[1]
    dropped.cct.prune(lambda n: not _in_subtree(n, ENSEMBLE_DROPPED))
    attribute(dropped.cct)
    dropped.cct.invalidate_caches()

    drifted = members[ENSEMBLE_TARGET]
    for node in drifted.cct.walk():
        if any(_in_subtree(node, name) for name in ENSEMBLE_PLANTED):
            for mid, value in list(node.raw.items()):
                node.raw[mid] = value * 2.0
    attribute(drifted.cct)
    drifted.cct.invalidate_caches()
    return members


def ensemble_outputs() -> dict[str, bytes]:
    """filename -> bytes for the ensemble diff corpus.

    Pins each member's framed v2 binary, the canonical rendering of the
    three diff views (target member vs the corpus mean), and the full
    regression-findings JSON — so any drift in alignment, diff
    attribution, share computation, or detection thresholds changes
    checked-in bytes.
    """
    import json

    from repro.core.ensemble import align_experiments, detect_regressions
    from repro.hpcprof import binio

    members = ensemble_members()
    out: dict[str, bytes] = {}
    for i, member in enumerate(members):
        out[f"ensemble-m{i}.v2.rpdb"] = binio.dumps_binary(member, version=2)
    ensemble = align_experiments(members, name="golden-ensemble")
    diff = ensemble.diff("mean", ENSEMBLE_TARGET)
    for slug, text in render_views(diff).items():
        out[f"ensemble-diff.{slug}.txt"] = text.encode("utf-8")
    findings = detect_regressions(ensemble, target=ENSEMBLE_TARGET)
    payload = {
        "target": ensemble.names[ENSEMBLE_TARGET],
        "planted": list(ENSEMBLE_PLANTED),
        "findings": [f.to_payload() for f in findings],
    }
    out["ensemble.findings.json"] = (
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    ).encode("utf-8")
    return out


# --------------------------------------------------------------------- #
# the golden trace corpus: seeded traces with planted time structure
# --------------------------------------------------------------------- #

#: time-partition width used for every pinned trace store
TRACE_CHUNK_DURATION = 2.0

#: trace fixture name -> builder (zero-argument, fully deterministic)
TRACE_FIXTURES: dict[str, "callable"] = {}


def _trace_fixture(fn):
    TRACE_FIXTURES[fn.__name__.replace("_", "-")] = fn
    return fn


@_trace_fixture
def trace_fig1():
    """The paper's Figure 1 program traced on two ranks — the baseline
    trace: symmetric ranks, one metric, program order as trace time."""
    from repro.sim.spmd import trace_spmd
    from repro.sim.workloads import fig1

    return trace_spmd(fig1.build(), nranks=2, seed=7, trace_slices=2,
                      name="golden-trace-fig1")


@_trace_fixture
def trace_phases():
    """A planted *phase shift*: a light smoothing phase followed by a
    heavy sweep phase.  The flame slab and idleness series must show the
    cost regime changing partway through the trace, and a window
    covering only the first phase must contain no ``sweep`` scopes."""
    from repro.sim.program import Call, Loop, Module, Procedure, Program, Work
    from repro.sim.spmd import trace_spmd

    smooth = Procedure(name="smooth", line=1, end_line=4, body=[
        Work(line=2, costs={"cycles": 1.0}),
    ])
    sweep = Procedure(name="sweep", line=6, end_line=10, body=[
        Work(line=7, costs={"cycles": 3.0}),
        Work(line=8, costs={"cycles": 1.0, "flops": 2.0}),
    ])
    main = Procedure(name="main", line=12, end_line=20, body=[
        Loop(line=13, end_line=15, trips=4,
             body=[Call(line=14, callee="smooth")]),
        Loop(line=16, end_line=18, trips=4,
             body=[Call(line=17, callee="sweep")]),
    ])
    program = Program(
        name="phases",
        modules=[Module(path="phases.c", procedures=[main, smooth, sweep])],
        entry="main",
        metrics=[("cycles", "cycles"), ("flops", "flops")],
    )
    return trace_spmd(program, nranks=2, seed=7, trace_slices=6,
                      name="golden-trace-phases")


@_trace_fixture
def trace_straggler():
    """Planted *late-rank idleness*: per-rank cost grows linearly with
    rank, so high ranks keep computing after low ranks have finished —
    the idleness series must rise toward the end of the trace."""
    from repro.sim.program import Call, Module, Procedure, Program, Work
    from repro.sim.spmd import trace_spmd

    ranked = Procedure(name="ranked_work", line=1, end_line=4, body=[
        Work(line=2,
             costs=lambda ctx: {"cycles": 4.0 * (1 + ctx.rank)}),
    ])
    main = Procedure(name="main", line=6, end_line=10, body=[
        Work(line=7, costs={"cycles": 1.0}),
        Call(line=8, callee="ranked_work"),
    ])
    program = Program(
        name="straggler",
        modules=[Module(path="straggler.c", procedures=[main, ranked])],
        entry="main",
        metrics=[("cycles", "cycles")],
    )
    return trace_spmd(program, nranks=4, seed=7, trace_slices=8,
                      name="golden-trace-straggler")


def build_trace_fixture(name: str):
    return TRACE_FIXTURES[name]()


def trace_window(traces) -> tuple[float, float]:
    """The pinned query window: the middle half of the trace span."""
    t0, t1 = traces.t_begin, traces.t_end
    span = t1 - t0
    return (t0 + 0.25 * span, t0 + 0.75 * span)


def trace_store_files(traces, directory: str) -> dict[str, bytes]:
    """Write *traces* as a chunked store under *directory*; return the
    store's files keyed by basename (manifest, skeleton, chunk pairs)."""
    from repro.trace import create_trace_store

    store = create_trace_store(
        traces, os.path.join(directory, "store.rpstore"),
        chunk_duration=TRACE_CHUNK_DURATION,
    )
    try:
        return {
            fname: open(os.path.join(store.path, fname), "rb").read()
            for fname in sorted(os.listdir(store.path))
        }
    finally:
        store.close()


def trace_outputs() -> dict[str, bytes]:
    """filename -> bytes for the golden trace corpus.

    Every trace fixture pins (a) the exact bytes of its chunked store —
    manifest, skeleton, per-chunk event and slab files, flattened as
    ``<name>.trace.<file>`` — and (b) JSON renders of a mid-half window
    query, the rank-0 flame slab, and the idleness series.  Any drift
    in event ordering, quantization, chunk partitioning, manifest
    layout, window semantics, span merging, or binning changes
    checked-in bytes.
    """
    import json
    import shutil
    import tempfile

    from repro.query import query as make_query
    from repro.query import run_query
    from repro.trace import flame_slab, idleness_series

    def dump(payload) -> bytes:
        return (json.dumps(payload, indent=2, sort_keys=True) + "\n"
                ).encode("utf-8")

    out: dict[str, bytes] = {}
    for name in sorted(TRACE_FIXTURES):
        traces = build_trace_fixture(name)
        tmp = tempfile.mkdtemp(prefix="golden-trace-")
        try:
            for fname, content in trace_store_files(traces, tmp).items():
                out[f"{name}.trace.{fname}"] = content
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
        t0, t1 = trace_window(traces)
        metric = traces.metrics.by_id(0).name
        result = run_query(
            make_query("**/*").window(t0, t1).sort(metric), traces
        )
        payload = result.to_columns()
        payload["truncated"] = result.truncated
        payload["window"] = [t0, t1]
        out[f"{name}.trace.window.json"] = dump(payload)
        out[f"{name}.trace.flame.json"] = dump(flame_slab(traces, rank=0))
        out[f"{name}.trace.series.json"] = dump(
            idleness_series(traces, bins=8)
        )
    return out


def render_views(experiment: Experiment) -> dict[str, str]:
    """The canonical text rendering: slug -> table, fixed options.

    Sorted by the first raw metric's inclusive flavour, expanded four
    levels deep, generous row budget — wide enough that value drift
    anywhere near the top of any view changes the bytes.
    """
    metric = MetricSpec(experiment.metrics.by_id(0).mid,
                        MetricFlavor.INCLUSIVE)
    options = TableOptions(max_rows=120, name_width=56)
    out: dict[str, str] = {}
    for slug, view in zip(VIEW_SLUGS, experiment.views()):
        out[slug] = render_view(view, metric=metric, depth=4,
                                options=options) + "\n"
    return out

"""``/v1/corpus/...``: the HTTP face of the crash-safe profile corpus.

Also home to the two satellites that live at the server layer:

* the **diff alignment cache** — path-mode ``/v1/diff`` requests reuse
  a finished alignment keyed on member stat fingerprints, invalidated
  by corpus deletes, and *never* serving stale bytes after a member
  changes (the cache-never-taints assertions);
* the **ensemble fd hygiene** regression — closing an ensemble session
  built over ``.rpstore`` members returns every memory-mapped file
  descriptor deterministically, not at GC's leisure.
"""

from __future__ import annotations

import base64
import json
import os

import pytest

from repro.hpcprof import binio, database
from repro.hpcprof.experiment import Experiment
from repro.server import AnalysisApp
from repro.sim.workloads import fig1

_ERROR_FIELDS = {"status", "code", "message", "retry_after", "trace_id"}


@pytest.fixture(scope="module")
def payload() -> bytes:
    return binio.dumps_binary(Experiment.from_program(fig1.build()))


@pytest.fixture(scope="module")
def payload_alt() -> bytes:
    return binio.dumps_binary(
        Experiment.from_program(fig1.build(), nranks=1, seed=77)
    )


@pytest.fixture()
def app(tmp_path):
    app = AnalysisApp(corpus_root=str(tmp_path / "corpus"))
    yield app
    app.close()


def call(app, method, path, body=None):
    raw = json.dumps(body).encode() if body is not None else b""
    return app.handle(method, path, raw)


def upload(app, tenant, payload, name, **extra):
    body = {"name": name, "data": base64.b64encode(payload).decode()}
    body.update(extra)
    status, out = call(app, "POST", f"/v1/corpus/{tenant}/profiles", body)
    assert status == 201, out
    return out["profile"]


def assert_error(status, payload, code):
    assert status >= 400
    error = payload["error"]
    assert error["code"] == code
    assert set(error) <= _ERROR_FIELDS and error["trace_id"]


class TestCorpusEndpoints:
    def test_upload_list_get_delete(self, app, payload):
        profile = upload(app, "acme", payload, "run.rpdb",
                         meta={"build": "7"})
        status, out = call(app, "GET", "/v1/corpus/acme/profiles")
        assert status == 200
        assert [p["id"] for p in out["profiles"]] == [profile["id"]]

        status, out = call(
            app, "GET", f"/v1/corpus/acme/profiles/{profile['id']}"
        )
        assert status == 200 and out["profile"]["meta"] == {"build": "7"}
        assert out["profile"]["pinned"] is False

        status, out = call(
            app, "DELETE", f"/v1/corpus/acme/profiles/{profile['id']}"
        )
        assert status == 200 and out["deleted"] == profile["id"]
        status, out = call(
            app, "GET", f"/v1/corpus/acme/profiles/{profile['id']}"
        )
        assert_error(status, out, "unknown-profile")

    def test_search_filters(self, app, payload):
        upload(app, "t", payload, "alpha.rpdb", group="g1",
               meta={"build": "1"})
        upload(app, "t", payload, "beta.rpdb", group="g2",
               meta={"build": "2"})
        status, out = call(app, "GET",
                           "/v1/corpus/t/profiles?group=g1")
        assert [p["name"] for p in out["profiles"]] == ["alpha.rpdb"]
        status, out = call(app, "GET",
                           "/v1/corpus/t/profiles?meta.build=2")
        assert [p["name"] for p in out["profiles"]] == ["beta.rpdb"]
        status, out = call(app, "GET",
                           "/v1/corpus/t/profiles?name=bet")
        assert [p["name"] for p in out["profiles"]] == ["beta.rpdb"]

    def test_upload_validation_errors(self, app, payload):
        status, out = call(app, "POST", "/v1/corpus/t/profiles",
                           {"name": "x"})
        assert_error(status, out, "bad-upload-source")
        status, out = call(app, "POST", "/v1/corpus/t/profiles",
                           {"name": "x", "data": "@@not-base64@@"})
        assert_error(status, out, "bad-upload-encoding")
        status, out = call(
            app, "POST", "/v1/corpus/t/profiles",
            {"name": "x",
             "data": base64.b64encode(b"not a database").decode()},
        )
        assert status == 400

    def test_corrupt_upload_refused_then_salvaged(self, app, payload):
        torn = base64.b64encode(payload[:-9]).decode()
        status, out = call(app, "POST", "/v1/corpus/t/profiles",
                           {"name": "torn.rpdb", "data": torn})
        assert status == 400
        status, out = call(app, "POST", "/v1/corpus/t/profiles",
                           {"name": "torn.rpdb", "data": torn,
                            "salvage": True})
        assert status == 201

    def test_open_by_id_pins_until_close(self, app, payload):
        profile = upload(app, "t", payload, "run.rpdb")
        status, out = call(
            app, "POST",
            f"/v1/corpus/t/profiles/{profile['id']}/open", {},
        )
        assert status == 201
        sid = out["session"]["id"]
        assert out["profile"]["id"] == profile["id"]

        # the open session pins the profile: delete refused with 409
        status, out = call(
            app, "DELETE", f"/v1/corpus/t/profiles/{profile['id']}"
        )
        assert_error(status, out, "profile-pinned")
        status, out = call(
            app, "GET", f"/v1/corpus/t/profiles/{profile['id']}"
        )
        assert out["profile"]["pinned"] is True

        # the session serves renders like any other
        status, out = call(app, "POST", f"/v1/sessions/{sid}/render",
                           {"view": "cct"})
        assert status == 200

        # closing the session unpins; delete now succeeds
        status, _ = call(app, "DELETE", f"/v1/sessions/{sid}")
        assert status == 200
        status, out = call(
            app, "DELETE", f"/v1/corpus/t/profiles/{profile['id']}"
        )
        assert status == 200

    def test_adopted_session_close_unpins(self, app, payload):
        """In the pool, open-by-id lands on one worker but the close may
        route to another, which adopts the session and never saw the
        in-memory pin record.  Closing must still release the pin file
        (looked up by owner sid)."""
        profile = upload(app, "t", payload, "run.rpdb")
        status, out = call(
            app, "POST",
            f"/v1/corpus/t/profiles/{profile['id']}/open", {},
        )
        assert status == 201
        sid = out["session"]["id"]
        # simulate the adopting worker: its handle has no corpus_pin
        handle = app.registry.get(sid)
        handle.corpus_pin = None
        status, _ = call(app, "DELETE", f"/v1/sessions/{sid}")
        assert status == 200
        status, _ = call(
            app, "DELETE", f"/v1/corpus/t/profiles/{profile['id']}"
        )
        assert status == 200, "close must release the pin by owner sid"

    def test_eviction_unpins(self, payload, tmp_path):
        app = AnalysisApp(corpus_root=str(tmp_path / "c"),
                          max_sessions=1)
        try:
            profile = upload(app, "t", payload, "run.rpdb")
            status, out = call(
                app, "POST",
                f"/v1/corpus/t/profiles/{profile['id']}/open", {},
            )
            assert status == 201
            # opening a second session evicts the first (LRU cap 1)
            status, _ = call(app, "POST", "/v1/sessions",
                             {"workload": "fig1"})
            assert status == 201
            status, _ = call(
                app, "DELETE", f"/v1/corpus/t/profiles/{profile['id']}"
            )
            assert status == 200, "eviction must release the pin"
        finally:
            app.close()

    def test_compact_endpoint(self, app, payload, payload_alt):
        upload(app, "t", payload, "r0.rpdb", group="nightly")
        upload(app, "t", payload_alt, "r1.rpdb", group="nightly")
        status, out = call(app, "POST", "/v1/corpus/t/compact", {})
        assert status == 200
        assert [p["kind"] for p in out["compacted"]] == ["rpstore"]
        status, out = call(app, "GET", "/v1/corpus/t/profiles")
        assert [p["kind"] for p in out["profiles"]] == ["rpstore"]

        # the compacted store opens as a session by id
        store_id = out["profiles"][0]["id"]
        status, out = call(
            app, "POST", f"/v1/corpus/t/profiles/{store_id}/open", {}
        )
        assert status == 201

    def test_policy_endpoint(self, app, payload):
        for i in range(3):
            upload(app, "t", payload, f"r{i}.rpdb")
        status, out = call(app, "POST", "/v1/corpus/t/policy",
                           {"max_profiles": 1})
        assert status == 200
        assert len(out["evicted"]) == 2
        status, out = call(app, "GET", "/v1/corpus/t/policy")
        assert out["policy"]["max_profiles"] == 1

    def test_corpus_info(self, app, payload):
        upload(app, "t", payload, "run.rpdb")
        status, out = call(app, "GET", "/v1/corpus")
        assert status == 200
        assert out["corpus"]["tenants"]["t"]["profiles"] == 1

    def test_no_corpus_configured(self):
        app = AnalysisApp()
        status, out = call(app, "GET", "/v1/corpus")
        assert_error(status, out, "no-corpus")

    def test_two_apps_share_one_corpus(self, payload, tmp_path):
        """Pool shape: every worker opens the same catalog and sees
        every other worker's committed mutations."""
        root = str(tmp_path / "shared")
        a = AnalysisApp(corpus_root=root)
        b = AnalysisApp(corpus_root=root)
        try:
            profile = upload(a, "t", payload, "from-a.rpdb")
            status, out = call(b, "GET",
                               f"/v1/corpus/t/profiles/{profile['id']}")
            assert status == 200 and out["profile"]["name"] == "from-a.rpdb"
            status, _ = call(
                b, "DELETE", f"/v1/corpus/t/profiles/{profile['id']}"
            )
            assert status == 200
            status, out = call(a, "GET", "/v1/corpus/t/profiles")
            assert out["profiles"] == []
        finally:
            a.close()
            b.close()


class TestAdoptionRepins:
    def test_adoption_refreshes_stale_pin(self, payload, tmp_path):
        """A worker adopting a crashed sibling's corpus session must
        re-pin the profile: the on-disk pin still names the dead
        worker's process, and a retention scan would otherwise reap it
        and evict the profile out from under the live session."""
        import subprocess

        root = str(tmp_path / "shared")
        manifests = tmp_path / "manifests"
        manifests.mkdir()
        a = AnalysisApp(corpus_root=root)
        a.registry.manifest_dir = str(manifests)
        b = AnalysisApp(corpus_root=root)
        b.registry.manifest_dir = str(manifests)
        try:
            profile = upload(a, "t", payload, "run.rpdb")
            status, out = call(
                a, "POST",
                f"/v1/corpus/t/profiles/{profile['id']}/open", {},
            )
            assert status == 201
            sid = out["session"]["id"]

            # simulate worker A crashing: its pin survives on disk but
            # names a process that no longer exists
            proc = subprocess.Popen(["true"])
            proc.wait()
            pin_path = os.path.join(
                root, "pins", f"t@@{profile['id']}@@{sid}.pin")
            assert os.path.exists(pin_path)
            with open(pin_path, "w", encoding="utf-8") as fh:
                json.dump({"ospid": proc.pid, "owner": sid}, fh)
            a.registry._handles.clear()  # A's in-memory state is gone

            # worker B adopts the session from the shared manifest; the
            # adoption hook must rewrite the pin to name B's process
            status, _ = call(b, "GET", f"/v1/sessions/{sid}")
            assert status == 200
            with open(pin_path, encoding="utf-8") as fh:
                assert json.load(fh)["ospid"] == os.getpid()

            # a quota eviction now sees a live pin: the pinned profile
            # (the oldest) is skipped and the decoy is evicted instead
            decoy = upload(b, "t", payload, "decoy.rpdb")
            status, out = call(b, "POST", "/v1/corpus/t/policy",
                               {"max_profiles": 1})
            assert status == 200
            assert [e["id"] for e in out["evicted"]] == [decoy["id"]]
            status, _ = call(
                b, "GET", f"/v1/corpus/t/profiles/{profile['id']}")
            assert status == 200, "pinned profile must survive eviction"
        finally:
            a.close()
            b.close()


# --------------------------------------------------------------------- #
# satellite: the diff alignment cache
# --------------------------------------------------------------------- #
def _diff_body(paths):
    return {"databases": list(paths), "baseline": 0, "target": 1}


class TestDiffAlignCache:
    def _members(self, app, payload, payload_alt, tenant="t"):
        p0 = upload(app, tenant, payload, "r0.rpdb")
        p1 = upload(app, tenant, payload_alt, "r1.rpdb")
        return [
            app.corpus.profile_path(tenant, p["id"]) for p in (p0, p1)
        ], (p0, p1)

    def test_hit_and_miss_keyed_on_stat(self, app, payload, payload_alt):
        paths, _ = self._members(app, payload, payload_alt)
        status, first = call(app, "POST", "/v1/diff", _diff_body(paths))
        assert status == 200
        assert app.align_cache.stats()["misses"] == 1
        status, second = call(app, "POST", "/v1/diff", _diff_body(paths))
        assert status == 200
        assert app.align_cache.stats()["hits"] == 1
        assert second["diff"] == first["diff"], "cached result identical"

        # touching a member's bytes invalidates by fingerprint
        os.utime(paths[0], ns=(1, 1))
        status, _ = call(app, "POST", "/v1/diff", _diff_body(paths))
        assert status == 200
        assert app.align_cache.stats()["misses"] == 2

    def test_corpus_delete_invalidates(self, app, payload, payload_alt):
        paths, (_p0, p1) = self._members(app, payload, payload_alt)
        call(app, "POST", "/v1/diff", _diff_body(paths))
        assert app.align_cache.stats()["size"] == 1
        status, _ = call(
            app, "DELETE", f"/v1/corpus/t/profiles/{p1['id']}"
        )
        assert status == 200
        assert app.align_cache.stats()["size"] == 0

    def test_cache_never_taints(self, app, payload, payload_alt):
        """After a member is corrupted, the next diff must fail with the
        member's canonical error — never serve the stale cached table."""
        paths, _ = self._members(app, payload, payload_alt)
        status, _ = call(app, "POST", "/v1/diff", _diff_body(paths))
        assert status == 200
        with open(paths[1], "wb") as fh:
            fh.write(b"garbage, not a database")
        status, out = call(app, "POST", "/v1/diff", _diff_body(paths))
        assert status == 400
        assert out["error"]["code"] in ("bad-database", "bad-diff-members")

    def test_failed_align_never_populates(self, app, payload, tmp_path):
        bad = tmp_path / "bad.rpdb"
        bad.write_bytes(b"junk")
        good = tmp_path / "good.rpdb"
        good.write_bytes(payload)
        status, _ = call(app, "POST", "/v1/diff",
                         _diff_body([str(good), str(bad)]))
        assert status == 400
        assert app.align_cache.stats()["size"] == 0

    def test_sessions_mode_not_cached(self, app):
        for seed in (1, 2):
            call(app, "POST", "/v1/sessions",
                 {"workload": "fig1", "seed": seed})
        status, out = call(app, "GET", "/v1/sessions")
        sids = [s["id"] for s in out["sessions"]]
        status, _ = call(app, "POST", "/v1/diff",
                         {"sessions": sids, "baseline": 0, "target": 1})
        assert status == 200
        assert app.align_cache.stats()["size"] == 0


# --------------------------------------------------------------------- #
# satellite: ensemble sessions return their mmap fds on close
# --------------------------------------------------------------------- #
def _open_fds() -> int:
    return len(os.listdir("/proc/self/fd"))


@pytest.mark.skipif(not os.path.isdir("/proc/self/fd"),
                    reason="needs /proc fd accounting")
def test_ensemble_close_releases_store_fds(tmp_path):
    """Opening an ensemble over ``.rpstore`` members dups mmap fds;
    closing the session must give every one back deterministically
    (CCT reference cycles would otherwise hold them until a GC)."""
    stores = []
    for i in range(2):
        exp = Experiment.from_program(fig1.build(), nranks=2, seed=i + 1)
        path = str(tmp_path / f"m{i}.rpstore")
        database.save(exp, path)
        stores.append(path)

    app = AnalysisApp()
    status, out = call(app, "POST", "/v1/ensemble",
                       {"databases": stores, "stats": "none"})
    assert status == 201
    sid = out["session"]["id"]
    status, _ = call(app, "POST", f"/v1/sessions/{sid}/render",
                     {"view": "cct"})
    assert status == 200
    before = _open_fds()
    for _ in range(3):
        status, out = call(app, "POST", "/v1/ensemble",
                           {"databases": stores, "stats": "none"})
        assert status == 201
        status, _ = call(
            app, "DELETE", f"/v1/sessions/{out['session']['id']}"
        )
        assert status == 200
    after = _open_fds()
    assert after <= before, (
        f"ensemble open/close cycles leaked fds: {before} -> {after}"
    )

"""Keep-alive hygiene of the HTTP shell around oversized bodies.

Regression for the 413 path: the handler reads at most ``max_body + 1``
bytes of an oversized request, which used to leave the remainder on the
socket — the next request on the same keep-alive connection then parsed
the tail of the previous body as its request line, corrupting the
connection.  The fix drains a bounded remainder (connection stays
usable) or, past the drain limit, answers ``Connection: close``.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.server.http import AnalysisRequestHandler, build_server
from tests.server.conftest import scaled


@pytest.fixture()
def server():
    srv = build_server(workload="fig1", max_body=1024)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=scaled(10))


def _request_bytes(method, path, body=b"", headers=()):
    lines = [f"{method} {path} HTTP/1.1", "Host: test",
             f"Content-Length: {len(body)}"]
    lines += [f"{k}: {v}" for k, v in headers]
    return ("\r\n".join(lines) + "\r\n\r\n").encode() + body


def _read_response(sock):
    """Read one HTTP response off *sock*; returns (status, headers, body)."""
    buf = b""
    while b"\r\n\r\n" not in buf:
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError(f"connection closed mid-headers: {buf!r}")
        buf += chunk
    head, _, rest = buf.partition(b"\r\n\r\n")
    head_lines = head.decode("latin-1").split("\r\n")
    status = int(head_lines[0].split()[1])
    headers = {}
    for line in head_lines[1:]:
        key, _, value = line.partition(":")
        headers[key.strip().lower()] = value.strip()
    length = int(headers.get("content-length", 0))
    while len(rest) < length:
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("connection closed mid-body")
        rest += chunk
    return status, headers, rest[:length], rest[length:]


def _connect(server):
    host, port = server.server_address[:2]
    sock = socket.create_connection((host, port), timeout=scaled(10))
    sock.settimeout(scaled(10))
    return sock


class TestOversizedBodyKeepAlive:
    def test_second_request_survives_413(self, server):
        """Two requests on one connection: an oversized POST answers 413
        and the follow-up GET still parses cleanly — the drained body
        never masquerades as a request line."""
        big = b"x" * 4096  # over max_body, under the drain limit
        with _connect(server) as sock:
            sock.sendall(_request_bytes("POST", "/sessions", big))
            status, headers, body, extra = _read_response(sock)
            assert status == 413
            assert json.loads(body)["error"]["code"] == "payload-too-large"
            assert headers.get("connection") != "close"

            sock.sendall(_request_bytes("GET", "/stats"))
            status, _headers, body, _extra = _read_response(sock)
            assert status == 200
            assert "requests" in json.loads(body)

    def test_huge_body_closes_connection(self, server):
        """Past the drain limit the server refuses to swallow the body:
        it answers 413 with ``Connection: close`` and hangs up."""
        declared = AnalysisRequestHandler.DRAIN_LIMIT + 65536
        with _connect(server) as sock:
            head = (
                f"POST /sessions HTTP/1.1\r\nHost: test\r\n"
                f"Content-Length: {declared}\r\n\r\n"
            ).encode()
            # send only the prefix the server actually reads (max_body+1);
            # the *declared* remainder is past the drain limit, so the
            # server must hang up rather than wait for it to arrive
            sock.sendall(head + b"y" * 1025)
            status, headers, body, _extra = _read_response(sock)
            assert status == 413
            assert json.loads(body)["error"]["code"] == "payload-too-large"
            assert headers.get("connection") == "close"
            assert sock.recv(65536) == b""  # EOF: server hung up

    def test_normal_keepalive_unaffected(self, server):
        with _connect(server) as sock:
            for _ in range(3):
                sock.sendall(_request_bytes(
                    "POST", "/sessions",
                    json.dumps({"workload": "fig1"}).encode(),
                    headers=[("Content-Type", "application/json")],
                ))
                status, _h, body, _e = _read_response(sock)
                assert status == 201

    def test_retry_after_header_on_shed(self):
        srv = build_server(workload="fig1", max_inflight=0)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            with _connect(srv) as sock:
                sock.sendall(_request_bytes("GET", "/sessions"))
                status, headers, body, _e = _read_response(sock)
                assert status == 429
                assert int(headers["retry-after"]) >= 1
                assert json.loads(body)["error"]["code"] == "too-many-requests"
        finally:
            srv.shutdown()
            srv.server_close()
            thread.join(timeout=scaled(10))

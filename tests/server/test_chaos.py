"""The chaos battery: seeded fault plans against the whole service.

Every plan from :func:`repro.testing.fault_plans` — byte-level database
corruption, exceptions thrown inside view construction, renders slowed
past their deadline — is driven through the real request pipeline, and
three system-wide invariants are asserted for each:

1. **structured errors only** — every response, faulted or not, is a
   JSON object; failures carry exactly the error taxonomy shape and
   never a traceback or an HTML body;
2. **the render cache never serves faulted work** — after the fault is
   removed, a replayed render is byte-identical to one computed by a
   fresh, uncached, lock-free session (so nothing the faulted attempt
   touched leaked into the cache);
3. **salvage output is first-class** — a session opened from a
   corrupted database in salvage mode passes the same validation as a
   clean load and serves renders normally.

The full battery (``-m chaos``) sweeps ≥200 plans; a small unmarked
subset keeps coverage in runs that deselect the marker.
"""

from __future__ import annotations

import json

import pytest

from repro.hpcprof import binio
from repro.hpcprof.experiment import Experiment
from repro.hpcprof.recovery import validate_experiment
from repro.server import AnalysisApp
from repro.server.sessions import render_snapshot
from repro.core.views import ViewKind
from repro.sim.workloads import fig1
from repro.testing import FakeClock, FaultPlan, apply_fault, fault_plans, patched, slow_call
from repro.viewer.session import ViewerSession

#: the acceptance floor is 200 plans; run a bit past it
N_PLANS = 240

PLANS = fault_plans(N_PLANS)
BYTE_KINDS = {"bit-flip", "truncate", "truncate-frame", "garble-run"}

_VIEW_NAMES = ("cct", "callers", "flat")
_VIEW_BUILDERS = {
    "cct": "calling_context_view",
    "callers": "callers_view",
    "flat": "flat_view",
}
_VIEW_KINDS = {
    "cct": ViewKind.CALLING_CONTEXT,
    "callers": ViewKind.CALLERS,
    "flat": ViewKind.FLAT,
}
_EXCEPTIONS = (RuntimeError, ValueError, KeyError, ZeroDivisionError)

_ERROR_FIELDS = {"status", "code", "message", "retry_after", "trace_id"}


@pytest.fixture(scope="module")
def blob():
    return binio.dumps_binary(Experiment.from_program(fig1.build()))


def post(app, path, body=None):
    raw = json.dumps(body).encode() if body is not None else b""
    return app.handle("POST", path, raw)


def assert_structured(status: int, payload) -> str:
    """Invariant 1: JSON object out, taxonomy shape on failure."""
    assert isinstance(payload, dict), f"non-dict payload for {status}"
    body = json.dumps(payload, sort_keys=True)  # must be serializable
    assert "Traceback" not in body
    assert "<html" not in body.lower()
    if status >= 400:
        error = payload.get("error")
        assert isinstance(error, dict), f"unstructured {status}: {payload}"
        assert set(error) <= _ERROR_FIELDS
        assert error["status"] == status
        assert isinstance(error["code"], str) and error["code"]
        assert isinstance(error["message"], str)
        # every structured error is traceable back to its request
        assert isinstance(error.get("trace_id"), str) and error["trace_id"]
    return body


def assert_replay_identical(app, sid: str, view: str) -> None:
    """Invariants 2: a cached render equals its fresh recomputation.

    Three-way comparison: first app render (fills the cache), second app
    render (cache hit), and a render through a brand-new uncached
    session built from pristine bytes.  All three must agree byte for
    byte — which fails if a faulted attempt ever leaked into the cache.
    """
    path = f"/sessions/{sid}/render?view={view}"
    s1, p1 = app.handle("GET", path)
    s2, p2 = app.handle("GET", path)
    assert (s1, s2) == (200, 200)
    b1 = json.dumps(p1, sort_keys=True).encode()
    b2 = json.dumps(p2, sort_keys=True).encode()
    assert b1 == b2, "cached replay differs from its own first render"
    fresh = render_snapshot(
        ViewerSession(Experiment.from_program(fig1.build())),
        _VIEW_KINDS[view],
    )
    assert p1["text"] == fresh["text"], "cache served faulted work"


# --------------------------------------------------------------------- #
# plan execution
# --------------------------------------------------------------------- #
def run_byte_plan(plan: FaultPlan, blob: bytes, tmp_path) -> None:
    mutated = apply_fault(blob, plan)
    db = tmp_path / f"fault-{plan.seed}.rpdb"
    db.write_bytes(mutated)
    app = AnalysisApp()

    # strict open: either a working session or a structured error
    status, payload = post(app, "/sessions", {"database": str(db)})
    assert_structured(status, payload)
    assert status in (201, 400, 404), f"strict open: {status}"

    # salvage open: always a session once the 6-byte header survives
    status, payload = post(
        app, "/sessions", {"database": str(db), "salvage": True}
    )
    assert_structured(status, payload)
    if mutated[:6] == blob[:6]:
        assert status == 201, f"salvage refused recoverable input: {payload}"
        report = payload["load_report"]
        assert report["bytes"]["total"] == len(mutated)
        assert (report["bytes"]["recovered"] + report["bytes"]["lost"]
                == report["bytes"]["total"])
        sid = payload["session"]["id"]
        for path in (f"/sessions/{sid}/render", f"/sessions/{sid}/metrics",
                     f"/sessions/{sid}"):
            s, p = app.handle("GET", path)
            assert_structured(s, p)
            assert s in (200, 400), f"salvaged session unusable: {s} {p}"
    else:
        assert status == 400

    # the salvaged bytes load to a validating experiment directly too
    if mutated[:6] == blob[:6]:
        from repro.hpcprof import database as dbmod

        validate_experiment(dbmod.loads(mutated, strict=False))


def run_exception_plan(plan: FaultPlan) -> None:
    view = _VIEW_NAMES[int(plan.position * 10) % 3]
    exc_type = _EXCEPTIONS[int(plan.magnitude * 10) % len(_EXCEPTIONS)]
    app = AnalysisApp()
    _, opened = post(app, "/sessions", {"workload": "fig1"})
    sid = opened["session"]["id"]

    builder = _VIEW_BUILDERS[view]
    original = getattr(Experiment, builder)

    def exploding(self, *args, **kwargs):
        raise exc_type(f"injected by plan {plan.seed}")

    with patched(Experiment, builder, exploding):
        status, payload = app.handle(
            "GET", f"/sessions/{sid}/render?view={view}"
        )
        body = assert_structured(status, payload)
        assert status == 500
        assert payload["error"]["code"] == "internal"
        # the exception text (possibly user data) is not echoed raw
        assert f"plan {plan.seed}" not in body

    # fault removed: nothing faulted was cached; replay is pristine
    assert getattr(Experiment, builder) is original
    assert_replay_identical(app, sid, view)


def run_slow_plan(plan: FaultPlan) -> None:
    view = _VIEW_NAMES[int(plan.position * 10) % 3]
    clock = FakeClock()
    budget = 0.5 + plan.magnitude  # [0.5, 1.5) seconds
    app = AnalysisApp(request_timeout_s=budget, clock=clock)
    _, opened = post(app, "/sessions", {"workload": "fig1"})
    sid = opened["session"]["id"]

    builder = _VIEW_BUILDERS[view]
    slow = slow_call(getattr(Experiment, builder), clock, cost_s=budget * 4)
    with patched(Experiment, builder, slow):
        status, payload = app.handle(
            "GET", f"/sessions/{sid}/render?view={view}"
        )
        assert_structured(status, payload)
        assert status == 503
        assert payload["error"]["code"] == "deadline-exceeded"
        assert payload["error"]["retry_after"] is not None

    assert app.cache.stats()["entries"] == 0  # aborted work not cached
    assert_replay_identical(app, sid, view)


def run_plan(plan: FaultPlan, blob: bytes, tmp_path) -> None:
    if plan.kind in BYTE_KINDS:
        run_byte_plan(plan, blob, tmp_path)
    elif plan.kind == "exception":
        run_exception_plan(plan)
    else:
        run_slow_plan(plan)


# --------------------------------------------------------------------- #
# the battery
# --------------------------------------------------------------------- #
@pytest.mark.chaos
@pytest.mark.parametrize(
    "plan", PLANS, ids=[f"{p.kind}-{p.seed:x}" for p in PLANS]
)
def test_fault_plan(plan, blob, tmp_path):
    run_plan(plan, blob, tmp_path)


def test_fast_subset_covers_every_kind(blob, tmp_path):
    """Unmarked tier-1 insurance: one plan of each kind, even when the
    chaos marker is deselected."""
    by_kind = {}
    for plan in PLANS:
        by_kind.setdefault(plan.kind, plan)
    assert len(by_kind) == 6
    for plan in by_kind.values():
        run_plan(plan, blob, tmp_path)


def test_plan_determinism():
    """Same seed → byte-identical plan list (reproducibility anchor)."""
    again = fault_plans(N_PLANS)
    assert again == PLANS
    assert [p.describe() for p in again] == [p.describe() for p in PLANS]

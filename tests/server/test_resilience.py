"""The server resilience layer: deadlines, shedding, eviction, health.

All timing here is driven by :class:`repro.testing.FakeClock` — no
sleeps, no wall-clock races; expiry and TTL eviction are exact.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.hpcprof import database
from repro.hpcprof.experiment import Experiment
from repro.server import AnalysisApp
from repro.server.deadline import Deadline, checkpoint, deadline_scope
from repro.server.errors import DeadlineExceeded
from repro.server.sessions import SessionRegistry
from repro.sim.workloads import fig1
from repro.testing import FakeClock, patched, slow_call
from repro.viewer.session import ViewerSession
from tests.server.conftest import scaled


def post(app, path, body=None):
    raw = json.dumps(body).encode() if body is not None else b""
    return app.handle("POST", path, raw)


@pytest.fixture()
def clock():
    return FakeClock()


# --------------------------------------------------------------------- #
# deadlines
# --------------------------------------------------------------------- #
class TestDeadline:
    def test_checkpoint_is_noop_without_deadline(self):
        checkpoint()  # must not raise outside a scope

    def test_expiry_is_exact(self, clock):
        deadline = Deadline(5.0, clock=clock)
        with deadline_scope(deadline):
            checkpoint()
            clock.advance(4.999)
            checkpoint()
            clock.advance(0.002)
            with pytest.raises(DeadlineExceeded) as err:
                checkpoint("render")
            assert "render" in str(err.value)
            assert err.value.retry_after is not None

    def test_scopes_nest_and_restore(self, clock):
        outer = Deadline(100.0, clock=clock)
        inner = Deadline(1.0, clock=clock)
        with deadline_scope(outer):
            with deadline_scope(inner):
                clock.advance(2.0)
                with pytest.raises(DeadlineExceeded):
                    checkpoint()
            checkpoint()  # outer still has budget

    def test_slow_render_503_and_cache_untainted(self, clock):
        """A render that burns past its deadline answers 503
        deadline-exceeded; the aborted partial work never enters the
        cache, so the post-fault render is correct and freshly built."""
        app = AnalysisApp(request_timeout_s=1.0, clock=clock)
        _, payload = post(app, "/sessions", {"workload": "fig1"})
        sid = payload["session"]["id"]

        exp_cls = Experiment
        slow = slow_call(exp_cls.calling_context_view, clock, cost_s=5.0)
        with patched(exp_cls, "calling_context_view", slow):
            status, payload = app.handle("GET", f"/sessions/{sid}/render")
            assert status == 503
            assert payload["error"]["code"] == "deadline-exceeded"
            assert payload["error"]["retry_after"] is not None
        assert app.cache.stats()["entries"] == 0

        # fault removed: the same request now succeeds, and matches a
        # fresh uncached render of the same experiment byte for byte
        status, served = app.handle("GET", f"/sessions/{sid}/render")
        assert status == 200
        fresh = ViewerSession(Experiment.from_program(fig1.build()))
        from repro.server.sessions import render_snapshot
        from repro.core.views import ViewKind

        expected = render_snapshot(fresh, ViewKind.CALLING_CONTEXT)
        assert served["text"] == expected["text"]

    def test_fast_render_within_deadline_succeeds(self, clock):
        app = AnalysisApp(request_timeout_s=30.0, clock=clock)
        _, payload = post(app, "/sessions", {"workload": "fig1"})
        status, _ = app.handle(
            "GET", f"/sessions/{payload['session']['id']}/render"
        )
        assert status == 200


# --------------------------------------------------------------------- #
# admission control
# --------------------------------------------------------------------- #
class TestAdmission:
    def test_sheds_past_the_limit_with_retry_after(self):
        app = AnalysisApp(max_inflight=2)
        ready = threading.Barrier(3)
        release = threading.Event()
        results = []

        real_match = AnalysisApp._match

        def stalling_match(self_app, method, path):
            ready.wait(timeout=scaled(10))
            release.wait(timeout=scaled(10))
            return real_match(self_app, method, path)

        def worker():
            results.append(app.handle("GET", "/sessions"))

        with patched(AnalysisApp, "_match", stalling_match):
            threads = [threading.Thread(target=worker) for _ in range(2)]
            for t in threads:
                t.start()
            ready.wait(timeout=scaled(10))  # both stalled requests are in flight
            status, payload = app.handle("GET", "/sessions")
            release.set()
            for t in threads:
                t.join(timeout=scaled(10))

        assert status == 429
        assert payload["error"]["code"] == "too-many-requests"
        assert payload["error"]["retry_after"] >= 1.0
        assert all(s == 200 for s, _ in results)
        assert app.stats_payload()["requests"]["shed"] == 1
        assert app.inflight() == 0

    def test_healthz_and_stats_exempt_from_shedding(self):
        app = AnalysisApp(max_inflight=0)
        status, _ = app.handle("GET", "/sessions")
        assert status == 429
        status, payload = app.handle("GET", "/stats")
        assert status == 200
        # healthz answers (liveness) even while reporting not-ready
        status, payload = app.handle("GET", "/healthz")
        assert status == 503
        assert payload["error"]["code"] == "overloaded"

    def test_healthz_ready_when_idle(self):
        app = AnalysisApp()
        status, payload = app.handle("GET", "/healthz")
        assert status == 200
        assert payload["live"] and payload["ready"]

    def test_unlimited_admission_when_disabled(self):
        app = AnalysisApp(max_inflight=None)
        status, payload = app.handle("GET", "/healthz")
        assert status == 200


# --------------------------------------------------------------------- #
# session eviction
# --------------------------------------------------------------------- #
class TestEviction:
    def test_ttl_evicts_idle_sessions(self, clock):
        app = AnalysisApp(session_ttl_s=60.0, clock=clock)
        _, p1 = post(app, "/sessions", {"workload": "fig1"})
        sid1 = p1["session"]["id"]
        clock.advance(50)
        _, p2 = post(app, "/sessions", {"workload": "fig1"})
        sid2 = p2["session"]["id"]
        # sid1 idle 50s: still alive, and touching it resets its TTL
        assert app.handle("GET", f"/sessions/{sid1}")[0] == 200
        clock.advance(55)
        # sid2 is now 55s idle (alive), sid1 only 55s since touch (alive)
        assert app.handle("GET", f"/sessions/{sid2}")[0] == 200
        clock.advance(61)
        status, payload = app.handle("GET", f"/sessions/{sid1}")
        assert status == 404
        assert payload["error"]["code"] == "unknown-session"
        assert app.registry.evictions >= 1

    def test_lru_cap_evicts_oldest(self, clock):
        app = AnalysisApp(max_sessions=2, clock=clock)
        sids = []
        for _ in range(3):
            clock.advance(1)
            _, p = post(app, "/sessions", {"workload": "fig1"})
            sids.append(p["session"]["id"])
        assert app.handle("GET", f"/sessions/{sids[0]}")[0] == 404
        assert app.handle("GET", f"/sessions/{sids[1]}")[0] == 200
        assert app.handle("GET", f"/sessions/{sids[2]}")[0] == 200
        assert len(app.registry) == 2

    def test_scope_budget_evicts_lru_but_never_newest(self, clock):
        registry = SessionRegistry(scope_budget=25, clock=clock)
        exp = Experiment.from_program(fig1.build())  # 19 scopes
        h1 = registry.register(exp, "a")
        clock.advance(1)
        h2 = registry.register(
            Experiment.from_program(fig1.build()), "b"
        )  # 38 > 25: h1 evicted, h2 (newest) kept though itself 19 > 25...
        assert len(registry) == 1
        assert registry.get(h2.sid) is h2
        with pytest.raises(Exception):
            registry.get(h1.sid)
        assert registry.total_cost() == 19

    def test_eviction_purges_render_cache(self, clock):
        app = AnalysisApp(max_sessions=1, clock=clock)
        _, p1 = post(app, "/sessions", {"workload": "fig1"})
        sid1 = p1["session"]["id"]
        assert app.handle("GET", f"/sessions/{sid1}/render")[0] == 200
        assert app.cache.stats()["entries"] == 1
        clock.advance(1)
        post(app, "/sessions", {"workload": "fig1"})  # evicts sid1
        assert app.cache.stats()["entries"] == 0
        assert app.stats_payload()["evictions"] == 1

    def test_no_eviction_by_default(self, clock):
        app = AnalysisApp(clock=clock)
        sids = []
        for _ in range(8):
            clock.advance(10_000)
            _, p = post(app, "/sessions", {"workload": "fig1"})
            sids.append(p["session"]["id"])
        assert all(
            app.handle("GET", f"/sessions/{s}")[0] == 200 for s in sids
        )
        assert app.registry.evictions == 0


# --------------------------------------------------------------------- #
# TOCTOU-free database opening
# --------------------------------------------------------------------- #
class TestOpenDatabase:
    def test_missing_file_404_without_exists_probe(self, tmp_path):
        app = AnalysisApp()
        status, payload = post(
            app, "/sessions", {"database": str(tmp_path / "gone.rpdb")}
        )
        assert status == 404
        assert payload["error"]["code"] == "unknown-database"

    def test_directory_path_is_structured_error(self, tmp_path):
        app = AnalysisApp()
        status, payload = post(app, "/sessions", {"database": str(tmp_path)})
        assert status == 400
        assert payload["error"]["code"] == "bad-database"
        assert str(tmp_path) in payload["error"]["message"]

    def test_vanishing_file_between_calls(self, tmp_path):
        """Simulate the race: the path exists when checked by anyone
        earlier, but open() finds it gone.  database.load must produce
        DatabaseError (→ 404), not FileNotFoundError."""
        path = tmp_path / "blink.rpdb"
        database.save(Experiment.from_program(fig1.build()), str(path))
        app = AnalysisApp()
        import builtins

        real_open = builtins.open

        def vanishing_open(file, *args, **kwargs):
            if str(file) == str(path):
                raise FileNotFoundError(2, "No such file or directory", file)
            return real_open(file, *args, **kwargs)

        with patched(builtins, "open", vanishing_open):
            status, payload = post(app, "/sessions", {"database": str(path)})
        assert status == 404
        assert payload["error"]["code"] == "unknown-database"

    def test_salvage_open_reports_load(self, tmp_path):
        path = tmp_path / "torn.rpdb"
        blob = database.save(Experiment.from_program(fig1.build()), str(path))
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 40])  # torn write
        app = AnalysisApp()
        status, payload = post(
            app, "/sessions", {"database": str(path)}
        )
        assert status == 400  # strict by default
        status, payload = post(
            app, "/sessions", {"database": str(path), "salvage": True}
        )
        assert status == 201
        report = payload["load_report"]
        assert report["clean"] is False
        assert report["bytes"]["lost"] > 0
        # the salvaged session is fully usable
        sid = payload["session"]["id"]
        assert app.handle("GET", f"/sessions/{sid}/render")[0] == 200

"""Shared fixtures for the server suites.

The stress and chaos tests spin threads and real sockets; a deadlock
there would hang the whole tier-1 run.  Since ``pytest-timeout`` is not
a dependency, an autouse fixture arms a ``SIGALRM``-based guard around
every test in this directory: if a test exceeds the budget, the alarm
raises in the main thread and pytest reports a failure instead of the
run wedging.  No-op on platforms without ``SIGALRM``.

Every wall-clock bound in these suites — the watchdog, socket
timeouts, thread joins — goes through :func:`scaled`, which multiplies
by the ``REPRO_TEST_TIMEOUT_SCALE`` environment variable (default 1.0).
On a loaded CI box or under an emulator, set e.g.
``REPRO_TEST_TIMEOUT_SCALE=4`` once instead of chasing individual
hard-coded timeouts; the tests' *logic* stays timing-independent.
"""

from __future__ import annotations

import os
import signal

import pytest

#: generous per-test wall-clock budget; any server test finishing
#: normally is orders of magnitude faster
TEST_TIMEOUT_S = 120


def timeout_scale() -> float:
    """The global test-timeout multiplier (``REPRO_TEST_TIMEOUT_SCALE``).

    Read per call, not at import, so a test may also tweak it via
    ``monkeypatch.setenv``.  Invalid or non-positive values fall back
    to 1.0 rather than disabling the watchdogs.
    """
    raw = os.environ.get("REPRO_TEST_TIMEOUT_SCALE", "1")
    try:
        scale = float(raw)
    except ValueError:
        return 1.0
    return scale if scale > 0 else 1.0


def scaled(seconds: float) -> float:
    """*seconds* multiplied by the global timeout scale."""
    return seconds * timeout_scale()


@pytest.fixture(autouse=True)
def _test_timeout_guard():
    if not hasattr(signal, "SIGALRM"):  # pragma: no cover - non-POSIX
        yield
        return

    budget = max(1, int(round(scaled(TEST_TIMEOUT_S))))

    def _expired(signum, frame):  # pragma: no cover - only on hangs
        raise TimeoutError(
            f"test exceeded the {budget}s watchdog (likely deadlock)"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(budget)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)

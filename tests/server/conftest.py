"""Shared fixtures for the server suites.

The stress and chaos tests spin threads and real sockets; a deadlock
there would hang the whole tier-1 run.  Since ``pytest-timeout`` is not
a dependency, an autouse fixture arms a ``SIGALRM``-based guard around
every test in this directory: if a test exceeds the budget, the alarm
raises in the main thread and pytest reports a failure instead of the
run wedging.  No-op on platforms without ``SIGALRM``.
"""

from __future__ import annotations

import signal

import pytest

#: generous per-test wall-clock budget; any server test finishing
#: normally is orders of magnitude faster
TEST_TIMEOUT_S = 120


@pytest.fixture(autouse=True)
def _test_timeout_guard():
    if not hasattr(signal, "SIGALRM"):  # pragma: no cover - non-POSIX
        yield
        return

    def _expired(signum, frame):  # pragma: no cover - only on hangs
        raise TimeoutError(
            f"test exceeded the {TEST_TIMEOUT_S}s watchdog (likely deadlock)"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(TEST_TIMEOUT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)

"""Endpoint-level coverage of the analysis service core.

Drives :class:`AnalysisApp` in-process (no sockets): session lifecycle,
each paper operation, the cache-key/invalDation contract, the error
taxonomy, and the stats surface.
"""

from __future__ import annotations

import json

import pytest

from repro.core.metrics import MetricFlavor
from repro.core.views import ViewKind
from repro.hpcprof import database
from repro.hpcprof.experiment import Experiment
from repro.server import AnalysisApp
from repro.server.sessions import render_snapshot
from repro.sim.workloads import fig1
from repro.viewer.session import ViewerSession


def post(app, path, body=None):
    raw = json.dumps(body).encode() if body is not None else b""
    return app.handle("POST", path, raw)


@pytest.fixture()
def app():
    return AnalysisApp()


@pytest.fixture()
def sid(app):
    status, payload = post(app, "/sessions", {"workload": "fig1"})
    assert status == 201
    return payload["session"]["id"]


# --------------------------------------------------------------------- #
# session lifecycle
# --------------------------------------------------------------------- #
class TestSessions:
    def test_open_from_database_file(self, app, tmp_path):
        path = tmp_path / "fig1.rpdb"
        database.save(Experiment.from_program(fig1.build()), str(path))
        status, payload = post(app, "/sessions", {"database": str(path)})
        assert status == 201
        info = payload["session"]
        assert info["experiment"] == "fig1"
        assert info["scopes"] == 19
        assert info["loaded_views"] == 0  # lazy until first render

    def test_open_missing_database_404(self, app, tmp_path):
        status, payload = post(
            app, "/sessions", {"database": str(tmp_path / "nope.rpdb")}
        )
        assert status == 404
        assert payload["error"]["code"] == "unknown-database"

    def test_open_unknown_workload_404(self, app):
        status, payload = post(app, "/sessions", {"workload": "linpack"})
        assert status == 404
        assert payload["error"]["code"] == "unknown-workload"

    def test_open_needs_exactly_one_source(self, app):
        for body in ({}, {"workload": "fig1", "database": "x.rpdb"}):
            status, payload = post(app, "/sessions", body)
            assert status == 400
            assert payload["error"]["code"] == "bad-session-source"

    def test_list_info_close(self, app, sid):
        status, payload = app.handle("GET", "/sessions")
        assert status == 200
        assert [s["id"] for s in payload["sessions"]] == [sid]
        status, payload = app.handle("GET", f"/sessions/{sid}")
        assert payload["session"]["generation"] == 0
        status, payload = app.handle("DELETE", f"/sessions/{sid}")
        assert (status, payload["closed"]) == (200, sid)
        status, payload = app.handle("GET", f"/sessions/{sid}")
        assert status == 404
        assert payload["error"]["code"] == "unknown-session"

    def test_session_ids_are_distinct(self, app):
        ids = {
            post(app, "/sessions", {"workload": "fig1"})[1]["session"]["id"]
            for _ in range(3)
        }
        assert len(ids) == 3


# --------------------------------------------------------------------- #
# the paper operations
# --------------------------------------------------------------------- #
class TestOperations:
    def test_render_matches_viewer_session(self, app, sid):
        """The served render equals a direct uncached ViewerSession render."""
        status, payload = post(app, f"/sessions/{sid}/render",
                               {"view": "cct", "depth": 3})
        assert status == 200
        fresh = ViewerSession(Experiment.from_program(fig1.build()))
        expected = render_snapshot(fresh, ViewKind.CALLING_CONTEXT, depth=3)
        assert payload["text"] == expected["text"]

    def test_render_all_kinds(self, app, sid):
        for kind in ("cct", "callers", "flat"):
            status, payload = post(app, f"/sessions/{sid}/render",
                                   {"view": kind})
            assert status == 200
            assert payload["view"] in (kind, "calling-context")

    def test_sort_sets_default_column(self, app, sid):
        status, _ = post(app, f"/sessions/{sid}/sort",
                         {"metric": "cycles", "flavor": "exclusive",
                          "descending": False})
        assert status == 200
        _, payload = post(app, f"/sessions/{sid}/render", {"view": "cct"})
        fresh = ViewerSession(Experiment.from_program(fig1.build()))
        expected = render_snapshot(
            fresh, ViewKind.CALLING_CONTEXT, metric="cycles",
            flavor=MetricFlavor.EXCLUSIVE, descending=False,
        )
        assert payload["text"] == expected["text"]

    def test_hotpath(self, app, sid):
        status, payload = post(app, f"/sessions/{sid}/hotpath",
                               {"threshold": 0.5})
        assert status == 200
        assert payload["path"][0] == "m"
        assert payload["hotspot"] == payload["path"][-1]
        assert len(payload["values"]) == len(payload["path"])

    def test_hotpath_bad_threshold(self, app, sid):
        status, payload = post(app, f"/sessions/{sid}/hotpath",
                               {"threshold": 1.5})
        assert status == 400
        assert payload["error"]["code"] == "bad-view-operation"

    def test_render_hot_path_inline(self, app, sid):
        status, payload = post(app, f"/sessions/{sid}/render",
                               {"view": "cct", "hot_path": True})
        assert status == 200
        assert payload["hot_path"]["path"][0] == "m"
        assert "*" in payload["text"]  # flame marker on the rendered rows

    def test_flatten_unflatten(self, app, sid):
        status, payload = post(app, f"/sessions/{sid}/flatten")
        assert (status, payload["flatten_depth"]) == (200, 1)
        _, flat = post(app, f"/sessions/{sid}/render", {"view": "flat"})
        status, payload = post(app, f"/sessions/{sid}/unflatten")
        assert (status, payload["flatten_depth"]) == (200, 0)
        _, unflat = post(app, f"/sessions/{sid}/render", {"view": "flat"})
        assert flat["text"] != unflat["text"]

    def test_derived_metric_appears_in_renders(self, app, sid):
        status, payload = post(app, f"/sessions/{sid}/metrics",
                               {"name": "half", "formula": "$0 / 2"})
        assert status == 201
        assert payload["metric"]["id"] == 1
        _, listing = app.handle("GET", f"/sessions/{sid}/metrics")
        assert [m["name"] for m in listing["metrics"]] == ["cycles", "half"]
        _, rendered = post(app, f"/sessions/{sid}/render", {"view": "cct"})
        assert "half (I)" in rendered["text"]

    def test_derived_metric_bad_formula(self, app, sid):
        status, payload = post(app, f"/sessions/{sid}/metrics",
                               {"name": "bad", "formula": "$0 +"})
        assert status == 400
        assert payload["error"]["code"] == "bad-formula"

    def test_duplicate_metric_400(self, app, sid):
        post(app, f"/sessions/{sid}/metrics", {"name": "d", "formula": "$0"})
        status, payload = post(app, f"/sessions/{sid}/metrics",
                               {"name": "d", "formula": "$0"})
        assert status == 400
        assert payload["error"]["code"] == "bad-metric"

    def test_unknown_metric_404(self, app, sid):
        for path, body in (
            (f"/sessions/{sid}/sort", {"metric": "watts"}),
            (f"/sessions/{sid}/render", {"metric": "watts"}),
            (f"/sessions/{sid}/hotpath", {"metric": "watts"}),
        ):
            status, payload = post(app, path, body)
            assert status == 404
            assert payload["error"]["code"] == "unknown-metric"


# --------------------------------------------------------------------- #
# cache behaviour
# --------------------------------------------------------------------- #
class TestCache:
    def test_repeat_render_hits_cache(self, app, sid):
        body = {"view": "cct", "depth": 2}
        first = post(app, f"/sessions/{sid}/render", body)[1]
        assert app.cache.stats()["hits"] == 0
        second = post(app, f"/sessions/{sid}/render", body)[1]
        assert app.cache.stats()["hits"] == 1
        assert first["text"] == second["text"]

    def test_mutation_invalidates(self, app, sid):
        body = {"view": "cct", "depth": 2}
        post(app, f"/sessions/{sid}/render", body)
        post(app, f"/sessions/{sid}/metrics",
             {"name": "dbl", "formula": "2 * $0"})
        assert app.cache.stats()["entries"] == 0  # eagerly dropped
        payload = post(app, f"/sessions/{sid}/render", body)[1]
        assert "dbl (I)" in payload["text"]  # not the stale pre-mutation render

    def test_distinct_keys_do_not_collide(self, app, sid):
        a = post(app, f"/sessions/{sid}/render", {"view": "cct", "depth": 1})[1]
        b = post(app, f"/sessions/{sid}/render", {"view": "cct", "depth": 3})[1]
        c = post(app, f"/sessions/{sid}/render",
                 {"view": "cct", "depth": 1, "descending": False})[1]
        assert a["text"] != b["text"]
        assert a["text"] != c["text"]

    def test_cache_disabled(self):
        app = AnalysisApp(cache_size=0)
        sid = post(app, "/sessions", {"workload": "fig1"})[1]["session"]["id"]
        body = {"view": "cct", "depth": 2}
        first = post(app, f"/sessions/{sid}/render", body)[1]
        second = post(app, f"/sessions/{sid}/render", body)[1]
        assert first["text"] == second["text"]
        assert app.cache.stats()["hits"] == 0

    def test_close_purges_session_entries(self, app, sid):
        post(app, f"/sessions/{sid}/render", {"view": "cct"})
        assert app.cache.stats()["entries"] == 1
        app.handle("DELETE", f"/sessions/{sid}")
        assert app.cache.stats()["entries"] == 0


# --------------------------------------------------------------------- #
# error taxonomy and stats
# --------------------------------------------------------------------- #
class TestErrorsAndStats:
    def test_unknown_endpoint_404(self, app):
        status, payload = app.handle("GET", "/frobnicate")
        assert status == 404
        assert payload["error"]["code"] == "unknown-endpoint"

    def test_method_not_allowed_405(self, app, sid):
        status, payload = app.handle("DELETE", f"/sessions/{sid}/render")
        assert status == 405
        assert "GET" in payload["error"]["message"]

    def test_bad_field_types_400(self, app, sid):
        cases = [
            ({"view": 7}, "bad-field-type"),
            ({"view": "sideways"}, "bad-view-kind"),
            ({"depth": "three"}, "bad-field-type"),
            ({"depth": -1}, "bad-field-value"),
            ({"hot_path": "yes"}, "bad-field-type"),
            ({"max_rows": 0}, "bad-field-value"),
            ({"flavor": "diagonal"}, "bad-flavor"),
        ]
        for body, code in cases:
            status, payload = post(app, f"/sessions/{sid}/render", body)
            assert status == 400, body
            assert payload["error"]["code"] == code

    def test_missing_required_field(self, app, sid):
        status, payload = post(app, f"/sessions/{sid}/metrics", {"name": "x"})
        assert status == 400
        assert payload["error"]["code"] == "missing-field"

    def test_non_object_body_400(self, app, sid):
        status, payload = app.handle(
            "POST", f"/sessions/{sid}/render", b'["view", "cct"]'
        )
        assert status == 400
        assert payload["error"]["code"] == "bad-request-shape"

    def test_oversized_body_413(self, sid):
        app413 = AnalysisApp(max_body=64)
        status, payload = app413.handle("POST", "/sessions", b"x" * 65)
        assert status == 413
        assert payload["error"]["code"] == "payload-too-large"

    def test_help_listing(self, app):
        status, payload = app.handle("GET", "/")
        assert status == 200
        assert any("/render" in line for line in payload["endpoints"])

    def test_stats_counts_and_latency(self, app, sid):
        post(app, f"/sessions/{sid}/render", {"view": "cct"})
        post(app, f"/sessions/{sid}/render", {"view": "flat"})
        app.handle("GET", "/bogus")
        status, payload = app.handle("GET", "/stats")
        assert status == 200
        by_ep = payload["endpoints"]
        render = by_ep["/sessions/<sid>/render"]
        assert render["count"] == 2
        assert render["latency_ms"]["max"] >= render["latency_ms"]["min"] > 0
        assert by_ep["unmatched"]["errors"] == 1
        # +1: opening the session; the in-flight /stats request is only
        # recorded after its payload is built, so it is not yet counted
        assert payload["requests"]["total"] == 4
        assert payload["cache"]["misses"] == 2

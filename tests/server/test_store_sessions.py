"""Server sessions backed by the out-of-core column store.

An ``.rpstore`` directory opened through the registry must behave like
any other database — render, hot path, metric derivation — and its
memory maps must be dropped when the session is evicted or closed (a
long-lived service must not pin a thousand-rank store's mappings after
the session is gone).
"""

from __future__ import annotations

import pytest

from repro.core.store import StoreExperiment
from repro.hpcprof import database
from repro.hpcprof.experiment import Experiment
from repro.core.views import ViewKind
from repro.errors import NotFound
from repro.server.sessions import SessionRegistry, render_snapshot
from repro.sim.workloads import fig1


@pytest.fixture()
def store_path(tmp_path):
    exp = Experiment.from_program(fig1.build(), nranks=4, seed=3)
    path = str(tmp_path / "fig1.rpstore")
    database.save(exp, path)
    return path


def _mapped(exp: StoreExperiment) -> bool:
    return (exp.store._matrices is not None
            or bool(exp.store._rank_maps)
            or getattr(exp.cct, "_engine", None) is not None)


class TestStoreSessions:
    def test_open_and_render(self, store_path):
        registry = SessionRegistry()
        handle = registry.open_database(store_path)
        exp = handle.session.experiment
        assert isinstance(exp, StoreExperiment)
        snapshot = render_snapshot(handle.session, ViewKind.CALLING_CONTEXT, depth=2)
        assert "Calling Context View" in snapshot["text"]

    def test_close_releases_maps(self, store_path):
        registry = SessionRegistry()
        handle = registry.open_database(store_path)
        exp = handle.session.experiment
        render_snapshot(handle.session, ViewKind.CALLING_CONTEXT, depth=2)
        assert _mapped(exp)
        registry.close(handle.sid)
        assert not _mapped(exp)
        with pytest.raises(NotFound):
            registry.get(handle.sid)

    def test_eviction_releases_maps(self, store_path):
        registry = SessionRegistry(max_sessions=1)
        first = registry.open_database(store_path)
        exp = first.session.experiment
        render_snapshot(first.session, ViewKind.CALLING_CONTEXT, depth=2)
        assert _mapped(exp)
        registry.open_database(store_path)  # LRU-evicts `first`
        assert not _mapped(exp)
        assert registry.evictions == 1

    def test_eviction_notifies_and_releases(self, store_path):
        evicted = []
        registry = SessionRegistry(max_sessions=1,
                                   on_evict=lambda h: evicted.append(h.sid))
        first = registry.open_database(store_path)
        registry.open_database(store_path)
        assert evicted == [first.sid]

    def test_in_memory_sessions_unaffected(self, tmp_path):
        # release hook is a no-op for experiments without release()
        path = str(tmp_path / "fig1.rpdb")
        database.save(Experiment.from_program(fig1.build()), path)
        registry = SessionRegistry()
        handle = registry.open_database(path)
        registry.close(handle.sid)  # must not raise

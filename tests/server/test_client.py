"""Deterministic retry-client behavior against scripted transports."""

from __future__ import annotations

import pytest

from repro.server.client import (
    ClientResponse,
    RetriesExhausted,
    RetryingClient,
    RetryPolicy,
)


def scripted(responses):
    """A transport replaying *responses* (ClientResponse or Exception)."""
    queue = list(responses)
    calls = []

    def transport(method, url, body, timeout):
        calls.append((method, url, body))
        item = queue.pop(0) if queue else queue_exhausted()
        if isinstance(item, Exception):
            raise item
        return item

    def queue_exhausted():
        raise AssertionError("transport called more times than scripted")

    transport.calls = calls
    return transport


def shed(retry_after=None):
    payload = {"error": {"status": 429, "code": "too-many-requests",
                         "message": "shed"}}
    headers = {}
    if retry_after is not None:
        payload["error"]["retry_after"] = retry_after
        headers["Retry-After"] = str(retry_after)
    return ClientResponse(429, payload, headers)


def ok(payload=None):
    return ClientResponse(200, payload or {"fine": True})


def make_client(transport, **policy_kwargs):
    sleeps = []
    client = RetryingClient(
        "http://test",
        policy=RetryPolicy(jitter=0.0, **policy_kwargs),
        transport=transport,
        sleep=sleeps.append,
        rng=lambda: 0.5,
    )
    client.test_sleeps = sleeps
    return client


class TestRetrySchedule:
    def test_success_first_try_no_sleep(self):
        client = make_client(scripted([ok()]))
        assert client.get("/stats").ok
        assert client.test_sleeps == []
        assert client.retries == 0

    def test_exponential_backoff_without_retry_after(self):
        client = make_client(
            scripted([shed(), shed(), shed(), ok()]),
            base_delay=0.1, max_attempts=5,
        )
        assert client.get("/x").ok
        assert client.test_sleeps == [0.1, 0.2, 0.4]
        assert client.retries == 3

    def test_backoff_capped_at_max_delay(self):
        client = make_client(
            scripted([shed()] * 6 + [ok()]),
            base_delay=1.0, max_delay=4.0, max_attempts=8,
        )
        client.get("/x")
        assert client.test_sleeps == [1.0, 2.0, 4.0, 4.0, 4.0, 4.0]

    def test_retry_after_is_a_floor(self):
        """The server's hint wins over a smaller computed backoff."""
        client = make_client(
            scripted([shed(retry_after=3.0), ok()]),
            base_delay=0.1,
        )
        client.get("/x")
        assert client.test_sleeps == [3.0]

    def test_computed_backoff_wins_over_smaller_hint(self):
        client = make_client(
            scripted([shed(retry_after=0.05), shed(retry_after=0.05), ok()]),
            base_delay=1.0,
        )
        client.get("/x")
        assert client.test_sleeps == [1.0, 2.0]

    def test_jitter_spreads_the_schedule(self):
        seq = iter([0.0, 1.0])  # rng extremes: full negative, full positive
        sleeps = []
        client = RetryingClient(
            "http://test",
            policy=RetryPolicy(base_delay=1.0, jitter=0.25, max_attempts=3),
            transport=scripted([shed(), shed(), ok()]),
            sleep=sleeps.append,
            rng=lambda: next(seq),
        )
        client.get("/x")
        assert sleeps == [pytest.approx(0.75), pytest.approx(2.5)]


class TestRetryTaxonomy:
    def test_503_retried(self):
        body = {"error": {"status": 503, "code": "deadline-exceeded",
                          "message": "slow", "retry_after": 0.2}}
        client = make_client(
            scripted([ClientResponse(503, body), ok()]), base_delay=0.1
        )
        assert client.get("/x").ok
        assert client.test_sleeps == [0.2]

    def test_connection_errors_retried(self):
        client = make_client(
            scripted([ConnectionRefusedError("down"), ok()])
        )
        assert client.get("/x").ok
        assert client.retries == 1

    def test_client_errors_not_retried(self):
        """A 404 is the caller's problem; retrying would repeat it."""
        body = {"error": {"status": 404, "code": "unknown-session",
                          "message": "nope"}}
        transport = scripted([ClientResponse(404, body)])
        client = make_client(transport)
        response = client.get("/sessions/sNOPE")
        assert response.status == 404
        assert len(transport.calls) == 1
        assert client.test_sleeps == []

    def test_exhaustion_raises_with_last_response(self):
        client = make_client(
            scripted([shed()] * 3), max_attempts=3, base_delay=0.01
        )
        with pytest.raises(RetriesExhausted) as err:
            client.get("/x")
        assert err.value.attempts == 3
        assert err.value.last_response.status == 429
        assert len(client.test_sleeps) == 2  # no sleep after the last try

    def test_exhaustion_on_transport_errors(self):
        client = make_client(
            scripted([ConnectionError("a"), ConnectionError("b")]),
            max_attempts=2, base_delay=0.01,
        )
        with pytest.raises(RetriesExhausted) as err:
            client.get("/x")
        assert isinstance(err.value.last_error, ConnectionError)


class TestResponseParsing:
    def test_retry_after_header_precedence(self):
        resp = ClientResponse(
            429,
            {"error": {"retry_after": 9.0}},
            {"Retry-After": "2"},
        )
        assert resp.retry_after() == 2.0

    def test_retry_after_payload_fallback(self):
        resp = ClientResponse(429, {"error": {"retry_after": 1.5}}, {})
        assert resp.retry_after() == 1.5

    def test_retry_after_absent(self):
        assert ClientResponse(429, {"error": {}}, {}).retry_after() is None

    def test_bad_header_ignored(self):
        resp = ClientResponse(429, {"error": {}}, {"Retry-After": "soon"})
        assert resp.retry_after() is None


class TestQueryEncoding:
    def test_get_table_query_is_url_encoded(self):
        """Metric names with spaces/parens/& must survive the query
        string; raw interpolation produced malformed request paths."""
        transport = scripted([ok()])
        client = make_client(transport)
        client.get_table(
            "s1", columnar=False,
            metric="GPU time (I)", view="cct", depth=3,
        )
        _method, url, _body = transport.calls[0]
        assert url == (
            "http://test/v1/sessions/s1/table"
            "?depth=3&metric=GPU+time+%28I%29&view=cct"
        )

    def test_get_table_without_params_has_no_query(self):
        transport = scripted([ok()])
        client = make_client(transport)
        client.get_table("s1", columnar=False)
        _method, url, _body = transport.calls[0]
        assert url == "http://test/v1/sessions/s1/table"


class TestMisdirectedRetry:
    def test_421_is_retried_on_a_fresh_connection(self):
        """Pool workers answer 421 when a kept-alive connection switches
        sessions; each retry attempt opens a fresh connection, which the
        pool parent re-routes correctly."""
        body = {"error": {"status": 421, "code": "misrouted",
                          "message": "reconnect"}}
        client = make_client(
            scripted([ClientResponse(421, body), ok()]), base_delay=0.01,
        )
        response = client.get("/v1/sessions/s2/table")
        assert response.status == 200
        assert client.retries == 1

"""Unit tests for the columnar wire format and the table endpoint.

The codec itself (framing, dtype handling, malformed-frame taxonomy),
the ``Accept`` negotiation through the app, JSON/columnar parity on the
served payloads, and cache invalidation of the pre-encoded frame when a
mutation bumps the session generation.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import BadRequest
from repro.server import AnalysisApp
from repro.server.schema import BinaryBody
from repro.server.wire import (
    COLUMNAR_CONTENT_TYPE,
    TableSnapshot,
    accepts_columnar,
    decode_columnar,
    encode_columnar,
)

COLUMNAR_HEADERS = {"Accept": COLUMNAR_CONTENT_TYPE}


def _snapshot(rows: int = 3, metrics: int = 2) -> TableSnapshot:
    return TableSnapshot(
        view="calling-context",
        generation=4,
        names=tuple(f"scope{i}" for i in range(rows)),
        depths=np.arange(rows, dtype=np.int64),
        labels=tuple(f"m{j} (I)" for j in range(metrics)),
        values=np.arange(rows * metrics, dtype=np.float64).reshape(
            rows, metrics
        ) * 0.5,
        truncated=7,
    )


@pytest.fixture
def app() -> AnalysisApp:
    application = AnalysisApp(cache_size=8)
    application.registry.open_workload("fig1", nranks=2, seed=7)
    return application


# --------------------------------------------------------------------- #
# the codec
# --------------------------------------------------------------------- #
class TestCodec:
    def test_round_trip_equals_json_payload(self) -> None:
        snapshot = _snapshot()
        decoded = decode_columnar(encode_columnar(snapshot))
        reference = {k: v for k, v in
                     snapshot.to_json_payload("s1").items() if k != "session"}
        assert decoded == reference

    def test_round_trip_preserves_float_bits(self) -> None:
        """Awkward float64s survive exactly (the JSON path also does:
        ``repr`` round-trips binary64, which is the parity premise)."""
        tricky = np.array(
            [[0.1, 1e-308], [1.7976931348623157e308, -0.0],
             [2.0 ** -52, 1.0 + 2.0 ** -52]],
            dtype=np.float64,
        )
        snapshot = TableSnapshot(
            view="flat", generation=0,
            names=("a", "b", "c"),
            depths=np.zeros(3, dtype=np.int64),
            labels=("x (I)", "x (E)"),
            values=tricky,
        )
        rows = decode_columnar(encode_columnar(snapshot))["rows"]
        for i, row in enumerate(rows):
            for j, cell in enumerate(row[2:]):
                assert cell == tricky[i, j]
                # JSON text round-trip lands on the same bits too
                assert json.loads(json.dumps(cell)) == tricky[i, j]

    def test_empty_table_round_trips(self) -> None:
        snapshot = _snapshot(rows=0)
        decoded = decode_columnar(encode_columnar(snapshot))
        assert decoded["rows"] == []
        assert decoded["row_count"] == 0

    @pytest.mark.parametrize("mangle, reason", [
        (lambda b: b[:3], "truncated"),
        (lambda b: b"XXXX" + b[4:], "magic"),
        (lambda b: b[:4] + b"\xff\xff" + b[6:], "version"),
        (lambda b: b[:-4], "slab"),
        (lambda b: b + b"\x00" * 8, "trailing"),
    ])
    def test_malformed_frames_raise_bad_request(self, mangle, reason) -> None:
        frame = encode_columnar(_snapshot())
        with pytest.raises(BadRequest) as excinfo:
            decode_columnar(mangle(frame))
        assert excinfo.value.code == "bad-columnar-frame", reason

    def test_header_length_past_frame_raises(self) -> None:
        frame = bytearray(encode_columnar(_snapshot()))
        frame[8:12] = (2 ** 31).to_bytes(4, "little")
        with pytest.raises(BadRequest):
            decode_columnar(bytes(frame))

    def test_accept_negotiation_parser(self) -> None:
        assert accepts_columnar(COLUMNAR_CONTENT_TYPE)
        assert accepts_columnar(
            f"application/json;q=0.5, {COLUMNAR_CONTENT_TYPE};q=0.9"
        )
        assert accepts_columnar(COLUMNAR_CONTENT_TYPE.upper())
        assert not accepts_columnar(None)
        assert not accepts_columnar("")
        assert not accepts_columnar("application/json, text/html")
        assert not accepts_columnar("application/x-repro-columnar-v9")


# --------------------------------------------------------------------- #
# the table endpoint
# --------------------------------------------------------------------- #
class TestTableEndpoint:
    def test_json_is_the_default(self, app: AnalysisApp) -> None:
        status, payload, _headers = app.handle_full(
            "GET", "/v1/sessions/s1/table?view=cct&depth=3"
        )
        assert status == 200
        assert isinstance(payload, dict)
        assert payload["session"] == "s1"
        assert payload["row_count"] == len(payload["rows"])
        assert [c["name"] for c in payload["columns"][:2]] == [
            "scope", "depth"
        ]

    def test_columnar_negotiated_via_accept(self, app: AnalysisApp) -> None:
        status, payload, _headers = app.handle_full(
            "GET", "/v1/sessions/s1/table?view=cct&depth=3",
            request_headers=COLUMNAR_HEADERS,
        )
        assert status == 200
        assert isinstance(payload, BinaryBody)
        assert payload.content_type == COLUMNAR_CONTENT_TYPE

    @pytest.mark.parametrize("view", ["cct", "callers", "flat"])
    def test_columnar_equals_json_per_view(self, app: AnalysisApp,
                                           view: str) -> None:
        path = f"/v1/sessions/s1/table?view={view}&depth=4&max_rows=500"
        _s, as_json, _h = app.handle_full("GET", path)
        _s, as_cols, _h = app.handle_full(
            "GET", path, request_headers=COLUMNAR_HEADERS
        )
        reference = {k: v for k, v in as_json.items() if k != "session"}
        assert decode_columnar(as_cols.data) == reference

    def test_accept_json_list_still_gets_json(self, app: AnalysisApp) -> None:
        status, payload, _h = app.handle_full(
            "GET", "/v1/sessions/s1/table",
            request_headers={"Accept": "application/json, text/html"},
        )
        assert status == 200
        assert isinstance(payload, dict)

    def test_mutation_invalidates_cached_frame(self,
                                               app: AnalysisApp) -> None:
        """Deriving a metric bumps the generation: the re-served frame
        reflects the new column set, not the cached pre-mutation bytes."""
        path = "/v1/sessions/s1/table?view=cct&depth=2"
        _s, before, _h = app.handle_full(
            "GET", path, request_headers=COLUMNAR_HEADERS
        )
        decoded_before = decode_columnar(before.data)

        status, _payload, _h = app.handle_full(
            "POST", "/v1/sessions/s1/metrics",
            json.dumps({"name": "work2", "formula": "$0 * 2"}).encode(),
        )
        assert status == 201

        _s, after, _h = app.handle_full(
            "GET", path, request_headers=COLUMNAR_HEADERS
        )
        decoded_after = decode_columnar(after.data)
        assert decoded_after["generation"] > decoded_before["generation"]
        before_cols = {c["name"] for c in decoded_before["columns"]}
        after_cols = {c["name"] for c in decoded_after["columns"]}
        assert "work2 (I)" in after_cols - before_cols

    def test_truncation_is_reported(self, app: AnalysisApp) -> None:
        _s, full, _h = app.handle_full(
            "GET", "/v1/sessions/s1/table?view=cct&depth=6&max_rows=10000"
        )
        _s, capped, _h = app.handle_full(
            "GET", "/v1/sessions/s1/table?view=cct&depth=6&max_rows=3"
        )
        assert capped["row_count"] == 3
        assert capped["truncated"] == full["row_count"] - 3
        assert capped["rows"] == full["rows"][:3]

    def test_in_process_handle_wraps_binary(self, app: AnalysisApp) -> None:
        """The headerless ``handle`` surface still returns JSON-safe
        payloads: binary frames arrive base64-wrapped."""
        status, payload = app.handle(
            "GET", "/v1/sessions/s1/table",
            request_headers=COLUMNAR_HEADERS,
        )
        assert status == 200
        assert payload["content_type"] == COLUMNAR_CONTENT_TYPE
        import base64

        frame = base64.b64decode(payload["base64"])
        assert decode_columnar(frame)["row_count"] > 0

    def test_unknown_session_is_structured(self, app: AnalysisApp) -> None:
        status, payload, _h = app.handle_full(
            "GET", "/v1/sessions/nope/table",
            request_headers=COLUMNAR_HEADERS,
        )
        assert status == 404
        assert payload["error"]["code"] == "unknown-session"
        assert payload["error"]["trace_id"]

    def test_bad_view_is_structured(self, app: AnalysisApp) -> None:
        status, payload, _h = app.handle_full(
            "GET", "/v1/sessions/s1/table?view=bogus"
        )
        assert status == 400
        assert payload["error"]["code"] == "bad-view-kind"

"""``/v1/trace`` endpoint tests: flame slabs, idleness series, columnar
negotiation, chunk-pruning visibility, and the structured error surface."""

from __future__ import annotations

import base64
import json

import pytest

from repro.server import AnalysisApp
from repro.server.wire import COLUMNAR_CONTENT_TYPE, decode_columnar

_ERROR_FIELDS = {"status", "code", "message", "retry_after", "trace_id"}


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory) -> str:
    from repro.sim.spmd import trace_spmd
    from repro.sim.workloads import fig1
    from repro.trace import create_trace_store

    traces = trace_spmd(fig1.build(), nranks=2, seed=7, trace_slices=3,
                        name="ep-trace")
    path = str(tmp_path_factory.mktemp("trace") / "t.rpstore")
    span = traces.t_end - traces.t_begin
    create_trace_store(traces, path,
                       chunk_duration=max(span / 5, 1e-6)).close()
    return path


@pytest.fixture()
def app(tmp_path):
    app = AnalysisApp(corpus_root=str(tmp_path / "corpus"))
    yield app
    app.close()


def call(app, body, headers=None):
    raw = json.dumps(body).encode()
    return app.handle("POST", "/v1/trace", raw,
                      request_headers=headers or {})


def assert_error(out, status, code):
    http, payload = out
    assert http == status
    assert _ERROR_FIELDS - {"retry_after"} <= set(payload["error"])
    assert payload["error"]["code"] == code


def test_flame_view_json(app, trace_path):
    status, out = call(app, {"path": trace_path, "rank": 0})
    assert status == 200
    assert out["path"] == trace_path
    assert out["span_count"] == len(out["rows"])
    assert out["labels"][:2] == ["begin", "end"]
    assert out["chunks_total"] >= 2
    assert out["chunks_touched"] == out["chunks_total"]  # whole trace


def test_flame_view_windowed_prunes_chunks(app, trace_path):
    whole_status, whole = call(app, {"path": trace_path})
    t0 = 0.25 * 9.0
    status, out = call(app, {"path": trace_path, "t0": t0,
                             "t1": t0 + 0.5})
    assert status == 200
    assert out["chunks_touched"] < out["chunks_total"]
    assert out["span_count"] <= whole["span_count"]


def test_flame_view_columnar_negotiation(app, trace_path):
    body = {"path": trace_path, "rank": 1}
    _status, js = call(app, body)
    status, out = call(app, body,
                       headers={"accept": COLUMNAR_CONTENT_TYPE})
    assert status == 200
    assert out["content_type"] == COLUMNAR_CONTENT_TYPE
    decoded = decode_columnar(base64.b64decode(out["base64"]))
    assert decoded["rows"] == js["rows"]
    assert decoded["view"] == "trace-flame"
    names = [c["name"] for c in decoded["columns"]]
    assert set(js["labels"]) <= set(names)


def test_series_view(app, trace_path):
    status, out = call(app, {"path": trace_path, "view": "series",
                             "bins": 4})
    assert status == 200
    assert out["bins"] == 4
    assert len(out["idleness"]) == 4
    assert out["nranks"] == 2
    assert out["chunks_total"] >= 2


def test_series_view_via_get(app, trace_path):
    status, out = app.handle(
        "GET",
        f"/v1/trace?path={trace_path}&view=series&bins=2", b"")
    assert status == 200
    assert out["bins"] == 2


def test_unknown_trace_404(app, tmp_path):
    out = call(app, {"path": str(tmp_path / "nope")})
    assert_error(out, 404, "unknown-trace")


def test_unknown_metric_404(app, trace_path):
    out = call(app, {"path": trace_path, "metric": "nope"})
    assert_error(out, 404, "unknown-metric")


def test_bad_view_400(app, trace_path):
    out = call(app, {"path": trace_path, "view": "pie"})
    assert_error(out, 400, "bad-trace-view")


def test_rank_out_of_range_400(app, trace_path):
    out = call(app, {"path": trace_path, "rank": 99})
    assert_error(out, 400, "trace-error")


def test_missing_path_400(app):
    out = call(app, {"rank": 0})
    assert_error(out, 400, "missing-field")


def test_corrupt_store_is_structured(app, trace_path, tmp_path):
    import os
    import shutil

    broken = str(tmp_path / "broken.rpstore")
    shutil.copytree(trace_path, broken)
    with open(os.path.join(broken, "manifest.json"), "w") as fh:
        fh.write("{not json")
    status, payload = call(app, {"path": broken})
    assert status in (400, 422, 500, 409)
    assert payload["error"]["code"] == "trace-corrupt"


def test_trace_endpoint_is_declared():
    from repro.server.schema import ENDPOINTS

    trace = next(e for e in ENDPOINTS if e.path == "/trace")
    assert sorted(op.method for op in trace.ops) == ["GET", "POST"]
    errors = {code for op in trace.ops for code in op.errors}
    assert {"unknown-trace", "trace-corrupt", "bad-trace-view"} <= errors

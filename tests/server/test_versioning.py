"""The /v1 surface and its deprecated unversioned aliases.

The compatibility promise under test: every unversioned path is an
alias of its ``/v1`` counterpart — same handler, same cache, same
counters, **byte-identical body** — distinguished only by the
``Deprecation``/``Link`` response headers and a one-time log warning.

The equivalence is checked by driving the *same* request scenario
(covering every endpoint in the registry) through two identically
built apps, one speaking alias paths and one speaking ``/v1``, and
comparing every response byte for byte.  Time-dependent monitoring
payloads (stats/healthz latency and uptime numbers) are compared
structurally instead.
"""

from __future__ import annotations

import json
import logging
import socket
import threading

import pytest

from repro.server.app import AnalysisApp
from repro.server.http import build_server
from repro.server.schema import ENDPOINTS, RawBody
from tests.server.conftest import scaled

#: one scenario touching every non-monitoring endpoint, in a
#: cache-and-generation-sensitive order; {sid} is substituted after the
#: open call (deterministically "s1" on a fresh app)
SCENARIO = [
    ("GET", "/", None),
    ("GET", "/sessions", None),
    ("POST", "/sessions", {"workload": "fig1"}),
    ("GET", "/sessions/{sid}", None),
    ("GET", "/sessions/{sid}/metrics", None),
    ("POST", "/sessions/{sid}/metrics",
     {"name": "cpi", "formula": "$0 / $1", "unit": "cyc/ins"}),
    ("POST", "/sessions/{sid}/sort",
     {"metric": "cycles", "flavor": "exclusive", "descending": True}),
    ("GET", "/sessions/{sid}/hotpath", None),
    ("POST", "/sessions/{sid}/hotpath", {"view": "callers"}),
    ("GET", "/sessions/{sid}/render?view=flat&depth=2", None),
    ("POST", "/sessions/{sid}/render",
     {"view": "cct", "hot_path": True, "max_rows": 30}),
    ("GET", "/sessions/{sid}/table?view=callers&depth=2", None),
    ("POST", "/sessions/{sid}/table",
     {"view": "cct", "depth": 3, "max_rows": 40}),
    ("POST", "/sessions/{sid}/flatten", None),
    ("POST", "/sessions/{sid}/unflatten", None),
    # call-path queries: session mode on both verbs, plus a corpus-mode
    # attempt (no --corpus here, so a structured 404 that must alias)
    ("POST", "/query",
     {"session": "s1", "query": {"pattern": "** / *", "limit": 5}}),
    ("GET", '/query?session=s1&query={{"pattern": "m"}}', None),
    ("POST", "/query", {"tenant": "t", "diagnose": True}),
    # stateless ensemble surface: a self-diff of the open session is
    # deterministic (all-zero rows, no findings) and alias-identical
    ("POST", "/diff", {"sessions": ["s1", "s1"], "depth": 1}),
    ("GET", '/diff?sessions=["s1","s1"]&max_rows=5', None),
    # trace views: these apps have no trace store on disk at this
    # path, so both verbs answer the same structured 404 — which must
    # alias identically
    ("POST", "/trace", {"path": "no-such.rpstore", "view": "flame"}),
    ("GET", "/trace?path=no-such.rpstore&view=series", None),
    # error paths must alias identically too (modulo the trace id)
    ("GET", "/ensemble", None),
    ("POST", "/ensemble", {"databases": ["solo"]}),
    # corpus endpoints: these apps run without --corpus, so every call
    # answers the same structured 404 — which must alias identically
    ("GET", "/corpus", None),
    ("GET", "/corpus/{tenant}/profiles", None),
    ("POST", "/corpus/{tenant}/profiles", {"name": "x", "data": "AA=="}),
    ("GET", "/corpus/{tenant}/profiles/{pid}", None),
    ("POST", "/corpus/{tenant}/profiles/{pid}/open", None),
    ("POST", "/corpus/{tenant}/compact", None),
    ("GET", "/corpus/{tenant}/policy", None),
    ("POST", "/corpus/{tenant}/policy", {"max_profiles": 1}),
    ("DELETE", "/corpus/{tenant}/profiles/{pid}", None),
    ("GET", "/sessions/nope", None),
    ("POST", "/sessions/{sid}/render", {"view": "bogus"}),
    ("PUT", "/sessions/{sid}/render", None),
    ("GET", "/definitely/not/an/endpoint", None),
    ("DELETE", "/sessions/{sid}", None),
]


def drive(app: AnalysisApp, versioned: bool):
    """Run SCENARIO against *app*; returns [(status, canonical body)]."""
    out = []
    sid = "s?"
    for method, path, body in SCENARIO:
        path = path.format(sid=sid, tenant="t", pid="p000001")
        if versioned:
            path = "/v1" + path
        raw = json.dumps(body).encode() if body is not None else b""
        status, payload = app.handle(method, path, raw)
        if isinstance(payload.get("error"), dict):
            # trace ids are per-request by design; equivalence is
            # everything else
            payload["error"].pop("trace_id", None)
        out.append((status, json.dumps(payload, sort_keys=True)))
        if path.endswith("/sessions") and method == "POST":
            sid = payload["session"]["id"]
    return out


class TestAliasEquivalence:
    def test_scenario_byte_identical(self):
        alias = drive(AnalysisApp(), versioned=False)
        versioned = drive(AnalysisApp(), versioned=True)
        for (step, a, v) in zip(SCENARIO, alias, versioned):
            assert a == v, f"alias and /v1 responses differ at {step[:2]}"

    def test_registry_coverage(self):
        """SCENARIO exercises every (method, path) in the registry except
        the three monitoring endpoints tested structurally below."""
        covered = set()
        for method, path, _ in SCENARIO:
            covered.add((method, path.split("?")[0].replace("s1", "<sid>")))
        for endpoint in ENDPOINTS:
            if endpoint.path in ("/healthz", "/stats", "/metrics"):
                continue
            for op in endpoint.ops:
                pattern = (
                    endpoint.path.replace("<sid>", "{sid}")
                    .replace("<tenant>", "{tenant}")
                    .replace("<pid>", "{pid}")
                ) or "/"
                assert (op.method, pattern) in covered, (
                    f"{op.method} {endpoint.path} not covered by SCENARIO"
                )

    def test_monitoring_endpoints_same_shape(self):
        app = AnalysisApp()
        app.handle("POST", "/v1/sessions", b'{"workload": "fig1"}')
        for path in ("/healthz", "/stats"):
            s1, p1 = app.handle("GET", path)
            s2, p2 = app.handle("GET", "/v1" + path)
            assert (s1, s2) == (200, 200)
            assert set(p1) == set(p2)

    def test_prometheus_alias(self):
        app = AnalysisApp()
        s1, p1, h1 = app.handle_full("GET", "/metrics")
        s2, p2, h2 = app.handle_full("GET", "/v1/metrics")
        assert (s1, s2) == (200, 200)
        assert isinstance(p1, RawBody) and isinstance(p2, RawBody)
        assert p1.content_type == p2.content_type
        assert p1.content_type.startswith("text/plain; version=0.0.4")
        assert h1["Deprecation"] == "true" and "Deprecation" not in h2


class TestDeprecationSignals:
    def test_alias_headers(self):
        app = AnalysisApp()
        status, _payload, headers = app.handle_full("GET", "/sessions")
        assert status == 200
        assert headers["Deprecation"] == "true"
        assert headers["Link"] == '</v1/sessions>; rel="successor-version"'

    def test_versioned_path_clean(self):
        app = AnalysisApp()
        status, _payload, headers = app.handle_full("GET", "/v1/sessions")
        assert status == 200
        assert "Deprecation" not in headers and "Link" not in headers
        assert headers["X-Trace-Id"]

    def test_warning_logged_once_per_endpoint(self, caplog):
        app = AnalysisApp()
        with caplog.at_level(logging.WARNING, logger="repro.server"):
            for _ in range(3):
                app.handle("GET", "/sessions")
            app.handle("GET", "/healthz")
            app.handle("GET", "/v1/sessions")
        warned = [r for r in caplog.records if "deprecated" in r.message]
        assert len(warned) == 2  # one per aliased endpoint, not per request

    def test_trace_id_header_matches_error_payload(self):
        app = AnalysisApp()
        status, payload, headers = app.handle_full("GET", "/v1/sessions/nope")
        assert status == 404
        assert payload["error"]["trace_id"] == headers["X-Trace-Id"]


class TestOverHttp:
    """The headers and raw body must survive the real HTTP shell."""

    @pytest.fixture()
    def server(self):
        srv = build_server(workload="fig1")
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            yield srv
        finally:
            srv.shutdown()
            srv.server_close()
            thread.join(timeout=scaled(10))

    def _get(self, server, path):
        host, port = server.server_address[:2]
        with socket.create_connection((host, port), timeout=scaled(10)) as sock:
            sock.settimeout(scaled(10))
            sock.sendall(
                f"GET {path} HTTP/1.1\r\nHost: t\r\n"
                "Connection: close\r\n\r\n".encode()
            )
            buf = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                buf += chunk
        head, _, body = buf.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split()[1])
        headers = {}
        for line in lines[1:]:
            key, _, value = line.partition(":")
            headers[key.strip().lower()] = value.strip()
        return status, headers, body

    def test_alias_headers_and_body_equivalence(self, server):
        s1, h1, b1 = self._get(server, "/sessions")
        s2, h2, b2 = self._get(server, "/v1/sessions")
        assert (s1, s2) == (200, 200)
        assert b1 == b2
        assert h1["deprecation"] == "true"
        assert h1["link"] == '</v1/sessions>; rel="successor-version"'
        assert "deprecation" not in h2
        assert h1["x-trace-id"] != h2["x-trace-id"]

    def test_metrics_prometheus_over_http(self, server):
        self._get(server, "/v1/sessions")  # record at least one request
        status, headers, body = self._get(server, "/v1/metrics")
        assert status == 200
        assert headers["content-type"].startswith("text/plain; version=0.0.4")
        assert body.startswith(b"# HELP repro_server_requests_total")
        assert b"repro_server_request_duration_seconds_bucket" in body

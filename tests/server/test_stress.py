"""Concurrency stress: many clients, one server, shared + private state.

The battery the tentpole asks for: N client threads fire mixed reads
and mutations over real sockets at one ``ThreadingHTTPServer``; the
assertions are

* no deadlock / no hang (every request completes within its timeout);
* no cross-session state bleed — each thread's private session ends up
  with exactly the derived metrics *it* defined, and the shared
  read-only session's metric table never changes;
* ``/stats`` counters sum to exactly the number of requests issued;
* every response to a well-formed request is a 2xx with the documented
  shape — concurrency never surfaces as a 4xx/5xx.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.server import build_server
from tests.server.conftest import scaled

N_THREADS = 12
REQUESTS_PER_THREAD = 25
TIMEOUT = scaled(30)


@pytest.fixture()
def server():
    srv = build_server(workload="fig1", port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=scaled(10))


def request(server, method, path, body=None):
    host, port = server.server_address[:2]
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        f"http://{host}:{port}{path}", data=data, method=method
    )
    try:
        with urllib.request.urlopen(req, timeout=TIMEOUT) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def test_stress_mixed_readers_and_mutators(server):
    shared_sid = "s1"  # the preloaded fig1 workload session
    failures: list[str] = []
    counts = [0] * N_THREADS
    barrier = threading.Barrier(N_THREADS)

    def client(tid: int) -> None:
        def call(method, path, body=None, want=(200, 201)):
            counts[tid] += 1
            status, payload = request(server, method, path, body)
            if status not in want:
                failures.append(
                    f"t{tid}: {method} {path} -> {status}: {payload}"
                )
            return payload

        # a private session per thread, mutated freely
        private = call("POST", "/sessions",
                       {"workload": "fig1"})["session"]["id"]
        barrier.wait()
        for i in range(REQUESTS_PER_THREAD):
            op = i % 5
            if op == 0:  # cached shared read
                call("POST", f"/sessions/{shared_sid}/render",
                     {"view": "cct", "depth": 2})
            elif op == 1:  # shared hot path
                call("GET", f"/sessions/{shared_sid}/hotpath")
            elif op == 2:  # private mutation: derived metric
                call("POST", f"/sessions/{private}/metrics",
                     {"name": f"d{tid}_{i}", "formula": "2 * $0"})
            elif op == 3:  # private mutation: flatten, then render it
                call("POST", f"/sessions/{private}/flatten")
                call("POST", f"/sessions/{private}/render", {"view": "flat"})
            else:  # private sort + render
                call("POST", f"/sessions/{private}/sort",
                     {"metric": "cycles", "descending": bool(i % 2)})
                call("POST", f"/sessions/{private}/render", {"view": "cct"})

        # ---- no cross-session bleed ----------------------------------- #
        mine = call("GET", f"/sessions/{private}/metrics")["metrics"]
        derived = [m["name"] for m in mine if m["kind"] == "derived"]
        expected = [f"d{tid}_{i}" for i in range(REQUESTS_PER_THREAD)
                    if i % 5 == 2]
        if derived != expected:
            failures.append(f"t{tid}: bleed into private session: {derived}")
        shared = call("GET", f"/sessions/{shared_sid}/metrics")["metrics"]
        if [m["name"] for m in shared] != ["cycles"]:
            failures.append(f"t{tid}: shared session mutated: {shared}")

    threads = [threading.Thread(target=client, args=(t,))
               for t in range(N_THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=TIMEOUT * 4)
    hung = [i for i, t in enumerate(threads) if t.is_alive()]
    assert not hung, f"client threads hung (deadlock?): {hung}"
    assert not failures, "\n".join(failures[:20])

    # ---- /stats accounting ------------------------------------------- #
    status, stats = request(server, "GET", "/stats")
    assert status == 200
    total_issued = sum(counts)
    assert stats["requests"]["total"] == total_issued
    per_endpoint = sum(e["count"] for e in stats["endpoints"].values())
    assert per_endpoint == total_issued
    assert stats["requests"]["errors"] == 0
    assert stats["sessions"] == 1 + N_THREADS
    # the shared render is identical every time, so the cache must have
    # served the overwhelming majority of the shared reads
    assert stats["cache"]["hits"] >= N_THREADS * (REQUESTS_PER_THREAD // 5) - 2


def test_shared_session_serialized_mutations_stay_consistent(server):
    """Hammer one shared session with flatten/unflatten + renders.

    Interleaving is arbitrary, but the invariant holds: every response
    succeeds, and the final flatten depth equals flattens minus
    unflattens actually applied (clamped at zero by the view)."""
    sid = "s1"
    errors: list[str] = []
    barrier = threading.Barrier(8)

    def client(tid: int) -> None:
        barrier.wait()
        for i in range(10):
            if tid % 2 == 0:
                op = "flatten" if i % 2 == 0 else "unflatten"
                status, payload = request(server, "POST",
                                          f"/sessions/{sid}/{op}")
                if status != 200 or payload["flatten_depth"] < 0:
                    errors.append(f"t{tid}: {op} -> {status} {payload}")
            else:
                status, payload = request(server, "POST",
                                          f"/sessions/{sid}/render",
                                          {"view": "flat", "depth": 1})
                if status != 200 or "Flat View" not in payload["text"]:
                    errors.append(f"t{tid}: render -> {status}")

    threads = [threading.Thread(target=client, args=(t,)) for t in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=TIMEOUT * 2)
    assert not any(t.is_alive() for t in threads), "hung"
    assert not errors, "\n".join(errors[:10])
    # balanced flatten/unflatten pairs: depth returns to 0
    status, payload = request(server, "GET", f"/sessions/{sid}")
    assert status == 200
    assert payload["session"]["flatten_depth"] == 0

"""``/v1/query`` endpoint tests: session mode, corpus modes, columnar
negotiation, structured errors, and the sid-claim routing contract."""

from __future__ import annotations

import base64
import json

import pytest

from repro.hpcprof import binio
from repro.hpcprof.experiment import Experiment
from repro.server import AnalysisApp
from repro.server.wire import COLUMNAR_CONTENT_TYPE, decode_columnar
from repro.sim.workloads import fig1

_ERROR_FIELDS = {"status", "code", "message", "retry_after", "trace_id"}


@pytest.fixture(scope="module")
def payload() -> bytes:
    return binio.dumps_binary(Experiment.from_program(fig1.build()))


@pytest.fixture()
def app(tmp_path):
    app = AnalysisApp(corpus_root=str(tmp_path / "corpus"))
    yield app
    app.close()


def call(app, method, path, body=None):
    raw = json.dumps(body).encode() if body is not None else b""
    return app.handle(method, path, raw)


def upload(app, tenant, payload, name, **extra):
    body = {"name": name, "data": base64.b64encode(payload).decode()}
    body.update(extra)
    status, out = call(app, "POST", f"/v1/corpus/{tenant}/profiles", body)
    assert status == 201, out
    return out["profile"]


def open_session(app):
    status, out = call(app, "POST", "/v1/sessions", {"workload": "fig1"})
    assert status == 201
    return out["session"]["id"]


def assert_error(status, payload, code):
    assert status >= 400
    error = payload["error"]
    assert error["code"] == code
    assert set(error) <= _ERROR_FIELDS and error["trace_id"]


class TestSessionMode:
    def test_post_query(self, app):
        sid = open_session(app)
        status, out = call(app, "POST", "/v1/query", {
            "session": sid,
            "query": {"pattern": "m / ** / *", "sort": {"metric": "cycles"},
                      "limit": 5},
        })
        assert status == 200
        assert out["session"] == sid
        assert out["row_count"] == 5
        assert len(out["rows"]) == 5
        assert "cycles (I)" in [c["name"] for c in out["columns"]]

    def test_bare_pattern_string(self, app):
        sid = open_session(app)
        status, out = call(app, "POST", "/v1/query",
                           {"session": sid, "query": "m"})
        assert status == 200
        assert [r[0] for r in out["rows"]] == ["m"]

    def test_get_with_query_params(self, app):
        sid = open_session(app)
        spec = json.dumps({"pattern": "m"})
        status, out = call(app, "GET",
                           f"/v1/query?session={sid}&query={spec}")
        assert status == 200
        assert [r[0] for r in out["rows"]] == ["m"]

    def test_columnar_negotiation_matches_json(self, app):
        sid = open_session(app)
        body = {"session": sid, "query": {"pattern": "**/*"}}
        raw = json.dumps(body).encode()
        _s, as_json, _h = app.handle_full("POST", "/v1/query", raw)
        status, blob, _h2 = app.handle_full(
            "POST", "/v1/query", raw,
            request_headers={"Accept": COLUMNAR_CONTENT_TYPE},
        )
        assert status == 200
        assert blob.content_type == COLUMNAR_CONTENT_TYPE
        decoded = decode_columnar(blob.data)
        assert decoded["rows"] == as_json["rows"]

    def test_unknown_session(self, app):
        status, out = call(app, "POST", "/v1/query",
                           {"session": "nope", "query": "m"})
        assert_error(status, out, "unknown-session")

    def test_bad_pattern_is_bad_query(self, app):
        sid = open_session(app)
        status, out = call(app, "POST", "/v1/query",
                           {"session": sid, "query": "m //"})
        assert_error(status, out, "bad-query")

    def test_unknown_metric(self, app):
        sid = open_session(app)
        status, out = call(app, "POST", "/v1/query", {
            "session": sid,
            "query": {"pattern": "m", "sort": {"metric": "bogus"}},
        })
        assert_error(status, out, "unknown-metric")

    def test_session_and_tenant_conflict(self, app):
        sid = open_session(app)
        status, out = call(app, "POST", "/v1/query",
                           {"session": sid, "tenant": "t", "query": "m"})
        assert_error(status, out, "bad-query")

    def test_query_required(self, app):
        sid = open_session(app)
        status, out = call(app, "POST", "/v1/query", {"session": sid})
        assert_error(status, out, "bad-query")


class TestCorpusModes:
    def test_single_profile(self, app, payload):
        profile = upload(app, "t", payload, "run.rpdb")
        status, out = call(app, "POST", "/v1/query", {
            "tenant": "t", "profile": profile["id"], "query": "m",
        })
        assert status == 200
        assert out["tenant"] == "t"
        assert out["profile"] == profile["id"]
        assert [r[0] for r in out["rows"]] == ["m"]

    def test_sweep_over_tenant(self, app, payload):
        for i in range(3):
            upload(app, "t", payload, f"r{i}.rpdb", group="nightly")
        status, out = call(app, "POST", "/v1/query",
                           {"tenant": "t", "query": "m"})
        assert status == 200
        assert len(out["profiles"]) == 3
        for table in out["profiles"]:
            assert table["group"] == "nightly"
            assert [r[0] for r in table["rows"]] == ["m"]

    def test_diagnose(self, app, payload):
        upload(app, "t", payload, "r0.rpdb", group="nightly")
        upload(app, "t", payload, "r1.rpdb", group="nightly")
        status, out = call(app, "POST", "/v1/query",
                           {"tenant": "t", "diagnose": True})
        assert status == 200
        assert out["tenant"] == "t"
        assert out["metric"] == "cycles"
        assert out["profiles_examined"] == 2
        assert out["findings"] == []

    def test_unknown_profile(self, app, payload):
        upload(app, "t", payload, "run.rpdb")
        status, out = call(app, "POST", "/v1/query", {
            "tenant": "t", "profile": "p999999", "query": "m",
        })
        assert_error(status, out, "unknown-profile")

    def test_no_corpus_configured(self):
        app = AnalysisApp()
        try:
            status, out = call(app, "POST", "/v1/query",
                               {"tenant": "t", "query": "m"})
            assert_error(status, out, "no-corpus")
        finally:
            app.close()

    def test_diagnose_requires_tenant(self, app):
        sid = open_session(app)
        status, out = call(app, "POST", "/v1/query",
                           {"session": sid, "diagnose": True})
        assert_error(status, out, "bad-query")


class TestSidClaimRouting:
    """Corpus open-by-id can carry ``?sid=`` so the pool parent routes
    the open to the worker that will own the session by affinity."""

    def test_open_with_requested_sid(self, app, payload):
        profile = upload(app, "t", payload, "run.rpdb")
        status, out = call(
            app, "POST",
            f"/v1/corpus/t/profiles/{profile['id']}/open?sid=client-1", {},
        )
        assert status == 201
        assert out["session"]["id"] == "client-1"
        status, _ = call(app, "GET", "/v1/sessions/client-1")
        assert status == 200

    def test_sid_collision_conflicts(self, app, payload):
        profile = upload(app, "t", payload, "run.rpdb")
        path = f"/v1/corpus/t/profiles/{profile['id']}/open?sid=dup"
        status, _ = call(app, "POST", path, {})
        assert status == 201
        status, out = call(app, "POST", path, {})
        assert_error(status, out, "session-exists")

    def test_invalid_sid_rejected(self, app, payload):
        profile = upload(app, "t", payload, "run.rpdb")
        status, out = call(
            app, "POST",
            f"/v1/corpus/t/profiles/{profile['id']}/open?sid=bad%20sid", {},
        )
        assert_error(status, out, "bad-sid")

"""Worker-pool lifecycle: routing, aggregation, crash recovery, chaos.

These tests fork real worker processes and talk to them over real
sockets.  Every wall-clock bound goes through :func:`conftest.scaled`
so a loaded CI box can stretch them uniformly via
``REPRO_TEST_TIMEOUT_SCALE``.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import socket
import threading
import time
import zlib

import pytest

from repro.errors import NotFound
from repro.server.client import RetryingClient, RetryPolicy
from repro.server.pool import (
    ServerPool,
    _ctrl_recv,
    _ctrl_send,
    merge_stats_payloads,
)
from repro.server.sessions import SessionRegistry
from repro.server.wire import COLUMNAR_CONTENT_TYPE, decode_columnar

from .conftest import scaled

POOL_CONFIG = {"workload": "fig1", "nranks": 2, "seed": 7,
               "max_body": 1 << 20}


@pytest.fixture
def pool():
    instance = ServerPool(workers=2, config=dict(POOL_CONFIG)).start()
    try:
        yield instance
    finally:
        instance.close()


def _get(pool: ServerPool, path: str, headers: dict | None = None,
         method: str = "GET", body: bytes | None = None):
    host, port = pool.address
    conn = http.client.HTTPConnection(host, port, timeout=scaled(30))
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        data = response.read()
        content_type = response.getheader("Content-Type", "")
        return response.status, content_type, data
    finally:
        conn.close()


def _get_json(pool: ServerPool, path: str, **kwargs) -> tuple[int, dict]:
    status, _ctype, data = _get(pool, path, **kwargs)
    return status, json.loads(data)


def _wait_for(predicate, timeout_s: float, message: str):
    deadline = time.monotonic() + scaled(timeout_s)
    while time.monotonic() < deadline:
        result = predicate()
        if result:
            return result
        time.sleep(0.05)
    pytest.fail(f"timed out waiting for {message}")


# --------------------------------------------------------------------- #
# serving both encodings through the pool
# --------------------------------------------------------------------- #
class TestPoolServing:
    def test_serves_json_and_columnar(self, pool: ServerPool) -> None:
        status, ctype, body = _get(
            pool, "/v1/sessions/s1/table?view=cct&depth=3"
        )
        assert (status, ctype) == (200, "application/json")
        as_json = json.loads(body)

        status, ctype, frame = _get(
            pool, "/v1/sessions/s1/table?view=cct&depth=3",
            headers={"Accept": COLUMNAR_CONTENT_TYPE},
        )
        assert (status, ctype) == (200, COLUMNAR_CONTENT_TYPE)
        reference = {k: v for k, v in as_json.items() if k != "session"}
        assert decode_columnar(frame) == reference

    def test_healthz_reports_every_worker(self, pool: ServerPool) -> None:
        status, payload = _get_json(pool, "/v1/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert [w["slot"] for w in payload["workers"]] == [0, 1]
        assert all(w["alive"] for w in payload["workers"])
        live_pids = {w.pid for w in pool.workers}
        assert {w["pid"] for w in payload["workers"]} == live_pids

    def test_stats_aggregate_across_workers(self, pool: ServerPool) -> None:
        """N requests spread over sessions count exactly N pool-wide."""
        host, port = pool.address
        client = RetryingClient(base_url=f"http://{host}:{port}")
        created = [
            client.post("/v1/sessions", {"workload": "s3d"}).payload
            ["session"]["id"]
            for _ in range(3)
        ]
        before = _get_json(pool, "/v1/stats")[1]
        per_sid = 4
        for sid in ["s1", *created]:
            for _ in range(per_sid):
                status, _payload = _get_json(
                    pool, f"/v1/sessions/{sid}/table?view=flat"
                )
                assert status == 200
        after = _get_json(pool, "/v1/stats")[1]
        table = "/sessions/<sid>/table"
        counted = (
            after["endpoints"][table]["count"]
            - before["endpoints"].get(table, {}).get("count", 0)
        )
        assert counted == per_sid * (1 + len(created))
        assert after["requests"]["total"] > before["requests"]["total"]
        assert [w["alive"] for w in after["pool"]["workers"]] == [True, True]

    def test_metrics_aggregate_is_valid_exposition(self,
                                                   pool: ServerPool) -> None:
        _get_json(pool, "/v1/sessions/s1/table?view=cct")
        status, ctype, body = _get(pool, "/v1/metrics")
        assert status == 200
        assert ctype.startswith("text/plain")
        text = body.decode("utf-8")
        assert "# TYPE repro_server_requests_total counter" in text
        assert "repro_server_sessions" in text

    def test_session_created_on_one_worker_readable_everywhere(
        self, pool: ServerPool
    ) -> None:
        """POST /sessions lands round-robin; the affinity owner adopts
        the session from the shared manifest on first use."""
        host, port = pool.address
        client = RetryingClient(base_url=f"http://{host}:{port}")
        for _ in range(4):  # cover both round-robin creators
            sid = client.post("/v1/sessions", {"workload": "s3d"}) \
                .payload["session"]["id"]
            response = client.get_table(sid, columnar=True, view="cct")
            assert response.status == 200
            assert response.payload["row_count"] > 0
            assert client.delete(f"/v1/sessions/{sid}").status == 200
            assert client.get(f"/v1/sessions/{sid}").status == 404


# --------------------------------------------------------------------- #
# per-connection routing: keep-alive must not bypass affinity
# --------------------------------------------------------------------- #
class TestConnectionRouting:
    def test_same_session_keepalive_stays_open(self, pool: ServerPool) -> None:
        """A connection sticking to one session stays alive — the
        pool's steady state pays the routing cost once."""
        host, port = pool.address
        conn = http.client.HTTPConnection(host, port, timeout=scaled(30))
        try:
            for _ in range(3):
                conn.request("GET", "/v1/sessions/s1/table?view=cct")
                response = conn.getresponse()
                response.read()
                assert response.status == 200
                assert not response.will_close
        finally:
            conn.close()

    def test_unowned_first_request_served_once_then_closed(
        self, pool: ServerPool
    ) -> None:
        """Requests without a session id round-robin; the worker serves
        the one request the parent sent it and closes, so the next
        request re-enters the parent's router."""
        host, port = pool.address
        conn = http.client.HTTPConnection(host, port, timeout=scaled(30))
        try:
            conn.request(
                "POST", "/v1/sessions",
                body=json.dumps({"workload": "fig1"}).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            response.read()
            assert response.status == 201
            assert response.will_close
        finally:
            conn.close()

    def _sid_per_slot(self, pool: ServerPool) -> dict[int, str]:
        host, port = pool.address
        client = RetryingClient(base_url=f"http://{host}:{port}")
        sids: dict[int, str] = {}
        while len(sids) < 2:  # one session owned by each slot
            sid = client.post("/v1/sessions", {"workload": "fig1"}) \
                .payload["session"]["id"]
            sids.setdefault(zlib.crc32(sid.encode()) % 2, sid)
        return sids

    def test_switching_sessions_on_a_connection_is_refused(
        self, pool: ServerPool
    ) -> None:
        """A kept-alive connection reused for a session another worker
        owns draws a structured 421 — never a silently forked session —
        and the transparent reconnect lands on the right worker."""
        host, port = pool.address
        sids = self._sid_per_slot(pool)
        first, second = sids[0], sids[1]
        conn = http.client.HTTPConnection(host, port, timeout=scaled(30))
        try:
            conn.request("GET", f"/v1/sessions/{first}/table?view=cct")
            response = conn.getresponse()
            response.read()
            assert response.status == 200
            assert not response.will_close
            # same connection, different session: refused, not misserved
            conn.request("GET", f"/v1/sessions/{second}/table?view=cct")
            response = conn.getresponse()
            error = json.loads(response.read())["error"]
            assert response.status == 421
            assert error["code"] == "misrouted"
            assert len(error["trace_id"]) == 16
            assert response.will_close
            # http.client reconnects; the fresh connection is re-routed
            conn.request("GET", f"/v1/sessions/{second}/table?view=cct")
            response = conn.getresponse()
            response.read()
            assert response.status == 200
        finally:
            conn.close()

    def test_keepalive_mutation_cannot_fork_session_state(
        self, pool: ServerPool
    ) -> None:
        """The high-severity review case: a mutation for session B sent
        down a connection routed to session A's worker must not be
        adopted there (diverging from B's owner and losing updates)."""
        host, port = pool.address
        client = RetryingClient(base_url=f"http://{host}:{port}")
        sids = self._sid_per_slot(pool)
        first, second = sids[0], sids[1]
        conn = http.client.HTTPConnection(host, port, timeout=scaled(30))
        try:
            conn.request("GET", f"/v1/sessions/{first}/table?view=cct")
            response = conn.getresponse()
            response.read()
            assert response.status == 200
            conn.request(
                "POST", f"/v1/sessions/{second}/flatten", body=b"{}",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            response.read()
            assert response.status == 421  # refused on the wrong worker
            # retried on a fresh connection, it reaches the owner
            conn.request(
                "POST", f"/v1/sessions/{second}/flatten", body=b"{}",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 200
            assert payload["generation"] == 1
        finally:
            conn.close()
        # the flatten is visible where affinity routes all later reads
        info = client.get(f"/v1/sessions/{second}").payload["session"]
        assert info["generation"] == 1
        assert info["flatten_depth"] == 1

    def test_create_then_immediate_delete(self, pool: ServerPool) -> None:
        """DELETE routes by affinity while POST round-robins; closing a
        session no worker has adopted yet must still succeed."""
        host, port = pool.address
        client = RetryingClient(base_url=f"http://{host}:{port}")
        for _ in range(4):  # cover both creator/owner alignments
            sid = client.post("/v1/sessions", {"workload": "fig1"}) \
                .payload["session"]["id"]
            assert client.delete(f"/v1/sessions/{sid}").status == 200
            assert client.get(f"/v1/sessions/{sid}").status == 404


class TestCloseBeforeAdoption:
    def test_close_unlinks_unadopted_manifest(self, tmp_path) -> None:
        creator = SessionRegistry(manifest_dir=str(tmp_path))
        sibling = SessionRegistry(manifest_dir=str(tmp_path))
        handle = creator.open_workload("fig1")
        manifest = tmp_path / f"{handle.sid}.json"
        assert manifest.exists()
        # the sibling never adopted the session; the manifest is the
        # authoritative record, and closing it must succeed
        assert sibling.close(handle.sid) is None
        assert not manifest.exists()
        with pytest.raises(NotFound):  # no longer adoptable anywhere
            sibling.get(handle.sid)
        with pytest.raises(NotFound):  # second close is genuinely unknown
            sibling.close(handle.sid)


# --------------------------------------------------------------------- #
# control-channel framing and request-line peeking
# --------------------------------------------------------------------- #
class TestControlChannel:
    def test_reply_larger_than_a_datagram_roundtrips(self) -> None:
        """A 1 MiB reply crosses the SEQPACKET channel in chunks — a
        single datagram that size would fail with EMSGSIZE."""
        parent, child = socket.socketpair(
            socket.AF_UNIX, socket.SOCK_SEQPACKET
        )
        payload = bytes(range(256)) * 4096  # 1 MiB
        failures: list = []

        def send() -> None:
            try:
                _ctrl_send(child, payload)
            except OSError as exc:
                failures.append(exc)

        thread = threading.Thread(target=send)
        thread.start()
        try:
            received = _ctrl_recv(parent)
        finally:
            thread.join(timeout=scaled(10))
            parent.close()
            child.close()
        assert failures == []
        assert received == payload

    def test_small_reply_roundtrips(self) -> None:
        parent, child = socket.socketpair(
            socket.AF_UNIX, socket.SOCK_SEQPACKET
        )
        try:
            _ctrl_send(child, b'{"pid": 1}')
            assert _ctrl_recv(parent) == b'{"pid": 1}'
        finally:
            parent.close()
            child.close()


class TestPeekRouting:
    def test_split_request_line_waits_for_full_sid(self) -> None:
        """A request line arriving in two TCP segments routes on the
        complete sid, not a truncated prefix ('s12' != 's1')."""
        instance = ServerPool(workers=2, config=dict(POOL_CONFIG))
        left, right = socket.socketpair()

        def trickle() -> None:
            left.sendall(b"GET /v1/sessions/s12")
            time.sleep(scaled(0.1))
            left.sendall(b"/table HTTP/1.1\r\nHost: x\r\n\r\n")

        thread = threading.Thread(target=trickle)
        thread.start()
        try:
            head = instance._peek_request(right)
        finally:
            thread.join(timeout=scaled(10))
            left.close()
            right.close()
        assert head.startswith(b"GET /v1/sessions/s12/table")
        assert instance._pick_slot(head) == zlib.crc32(b"s12") % 2

    def test_incomplete_request_line_is_dropped(self, monkeypatch) -> None:
        """A line that never completes inside the budget is not routed
        on its partial prefix; the connection is dropped instead."""
        import repro.server.pool as pool_mod

        monkeypatch.setattr(pool_mod, "_PEEK_TIMEOUT_S", scaled(0.2))
        instance = ServerPool(workers=2, config=dict(POOL_CONFIG))
        left, right = socket.socketpair()
        try:
            left.sendall(b"GET /v1/sessions/s12")  # CRLF never arrives
            assert instance._peek_request(right) == b""
        finally:
            left.close()
            right.close()


# --------------------------------------------------------------------- #
# crash recovery
# --------------------------------------------------------------------- #
class TestWorkerCrash:
    def test_killed_worker_is_restarted(self, pool: ServerPool) -> None:
        victim = pool.workers[0].pid
        os.kill(victim, signal.SIGKILL)

        def recovered():
            status, payload = _get_json(pool, "/v1/healthz")
            return payload if (
                status == 200
                and all(w["alive"] for w in payload["workers"])
            ) else None

        payload = _wait_for(recovered, 15, "worker restart")
        slot0 = payload["workers"][0]
        assert slot0["pid"] != victim
        assert slot0["restarts"] == 1
        # the restarted worker serves the preloaded session again
        status, table = _get_json(
            pool, "/v1/sessions/s1/table?view=cct&depth=3"
        )
        assert status == 200 and table["row_count"] > 0

    def test_inflight_on_other_workers_unaffected(self,
                                                  pool: ServerPool) -> None:
        """kill -9 one worker while the other streams requests: every
        request on the surviving worker succeeds, no retry needed."""
        host, port = pool.address
        client = RetryingClient(base_url=f"http://{host}:{port}")
        # a session owned (by affinity) by each slot
        sids = {}
        while len(sids) < 2:
            sid = client.post("/v1/sessions", {"workload": "s3d"}) \
                .payload["session"]["id"]
            import zlib

            sids.setdefault(zlib.crc32(sid.encode()) % 2, sid)
        victim_slot = 0
        survivor_sid = sids[1 - victim_slot]
        # pin both sessions' caches hot before the crash
        for sid in sids.values():
            client.get_table(sid, columnar=True)

        errors: list = []
        stop = threading.Event()

        def hammer():
            conn = http.client.HTTPConnection(host, port,
                                              timeout=scaled(30))
            path = f"/v1/sessions/{survivor_sid}/table?view=cct"
            try:
                while not stop.is_set():
                    conn.request("GET", path)
                    response = conn.getresponse()
                    response.read()
                    if response.status != 200:
                        errors.append(response.status)
            except (OSError, http.client.HTTPException) as exc:
                errors.append(type(exc).__name__)
            finally:
                conn.close()

        thread = threading.Thread(target=hammer)
        thread.start()
        try:
            time.sleep(scaled(0.2))
            os.kill(pool.workers[victim_slot].pid, signal.SIGKILL)
            time.sleep(scaled(0.5))
        finally:
            stop.set()
            thread.join(timeout=scaled(30))
        assert not thread.is_alive()
        assert errors == []

        # and the victim's sessions come back after the refork
        def victim_serves():
            status, _payload = _get_json(
                pool, f"/v1/sessions/{sids[victim_slot]}/table?view=cct"
            )
            return status == 200

        _wait_for(victim_serves, 15, "restarted worker to adopt session")

    def test_stats_stay_consistent_after_restart(self,
                                                 pool: ServerPool) -> None:
        """Post-crash aggregation still sums cleanly (the dead worker's
        counters are gone — by design — but the merge stays coherent)."""
        os.kill(pool.workers[1].pid, signal.SIGKILL)
        _wait_for(
            lambda: _get_json(pool, "/v1/healthz")[0] == 200, 15,
            "pool to return to full strength",
        )
        for _ in range(3):
            assert _get_json(pool, "/v1/sessions/s1/render",
                             method="POST", body=b"{}")[0] == 200
        status, stats = _get_json(pool, "/v1/stats")
        assert status == 200
        total = sum(e["count"] for e in stats["endpoints"].values())
        assert stats["requests"]["total"] == total
        assert stats["requests"]["errors"] == sum(
            e["errors"] for e in stats["endpoints"].values()
        )


# --------------------------------------------------------------------- #
# structured errors under multi-worker (the chaos battery)
# --------------------------------------------------------------------- #
class TestPoolChaos:
    CASES = [
        ("GET", "/v1/sessions/nope/table", None, 404, "unknown-session"),
        ("GET", "/v1/sessions/nope/render", None, 404, "unknown-session"),
        ("GET", "/v1/sessions/s1/table?view=bogus", None, 400,
         "bad-view-kind"),
        ("GET", "/v1/sessions/s1/table?flavor=sideways", None, 400,
         "bad-flavor"),
        ("GET", "/v1/sessions/s1/table?metric=nothere", None, 404,
         "unknown-metric"),
        ("POST", "/v1/sessions/s1/render", b"{not json", 400,
         "malformed-json"),
        ("POST", "/v1/sessions/s1/render", b"[1, 2]", 400,
         "bad-request-shape"),
        ("POST", "/v1/sessions", b'{"workload": "bogus"}', 404,
         "unknown-workload"),
        ("GET", "/v1/nowhere", None, 404, "unknown-endpoint"),
        ("DELETE", "/v1/sessions/s1/table", None, 405,
         "method-not-allowed"),
    ]

    @pytest.mark.parametrize("method, path, body, status, code", CASES)
    def test_structured_errors_hold_under_pool(
        self, pool: ServerPool, method, path, body, status, code
    ) -> None:
        got_status, payload = _get_json(pool, path, method=method, body=body)
        assert got_status == status
        error = payload["error"]
        assert error["code"] == code
        assert error["status"] == status
        assert len(error["trace_id"]) == 16

    def test_errors_structured_on_every_worker(self,
                                               pool: ServerPool) -> None:
        """Fresh connections round-robin, so hitting the same bad path
        repeatedly exercises each worker; trace ids never repeat."""
        seen = set()
        for _ in range(4):
            status, payload = _get_json(pool, "/v1/sessions/nope/render")
            assert status == 404
            seen.add(payload["error"]["trace_id"])
        assert len(seen) == 4

    def test_retrying_client_columnar_survives_pool(self,
                                                    pool: ServerPool) -> None:
        """The retrying path carries the Accept header on every attempt."""
        host, port = pool.address
        client = RetryingClient(
            base_url=f"http://{host}:{port}",
            policy=RetryPolicy(max_attempts=3, base_delay=0.01),
        )
        response = client.get_table("s1", columnar=True, view="flat")
        assert response.status == 200
        assert response.content_type == COLUMNAR_CONTENT_TYPE
        reference = client.get_table("s1", columnar=False, view="flat")
        assert response.payload == {
            k: v for k, v in reference.payload.items() if k != "session"
        }


# --------------------------------------------------------------------- #
# merge arithmetic (pure function)
# --------------------------------------------------------------------- #
class TestStatsMerge:
    def test_merge_sums_counters_and_weights_latency(self) -> None:
        a = {
            "uptime_s": 5.0,
            "requests": {"total": 10, "errors": 1, "shed": 0, "inflight": 2},
            "endpoints": {"/x": {"count": 10, "errors": 1,
                                 "latency_ms": {"mean": 2.0, "min": 1.0,
                                                "max": 4.0}}},
            "cache": {"hits": 5, "misses": 5},
            "sessions": 1, "resident_scopes": 100, "evictions": 0,
        }
        b = {
            "uptime_s": 7.0,
            "requests": {"total": 30, "errors": 0, "shed": 2, "inflight": 0},
            "endpoints": {"/x": {"count": 30, "errors": 0,
                                 "latency_ms": {"mean": 4.0, "min": 0.5,
                                                "max": 9.0}}},
            "cache": {"hits": 20, "misses": 10},
            "sessions": 2, "resident_scopes": 200, "evictions": 1,
        }
        merged = merge_stats_payloads([a, b])
        assert merged["uptime_s"] == 7.0
        assert merged["requests"] == {"total": 40, "errors": 1,
                                      "shed": 2, "inflight": 2}
        endpoint = merged["endpoints"]["/x"]
        assert endpoint["count"] == 40
        assert endpoint["latency_ms"]["mean"] == pytest.approx(3.5)
        assert endpoint["latency_ms"]["min"] == 0.5
        assert endpoint["latency_ms"]["max"] == 9.0
        assert merged["cache"] == {"hits": 25, "misses": 15}
        assert merged["sessions"] == 3

    def test_merge_of_nothing_is_empty(self) -> None:
        merged = merge_stats_payloads([])
        assert merged["requests"]["total"] == 0
        assert merged["endpoints"] == {}


# --------------------------------------------------------------------- #
# corpus-scoped session affinity: ?sid= routing
# --------------------------------------------------------------------- #
class TestCorpusSidRouting:
    """Corpus requests that carry ``?sid=`` must land on the worker that
    owns (or will own) that session by affinity, exactly like
    ``/v1/sessions/<sid>`` paths."""

    def _pool(self) -> ServerPool:
        return ServerPool(workers=2, config=dict(POOL_CONFIG))

    def test_open_by_id_with_sid_routes_by_affinity(self) -> None:
        instance = self._pool()
        head = (b"POST /v1/corpus/t/profiles/p000001/open?sid=s12 "
                b"HTTP/1.1\r\nHost: x\r\n\r\n")
        assert instance._pick_slot(head) == zlib.crc32(b"s12") % 2

    def test_sid_parses_among_other_params(self) -> None:
        instance = self._pool()
        head = (b"POST /v1/corpus/t/profiles/p1/open?salvage=true&sid=s7"
                b"&x=1 HTTP/1.1\r\n\r\n")
        assert instance._pick_slot(head) == zlib.crc32(b"s7") % 2

    def test_corpus_without_sid_round_robins(self) -> None:
        instance = self._pool()
        head = b"POST /v1/corpus/t/profiles HTTP/1.1\r\nHost: x\r\n\r\n"
        first = instance._pick_slot(head)
        second = instance._pick_slot(head)
        assert {first, second} == {0, 1}  # round-robin, not pinned

    def test_unversioned_alias_also_routes(self) -> None:
        instance = self._pool()
        head = (b"POST /corpus/t/profiles/p1/open?sid=s12 "
                b"HTTP/1.1\r\n\r\n")
        assert instance._pick_slot(head) == zlib.crc32(b"s12") % 2

    def test_worker_affinity_guard_sees_corpus_sid(self) -> None:
        from repro.server.http import _POOL_CORPUS_SID_RE

        match = _POOL_CORPUS_SID_RE.match(
            "/v1/corpus/t/profiles/p1/open?sid=s12")
        assert match is not None and match.group(1) == "s12"
        assert _POOL_CORPUS_SID_RE.match("/v1/corpus/t/profiles") is None
        assert _POOL_CORPUS_SID_RE.match(
            "/v1/sessions/s12/table") is None  # handled by _POOL_SID_RE

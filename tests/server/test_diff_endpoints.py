"""``/v1/diff`` and ``/v1/ensemble``: behavior, negotiation, and chaos.

The diff endpoint is deliberately stateless — members are aligned per
request, the diff experiment is rendered and discarded, and nothing is
written to the render cache.  The battery here pins that contract:

* both member sources (database paths, open sessions) serve the same
  shapes, with columnar content negotiation like ``/table``;
* every failure mode — mismatched metric tables, corrupted members,
  unknown sessions, absurd parameters — yields a structured taxonomy
  error with a trace id, never a 500 and never an HTML body;
* faulted diff requests leave the render cache untouched: a table
  rendered before the chaos replays byte-identically after it.
"""

from __future__ import annotations

import json

import pytest

from repro.server import AnalysisApp
from repro.server.schema import BinaryBody
from repro.server.wire import COLUMNAR_CONTENT_TYPE, decode_columnar
from repro.sim.scale import generate_rank_files

_ERROR_FIELDS = {"status", "code", "message", "retry_after", "trace_id"}


@pytest.fixture(scope="module")
def members(tmp_path_factory):
    out = tmp_path_factory.mktemp("diff-members")
    return generate_rank_files(str(out), 4, fanout=2, depth=2)


@pytest.fixture(scope="module")
def odd_member(tmp_path_factory):
    """A member whose metric table differs from the scale corpus."""
    out = tmp_path_factory.mktemp("diff-odd")
    return generate_rank_files(str(out), 1, fanout=2, depth=2,
                               metric="flops")[0]


@pytest.fixture()
def app():
    return AnalysisApp()


def post(app, path, body=None, headers=None):
    raw = json.dumps(body).encode() if body is not None else b""
    return app.handle_full("POST", path, raw, request_headers=headers)


def assert_structured_error(status, payload, code=None):
    assert status >= 400
    error = payload["error"]
    assert set(error) <= _ERROR_FIELDS
    assert error["trace_id"]
    body = json.dumps(payload)
    assert "Traceback" not in body and "<html" not in body.lower()
    if code is not None:
        assert error["code"] == code


# --------------------------------------------------------------------- #
# happy paths
# --------------------------------------------------------------------- #
def test_diff_databases_json(app, members):
    status, payload, headers = post(app, "/v1/diff", {
        "databases": members, "baseline": "mean", "target": 3,
    })
    assert status == 200
    assert headers["X-Trace-Id"]
    assert payload["baseline"] == "mean"
    assert payload["target"].endswith("r3")
    assert len(payload["members"]) == 4
    table = payload["diff"]
    assert table["view"] == "flat"
    assert table["row_count"] > 0
    assert isinstance(payload["findings"], list)
    assert payload["report"]["n_members"] == 4


def test_diff_sessions_members(app, members):
    sids = []
    for path in members[:2]:
        status, opened, _ = post(app, "/v1/sessions", {"database": path})
        assert status == 201
        sids.append(opened["session"]["id"])
    status, payload, _ = post(app, "/v1/diff", {"sessions": sids})
    assert status == 200
    assert payload["baseline"].endswith("r0")
    assert payload["target"].endswith("r1")


def test_diff_columnar_negotiation(app, members):
    body = {"databases": members, "view": "cct", "depth": 2}
    status, json_payload, _ = post(app, "/v1/diff", dict(body))
    assert status == 200
    status, binary, _ = post(app, "/v1/diff", dict(body),
                             headers={"Accept": COLUMNAR_CONTENT_TYPE})
    assert status == 200
    assert isinstance(binary, BinaryBody)
    assert binary.content_type == COLUMNAR_CONTENT_TYPE
    decoded = decode_columnar(binary.data)
    reference = {k: v for k, v in json_payload["diff"].items()
                 if k != "session"}
    assert decoded == reference


def test_diff_of_identical_members_is_all_zero(app, members):
    status, payload, _ = post(app, "/v1/diff", {
        "databases": [members[0], members[0]],
    })
    assert status == 200
    columns = [c["name"] for c in payload["diff"]["columns"]]
    for row in payload["diff"]["rows"]:
        for name, value in zip(columns, row):
            if name in ("scope", "depth"):
                continue
            assert value == 0.0
    assert payload["findings"] == []


def test_diff_against_mean_target_skips_detection(app, members):
    status, payload, _ = post(app, "/v1/diff", {
        "databases": members[:3], "baseline": 0, "target": "mean",
    })
    assert status == 200
    assert payload["target"] == "mean"
    assert payload["findings"] == []


def test_ensemble_opens_session_with_stat_columns(app, members):
    status, payload, _ = post(app, "/v1/ensemble", {"databases": members})
    assert status == 201
    info = payload["ensemble"]
    assert info["n_experiments"] == 4
    assert info["union_scopes"] > 0
    sid = payload["session"]["id"]
    status, table = app.handle(
        "GET", f"/v1/sessions/{sid}/table?view=flat&depth=1"
    )
    assert status == 200
    labels = [c["name"] for c in table["columns"]]
    assert "cycles (mean) (I)" in labels
    assert "cycles (stddev) (E)" in labels
    status, listed = app.handle("GET", "/v1/sessions")
    assert status == 200
    assert any(s["id"] == sid for s in listed["sessions"])


# --------------------------------------------------------------------- #
# chaos: every failure is structured, nothing taints the cache
# --------------------------------------------------------------------- #
def _prime_table(app, path):
    """Open a session and cache one table render; return (sid, bytes)."""
    status, opened, _ = post(app, "/v1/sessions", {"database": path})
    assert status == 201
    sid = opened["session"]["id"]
    status, table = app.handle("GET", f"/v1/sessions/{sid}/table")
    assert status == 200
    return sid, json.dumps(table, sort_keys=True)


def test_mismatched_metric_members_fail_structured(app, members, odd_member):
    sid, before = _prime_table(app, members[0])
    stats_before = app.cache.stats()
    status, payload, _ = post(app, "/v1/diff", {
        "databases": [members[0], odd_member],
    })
    assert_structured_error(status, payload, code="bad-metric")
    # the failed alignment wrote nothing into the render cache …
    after = app.cache.stats()
    assert after["entries"] == stats_before["entries"]
    assert after["invalidations"] == stats_before["invalidations"]
    # … and a replayed table is byte-identical to the pre-chaos render
    status, table = app.handle("GET", f"/v1/sessions/{sid}/table")
    assert status == 200
    assert json.dumps(table, sort_keys=True) == before


def test_corrupted_member_strict_fails_salvage_succeeds(
    app, members, tmp_path
):
    with open(members[1], "rb") as fh:
        blob = fh.read()
    hurt = tmp_path / "hurt.rpdb"
    hurt.write_bytes(blob[: int(len(blob) * 0.7)])
    status, payload, _ = post(app, "/v1/diff", {
        "databases": [members[0], str(hurt)],
    })
    assert_structured_error(status, payload, code="bad-database")
    status, payload, _ = post(app, "/v1/diff", {
        "databases": [members[0], str(hurt)], "salvage": True,
    })
    assert status == 200
    assert len(payload["members"]) == 2


def test_unknown_and_evicted_session_members_404(app, members):
    status, payload, _ = post(app, "/v1/diff",
                              {"sessions": ["s404", "s405"]})
    assert_structured_error(status, payload, code="unknown-session")

    sids = []
    for path in members[:2]:
        _, opened, _ = post(app, "/v1/sessions", {"database": path})
        sids.append(opened["session"]["id"])
    # closing one member mid-flow turns the diff into a clean 404
    app.handle("DELETE", f"/v1/sessions/{sids[1]}")
    status, payload, _ = post(app, "/v1/diff", {"sessions": sids})
    assert_structured_error(status, payload, code="unknown-session")


@pytest.mark.parametrize("body,code", [
    ({}, "bad-diff-members"),
    ({"databases": []}, "bad-diff-members"),
    ({"databases": ["only-one"]}, "bad-diff-members"),
    ({"databases": [1, 2]}, "bad-diff-members"),
    ({"databases": ["a", "b"], "sessions": ["s1", "s2"]},
     "bad-diff-members"),
    ({"sessions": ["s1", "s2"], "baseline": True}, "bad-field-type"),
    ({"sessions": ["s1", "s2"], "view": 7}, "bad-field-type"),
])
def test_malformed_diff_requests_are_structured(app, body, code):
    status, payload, _ = post(app, "/v1/diff", body)
    assert_structured_error(status, payload, code=code)


def test_bad_parameters_never_500(app, members):
    bodies = [
        {"databases": members, "view": "nope"},
        {"databases": members, "flavor": "nope"},
        {"databases": members, "metric": "no-such-metric"},
        {"databases": members, "factor": 0},
        {"databases": members, "factor": -2.5},
        {"databases": members, "baseline": 99},
        {"databases": members, "target": "no-such-member"},
        {"databases": members, "threshold": 3.0},
        {"databases": [members[0], "/does/not/exist.rpdb"]},
    ]
    for body in bodies:
        status, payload, _ = post(app, "/v1/diff", body)
        assert 400 <= status < 500, (body, payload)
        assert_structured_error(status, payload)


def test_ensemble_bad_members_are_structured(app, members, odd_member):
    status, payload, _ = post(app, "/v1/ensemble", {})
    assert_structured_error(status, payload, code="missing-field")
    status, payload, _ = post(app, "/v1/ensemble", {"databases": ["one"]})
    assert_structured_error(status, payload, code="bad-diff-members")
    status, payload, _ = post(app, "/v1/ensemble", {
        "databases": [members[0], odd_member],
    })
    assert_structured_error(status, payload, code="bad-metric")
    # a failed open leaves no session behind
    status, listed = app.handle("GET", "/v1/sessions")
    assert listed["sessions"] == []

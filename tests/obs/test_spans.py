"""The span tracer: recording semantics, threading, and the fast path.

The contract under test is the one the <3% overhead budget rests on:
disabled hook sites return one shared no-op object (no allocation),
enabled spans record **self time** per calling context on lock-free
per-thread state, and the merged snapshot recovers exact call counts
and a conserved total across threads.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs import promexport, slowlog
from repro.obs.spans import (
    SpanTracer,
    current_trace_id,
    current_tracer,
    install,
    reset_trace_id,
    set_trace_id,
    span,
    traced,
    uninstall,
)


@pytest.fixture(autouse=True)
def clean_tracer():
    uninstall()
    yield
    uninstall()


class TestDisabledFastPath:
    def test_span_is_shared_noop(self):
        assert current_tracer() is None
        a = span("x")
        b = span("y")
        assert a is b  # one shared object, no per-call allocation

    def test_noop_span_records_nothing(self):
        with span("outer"):
            with span("inner"):
                pass
        tracer = install()
        assert tracer.snapshot() == {}

    def test_traced_decorator_passthrough(self):
        @traced("compute")
        def add(a, b):
            return a + b

        assert add(2, 3) == 5

    def test_install_uninstall_cycle(self):
        tracer = install()
        assert current_tracer() is tracer
        with span("alive"):
            pass
        assert uninstall() is tracer
        with span("dead"):
            pass
        assert tracer.snapshot() == {("alive",): (1, pytest.approx(
            tracer.snapshot()[("alive",)][1]))}
        assert ("dead",) not in tracer.snapshot()


class TestRecording:
    def test_calling_context_paths(self):
        tracer = install()
        with span("request"):
            with span("decode"):
                pass
            with span("render"):
                with span("engine"):
                    pass
        with span("request"):
            with span("render"):
                pass
        snap = tracer.snapshot()
        calls = {path: n for path, (n, _s) in snap.items()}
        assert calls == {
            ("request",): 2,
            ("request", "decode"): 1,
            ("request", "render"): 2,
            ("request", "render", "engine"): 1,
        }

    def test_self_time_sums_to_wall_time(self):
        """Self times are a partition: their sum equals the root's
        inclusive wall time (the Eq. 1 invariant the export relies on)."""
        tracer = install()
        t0 = time.perf_counter()
        with span("root"):
            time.sleep(0.01)
            with span("child"):
                time.sleep(0.01)
        elapsed = time.perf_counter() - t0
        snap = tracer.snapshot()
        total_self = sum(s for _n, s in snap.values())
        assert total_self <= elapsed
        assert total_self == pytest.approx(elapsed, rel=0.25)
        # the child's self time must NOT be double counted in the root
        assert snap[("root",)][1] == pytest.approx(0.01, rel=0.5)
        assert snap[("root", "child")][1] == pytest.approx(0.01, rel=0.5)

    def test_exception_still_pops(self):
        tracer = install()
        with pytest.raises(ValueError):
            with span("outer"):
                with span("inner"):
                    raise ValueError("boom")
        snap = tracer.snapshot()
        assert ("outer",) in snap and ("outer", "inner") in snap
        # stack fully unwound: a new span starts a fresh root path
        with span("after"):
            pass
        assert ("after",) in tracer.snapshot()

    def test_traced_decorator_records(self):
        tracer = install()

        @traced("kernel")
        def work():
            return 42

        assert work() == 42
        assert tracer.snapshot()[("kernel",)][0] == 1

    def test_reset(self):
        tracer = install()
        with span("x"):
            pass
        tracer.reset()
        assert tracer.snapshot() == {}
        with span("y"):
            pass
        assert tracer.span_count() == 1

    def test_thread_merge_conserves_counts(self):
        tracer = install()
        n_threads, n_iter = 8, 200

        def worker():
            for _ in range(n_iter):
                with span("request"):
                    with span("stage"):
                        pass

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = tracer.snapshot()
        assert snap[("request",)][0] == n_threads * n_iter
        assert snap[("request", "stage")][0] == n_threads * n_iter


class TestTraceIds:
    def test_ambient_set_and_reset(self):
        assert current_trace_id() is None
        token = set_trace_id("abc123")
        assert current_trace_id() == "abc123"
        reset_trace_id(token)
        assert current_trace_id() is None

    def test_thread_isolation(self):
        set_trace_id("main-id")
        seen = {}

        def worker():
            seen["worker"] = current_trace_id()

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert seen["worker"] is None  # context does not leak across threads
        assert current_trace_id() == "main-id"
        set_trace_id(None)


class TestHistogram:
    def test_bucketing_and_cumulative(self):
        h = promexport.Histogram(bounds=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 2.0):
            h.observe(v)
        assert h.total == 4
        assert h.sum == pytest.approx(3.05)
        assert h.cumulative() == [("0.1", 1), ("1.0", 3), ("+Inf", 4)]

    def test_boundary_goes_to_lower_bucket(self):
        h = promexport.Histogram(bounds=(0.1, 1.0))
        h.observe(0.1)  # le="0.1" bucket is inclusive, Prometheus-style
        assert h.cumulative()[0] == ("0.1", 1)

    def test_render_metrics_format(self):
        h = promexport.Histogram(bounds=(0.5,))
        h.observe(0.2)
        text = promexport.render_metrics([
            ("t_total", "counter", "help text",
             [("", {"endpoint": "/x"}, 3)]),
            ("t_seconds", "histogram", "latency",
             [("_bucket", {"le": le}, n) for le, n in h.cumulative()]
             + [("_sum", None, h.sum), ("_count", None, h.total)]),
        ])
        assert '# TYPE t_total counter' in text
        assert 't_total{endpoint="/x"} 3' in text
        assert 't_seconds_bucket{le="0.5"} 1' in text
        assert 't_seconds_bucket{le="+Inf"} 1' in text
        assert 't_seconds_count 1' in text
        assert text.endswith("\n")

    def test_label_escaping(self):
        line = promexport.format_sample(
            "m", {"path": 'a"b\\c\nd'}, 1
        )
        assert line == 'm{path="a\\"b\\\\c\\nd"} 1'


class TestSlowLog:
    def test_threshold_and_ring(self):
        log = slowlog.SlowLog(threshold_ms=10.0, maxlen=2)
        assert not log.record("/fast", 5.0, 200, "t1")
        assert log.record("/slow", 15.0, 200, "t2")
        assert log.record("/slower", 50.0, 500, "t3")
        assert log.record("/slowest", 99.0, 200, "t4")
        payload = log.to_payload()
        assert payload["threshold_ms"] == 10.0
        assert payload["observed"] == 3
        # bounded ring, newest first
        assert [e["endpoint"] for e in payload["recent"]] == [
            "/slowest", "/slower"
        ]
        assert payload["recent"][1]["trace_id"] == "t3"
        assert payload["recent"][1]["status"] == 500

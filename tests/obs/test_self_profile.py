"""The dogfooding loop: spans → experiment database → three views.

End-to-end pins for the tentpole: a traced server (or any traced
process) exports a *regular* framed v2 binary database whose
calling-context, callers, and flat views present the recorded spans
with exact Eq. 1 attribution — inclusive wall time recovered from the
recorded self times, call counts conserved, subsystems grouped by
``obs://`` component in the Flat View.
"""

from __future__ import annotations

import time

import pytest

from repro.core.metrics import MetricFlavor, MetricSpec
from repro.core.views import ViewKind
from repro.hpcprof import database
from repro.obs import install, save_self_profile, span, tracer_experiment, uninstall
from repro.obs.export import tracer_profile


@pytest.fixture()
def tracer():
    tracer = install()
    yield tracer
    uninstall()


def record_workload(tracer):
    """A deterministic three-level span shape with measurable time."""
    for _ in range(3):
        with span("server.request /render"):
            with span("server.decode"):
                time.sleep(0.001)
            with span("viewer.render-table"):
                with span("engine.gather-view-values"):
                    time.sleep(0.001)
    with span("server.request /hotpath"):
        with span("engine.hot-path"):
            pass
    return tracer


class TestExperimentShape:
    def test_metrics_and_counts(self, tracer):
        record_workload(tracer)
        exp = tracer_experiment(tracer)
        names = [d.name for d in exp.metrics]
        assert names == ["calls", "wall time (s)"]
        calls_mid = exp.metrics.by_name("calls").mid
        # Eq. 1: the CCT root's inclusive calls equal all spans recorded
        total_calls = exp.cct.root.inclusive.get(calls_mid, 0.0)
        assert total_calls == tracer.span_count() == 14

    def test_inclusive_time_recovered_from_self_times(self, tracer):
        record_workload(tracer)
        snap = tracer.snapshot()
        exp = tracer_experiment(tracer)
        time_mid = exp.metrics.by_name("wall time (s)").mid
        total_self = sum(s for _c, s in snap.values())
        total_inclusive = exp.cct.root.inclusive.get(time_mid, 0.0)
        assert total_inclusive == pytest.approx(total_self, rel=1e-9)

    def test_components_become_flat_view_groups(self, tracer):
        record_workload(tracer)
        exp = tracer_experiment(tracer)
        flat = exp.flat_view()
        names = {n.name for n in flat.roots}
        assert {"obs://server", "obs://viewer", "obs://engine"} <= names

    def test_profile_files_use_component_scheme(self, tracer):
        record_workload(tracer)
        profile = tracer_profile(tracer)
        files = {
            node.frame.file
            for node in profile.root.walk()
            if node.frame is not None
        }
        assert files == {"obs://server", "obs://viewer", "obs://engine"}


class TestDatabaseRoundTrip:
    def test_save_load_render_all_views(self, tracer, tmp_path):
        record_workload(tracer)
        path = str(tmp_path / "self.rpdb")
        exported, size = save_self_profile(tracer, path)
        assert size > 0
        loaded = database.load(path)
        assert len(loaded.cct) == len(exported.cct)
        from repro.viewer.session import ViewerSession
        from repro.viewer.table import render_view

        session = ViewerSession(loaded)
        for kind in ViewKind:
            text = render_view(session.view(kind), depth=4)
            assert "server.request /render" in text
        # hot path analysis works on the self-profile like any other
        result = loaded.hot_path("wall time (s)")
        assert result.hotspot is not None

    def test_served_by_the_analysis_server(self, tracer, tmp_path):
        """Full circle: the server can serve its own profile."""
        from repro.server.app import AnalysisApp

        record_workload(tracer)
        path = str(tmp_path / "self.rpdb")
        save_self_profile(tracer, path)
        app = AnalysisApp()
        status, payload = app.handle(
            "POST", "/v1/sessions",
            f'{{"database": "{path}"}}'.encode(),
        )
        assert status == 201
        sid = payload["session"]["id"]
        status, payload = app.handle(
            "GET", f"/v1/sessions/{sid}/render?view=callers"
        )
        assert status == 200
        assert "engine.gather-view-values" in payload["text"]


class TestAttributionSemantics:
    def test_exclusive_equals_recorded_self_time(self, tracer):
        with span("a"):
            time.sleep(0.002)
            with span("b"):
                time.sleep(0.002)
        snap = tracer.snapshot()
        exp = tracer_experiment(tracer)
        time_mid = exp.metrics.by_name("wall time (s)").mid
        view = exp.calling_context_view()

        def find(name, nodes):
            for node in nodes:
                if node.name == name:
                    return node
                found = find(name, node.children)
                if found is not None:
                    return found
            return None

        node_a = find("a", view.roots)
        assert node_a is not None
        # inclusive(a) must equal self(a) + self(a/b): exact recovery
        spec = MetricSpec(mid=time_mid, flavor=MetricFlavor.INCLUSIVE)
        incl = node_a.value(spec)
        expected = snap[("a",)][1] + snap[("a", "b")][1]
        assert incl == pytest.approx(expected, rel=1e-9)

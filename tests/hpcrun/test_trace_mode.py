"""Trace mode of the measurement substrate: timestamped call-path
samples out of the exact tracer and the wall-clock sampler, feeding the
same TraceSet/window pipeline the simulator uses."""

from __future__ import annotations

import os

import pytest

from repro.errors import ProfilerError
from repro.hpcrun.sampler import SamplingProfiler
from repro.hpcrun.tracer import TracingProfiler
from repro.hpcstruct.pystruct import build_python_structure
from repro.trace import TraceSet
from tests.hpcrun import target_workload

HERE = os.path.dirname(os.path.abspath(__file__))


def _traced_run(n=40):
    tracer = TracingProfiler(roots=[HERE], trace=True)
    with tracer:
        target_workload.entry(n)
    return tracer


class TestTracerTraceMode:
    def test_off_by_default(self):
        assert TracingProfiler().trace is None

    def test_trace_is_sealed_after_stop(self):
        tracer = _traced_run()
        assert tracer.trace.sealed
        assert tracer.trace.n_events > 0

    def test_timestamps_are_monotone_from_zero(self):
        trace = _traced_run().trace
        assert trace.t_begin >= 0.0
        assert list(trace.times) == sorted(trace.times)

    def test_event_counts_agree_with_live_profile(self):
        """The integer line-event counts are identical between the live
        profile and the trace's whole-window materialization — the
        exactness half of the contract (timings agree to within float
        summation order, asserted separately)."""
        tracer = _traced_run()
        events = tracer.metrics.by_name("line events").mid
        live = tracer.profile.totals()[events]
        materialized = tracer.trace.profile().totals()[events]
        assert live == materialized

    def test_wall_totals_agree_to_summation_order(self):
        tracer = _traced_run()
        wall = tracer.metrics.by_name("wall time (s)").mid
        live = tracer.profile.totals().get(wall, 0.0)
        materialized = tracer.trace.profile().totals().get(wall, 0.0)
        assert materialized == pytest.approx(live, rel=1e-9)

    def test_windowed_experiment_builds(self):
        tracer = _traced_run()
        structure = build_python_structure(
            [os.path.abspath(target_workload.__file__)],
            load_module="target")
        traces = TraceSet([tracer.trace], structure, name="py-trace")
        mid = (traces.t_begin + traces.t_end) / 2
        early = traces.window_experiment(None, mid)
        whole = traces.window_experiment(None, None)
        assert sum(1 for _ in early.cct.walk()) <= \
            sum(1 for _ in whole.cct.walk())


class TestSamplerTraceMode:
    def test_trace_requires_single_thread(self):
        with pytest.raises(ProfilerError, match="one thread"):
            SamplingProfiler(trace=True, all_threads=True)

    def test_deterministic_samples_land_in_trace(self):
        sampler = SamplingProfiler(roots=[HERE], trace=True)
        sampler.start()
        try:
            for _ in range(5):
                target_workload.entry(10)
                sampler.sample_once()
        finally:
            sampler.stop()
        assert sampler.trace.sealed
        assert sampler.trace.n_events == 5
        samples = sampler.metrics.by_name("wall time (s)").mid
        assert sampler.trace.profile().totals()[samples] == \
            pytest.approx(sampler.profile.totals()[samples], rel=1e-9)

"""A small real Python workload for profiler tests.

Line numbers in this file are referenced by tests — append only.
"""


def inner_kernel(n):
    total = 0
    for i in range(n):        # loop A
        total += i * i
    return total


def middle(n):
    acc = 0
    for _ in range(3):        # loop B
        acc += inner_kernel(n)
    return acc


def recursive(depth, n):
    if depth == 0:
        return inner_kernel(n)
    return recursive(depth - 1, n) + 1


class Helper:
    def method(self, n):
        return inner_kernel(n)


def entry(n=200):
    a = middle(n)
    b = recursive(3, n)
    c = Helper().method(n)
    return a + b + c

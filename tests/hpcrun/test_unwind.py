"""Unit tests for Python stack unwinding."""

from __future__ import annotations

import os
import sys

import pytest

from repro.hpcrun.unwind import FOREIGN_PROC, qualname_of, unwind

HERE = os.path.dirname(os.path.abspath(__file__))


def current_frame():
    return sys._getframe(0)


class TestUnwind:
    def test_outermost_first_with_call_lines(self):
        def inner():
            frames, leaf = unwind(sys._getframe(0))
            return frames, leaf

        def outer():
            return inner()

        frames, leaf = outer()
        names = [f.proc for f in frames]
        i_outer = next(i for i, n in enumerate(names) if n.endswith(".outer"))
        i_inner = next(i for i, n in enumerate(names) if n.endswith(".inner"))
        assert i_outer < i_inner
        # the inner frame's call_line points into outer's body
        assert frames[i_inner].call_line > 0
        assert frames[i_inner].file.endswith("test_unwind.py")
        assert leaf > 0

    def test_roots_collapse_foreign_frames(self):
        def inner():
            return unwind(sys._getframe(0), roots=(HERE,))

        frames, _leaf = inner()
        # everything above this test file (pytest machinery) collapses
        assert frames[0].proc == FOREIGN_PROC
        assert frames[0].file == "<unknown file>"
        # consecutive foreign frames collapse into ONE scope
        foreign_count = sum(1 for f in frames if f.proc == FOREIGN_PROC)
        assert foreign_count == 1
        assert frames[-1].proc.endswith(".inner")

    def test_roots_skip_mode(self):
        def inner():
            return unwind(sys._getframe(0), roots=(HERE,),
                          collapse_foreign=False)

        frames, _leaf = inner()
        assert all(f.proc != FOREIGN_PROC for f in frames)
        assert frames[0].file.endswith("test_unwind.py")

    def test_no_roots_keeps_everything(self):
        frames, _leaf = unwind(sys._getframe(0))
        assert all(f.proc != FOREIGN_PROC for f in frames)
        assert len(frames) > 3  # pytest's own frames included

    def test_qualname_of(self):
        assert qualname_of(sys._getframe(0)).endswith("test_qualname_of")

        class Helper:
            def method(self):
                return qualname_of(sys._getframe(0))

        name = Helper().method()
        assert name.endswith("Helper.method")

"""Tests for all-threads asynchronous sampling."""

from __future__ import annotations

import threading
import time

import pytest

from repro.hpcrun.sampler import SamplingProfiler


def spin(stop_event, label):
    x = 0.0
    while not stop_event.is_set():
        x += 1.0
    return x


def alpha_worker(stop_event):
    return spin(stop_event, "alpha")


def beta_worker(stop_event):
    return spin(stop_event, "beta")


class TestAllThreadsSampling:
    def test_both_workers_sampled(self):
        stop = threading.Event()
        threads = [
            threading.Thread(target=alpha_worker, args=(stop,), daemon=True),
            threading.Thread(target=beta_worker, args=(stop,), daemon=True),
        ]
        sampler = SamplingProfiler(period=0.002, all_threads=True)
        for t in threads:
            t.start()
        try:
            with sampler:
                time.sleep(0.3)
        finally:
            stop.set()
            for t in threads:
                t.join()

        assert sampler.samples_taken > 20
        assert len(sampler.thread_profiles) >= 3  # two workers + main

        procs = set()
        for profile in sampler.thread_profiles.values():
            for frames, _line, _costs in profile.paths():
                procs.update(f.proc for f in frames)
        assert any("alpha_worker" in p for p in procs)
        assert any("beta_worker" in p for p in procs)

    def test_merged_profile_combines_threads(self):
        stop = threading.Event()
        worker = threading.Thread(target=alpha_worker, args=(stop,),
                                  daemon=True)
        sampler = SamplingProfiler(period=0.002, all_threads=True)
        worker.start()
        try:
            with sampler:
                time.sleep(0.2)
        finally:
            stop.set()
            worker.join()

        merged = sampler.merged_profile()
        per_thread_total = sum(
            p.totals().get(0, 0.0) for p in sampler.thread_profiles.values()
        )
        assert merged.totals().get(0, 0.0) == pytest.approx(per_thread_total)

    def test_single_thread_merged_is_identity(self):
        sampler = SamplingProfiler(period=0.001)
        assert sampler.merged_profile() is sampler.profile

    def test_sampler_never_profiles_itself(self):
        stop = threading.Event()
        sampler = SamplingProfiler(period=0.001, all_threads=True)
        with sampler:
            time.sleep(0.05)
        stop.set()
        for profile in sampler.thread_profiles.values():
            for frames, _line, _costs in profile.paths():
                assert not any("repro-sampler" in f.proc for f in frames)
                assert not any("_sample_all" in f.proc for f in frames)

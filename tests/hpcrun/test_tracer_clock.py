"""Deterministic time attribution in the tracer, via an injected clock."""

from __future__ import annotations

import os

import pytest

from repro.hpcrun.tracer import TracingProfiler

HERE = os.path.dirname(os.path.abspath(__file__))


class FakeClock:
    """A clock advancing a fixed step per call — fully deterministic."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class TestDeterministicTiming:
    def test_time_attributed_per_line_event(self):
        """With a unit-step clock, every line event is charged exactly
        one unit to the line *before* it — the attribute-to-previous-line
        model."""
        from tests.hpcrun import target_workload

        tracer = TracingProfiler(roots=[HERE], clock=FakeClock(step=1.0))
        with tracer:
            target_workload.inner_kernel(5)
        events_mid = tracer.metrics.by_name("line events").mid
        time_mid = tracer.metrics.by_name("wall time (s)").mid
        totals = tracer.profile.totals()
        # each line event flushes one unit to the previous line; the final
        # pending line flushes at stop(), so events == time units
        assert totals[time_mid] == pytest.approx(totals[events_mid])

    def test_loop_lines_accumulate_time(self):
        from tests.hpcrun import target_workload

        tracer = TracingProfiler(roots=[HERE], clock=FakeClock(step=2.0))
        with tracer:
            target_workload.inner_kernel(10)
        time_mid = tracer.metrics.by_name("wall time (s)").mid
        per_line: dict[int, float] = {}
        for frames, line, costs in tracer.profile.paths():
            if frames[-1].proc == "inner_kernel":
                per_line[line] = per_line.get(line, 0.0) + costs.get(time_mid, 0.0)
        # the loop body lines (9, 10) dwarf the prologue/return lines
        loop_time = per_line.get(9, 0.0) + per_line.get(10, 0.0)
        other_time = sum(v for k, v in per_line.items() if k not in (9, 10))
        assert loop_time > 5 * other_time

    def test_no_time_without_events(self):
        tracer = TracingProfiler(roots=[HERE], clock=FakeClock())
        tracer.start()
        tracer.stop()
        assert tracer.profile.totals() == {}

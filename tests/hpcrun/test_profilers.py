"""Tests for the measurement substrate: tracer, sampler, unwinding."""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.core.errors import ProfilerError
from repro.hpcprof.experiment import Experiment
from repro.hpcrun.sampler import SamplingProfiler, sample_call
from repro.hpcrun.tracer import TracingProfiler, trace_call
from repro.hpcrun.unwind import FOREIGN_PROC
from repro.hpcstruct.pystruct import build_python_structure
from tests.hpcrun import target_workload

HERE = os.path.dirname(os.path.abspath(__file__))
TARGET = os.path.abspath(target_workload.__file__)


class TestTracingProfiler:
    @pytest.fixture(scope="class")
    def traced(self):
        result, profile = trace_call(target_workload.entry, 50, roots=[HERE])
        return result, profile

    def test_result_passthrough(self, traced):
        result, _ = traced
        assert result == target_workload.entry(50)

    def test_deterministic_event_counts(self):
        _, p1 = trace_call(target_workload.entry, 30, roots=[HERE])
        _, p2 = trace_call(target_workload.entry, 30, roots=[HERE])
        events = p1.metrics.by_name("line events").mid
        assert p1.totals()[events] == p2.totals()[events]

    def test_paths_reach_inner_kernel(self, traced):
        _, profile = traced
        leaf_procs = set()
        for frames, _line, _costs in profile.paths():
            leaf_procs.add(frames[-1].proc)
        assert "inner_kernel" in leaf_procs
        assert "entry" in leaf_procs

    def test_recursion_produces_nested_frames(self, traced):
        _, profile = traced
        depths = [
            sum(1 for f in frames if f.proc == "recursive")
            for frames, _l, _c in profile.paths()
        ]
        assert max(depths) == 4  # recursive(3, .) -> 4 nested activations

    def test_method_qualname(self, traced):
        _, profile = traced
        procs = {f.proc for frames, _l, _c in profile.paths() for f in frames}
        assert "Helper.method" in procs

    def test_nested_start_rejected(self):
        tracer = TracingProfiler()
        tracer.start()
        try:
            with pytest.raises(ProfilerError):
                tracer.start()
        finally:
            tracer.stop()

    def test_stop_idempotent(self):
        tracer = TracingProfiler()
        tracer.start()
        tracer.stop()
        tracer.stop()  # must not raise

    def test_full_pipeline_to_views(self, traced):
        """Trace -> AST structure -> correlate -> views on real Python code."""
        _, profile = traced
        structure = build_python_structure([TARGET], load_module="target")
        exp = Experiment.from_profile(profile, structure, name="traced run")
        events = "line events"
        # the inner kernel dominates the line-event count via middle()
        callers = exp.callers_view()
        kernel = next(r for r in callers.roots if r.name == "inner_kernel")
        caller_names = {c.name for c in kernel.children}
        assert {"middle", "recursive", "Helper.method"} <= caller_names
        # the loop inside inner_kernel appears as a loop scope
        from repro.core.views import NodeCategory

        flat = exp.flat_view()
        kernel_flat = flat.find("inner_kernel", category=NodeCategory.PROCEDURE)
        loops = [c for c in kernel_flat.children if c.category.value == "loop"]
        assert loops, "inner_kernel's for-loop must appear in the Flat View"
        mid = exp.metric_id(events)
        assert loops[0].inclusive[mid] > 0


class TestSamplingProfiler:
    def test_samples_attribute_to_busy_function(self):
        def busy():
            deadline = time.perf_counter() + 0.25
            x = 0.0
            while time.perf_counter() < deadline:
                x += 1.0
            return x

        sampler = SamplingProfiler(period=0.002)
        with sampler:
            busy()
        assert sampler.samples_taken > 10
        leaf_procs = [
            frames[-1].proc for frames, _l, _c in sampler.profile.paths()
        ]
        assert any("busy" in p for p in leaf_procs)

    def test_sample_once_deterministic_path(self):
        sampler = SamplingProfiler(period=0.001)
        sampler._target_tid = threading.get_ident()

        def leaf():
            return sampler.sample_once()

        def caller():
            return leaf()

        assert caller() is True
        paths = list(sampler.profile.paths())
        assert len(paths) == 1
        frames, _line, costs = paths[0]
        names = [f.proc for f in frames]  # qualnames include '<locals>'
        caller_idx = next(i for i, n in enumerate(names) if n.endswith(".caller"))
        leaf_idx = next(i for i, n in enumerate(names) if n.endswith(".leaf"))
        assert caller_idx < leaf_idx
        assert costs == {0: 0.001}

    def test_cost_equals_samples_times_period(self):
        sampler = SamplingProfiler(period=0.004)
        sampler._target_tid = threading.get_ident()
        for _ in range(5):
            sampler.sample_once()
        total = sampler.profile.totals()[0]
        assert total == pytest.approx(5 * 0.004)

    def test_sampling_missing_thread_returns_false(self):
        sampler = SamplingProfiler()
        sampler._target_tid = 2**60  # no such thread
        assert sampler.sample_once() is False

    def test_invalid_period(self):
        with pytest.raises(ProfilerError):
            SamplingProfiler(period=0.0)

    def test_foreign_collapse(self):
        sampler = SamplingProfiler(period=0.001, roots=[HERE])
        sampler._target_tid = threading.get_ident()

        called = target_workload.entry(5)  # warm import path
        assert called

        def in_roots_leaf():
            return sampler.sample_once()

        # this test file is under HERE, so frames above are foreign-collapsed
        assert in_roots_leaf() is True
        frames, _l, _c = next(iter(sampler.profile.paths()))
        assert frames[0].proc == FOREIGN_PROC or frames[0].proc.startswith("Test")

    def test_sample_call_helper(self):
        result, profile = sample_call(target_workload.entry, 2000, period=0.001)
        assert result == target_workload.entry(2000)
        assert profile.metrics.by_name("wall time (s)").period == 0.001

"""Unit tests for the call-path profile trie and the counter model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ProfilerError
from repro.core.metrics import MetricTable
from repro.hpcrun.counters import (
    CYCLES,
    FLOPS,
    L1_DCM,
    MachineModel,
    standard_metric_table,
)
from repro.hpcrun.profile_data import Frame, ProfileData


def table():
    t = MetricTable()
    t.add("cycles")
    return t


MAIN = Frame("main", "a.c", 0)
WORK = Frame("work", "a.c", 5)
HELP = Frame("help", "b.c", 7)


class TestProfileData:
    def test_add_sample_builds_trie(self):
        p = ProfileData(table())
        p.add_sample([MAIN, WORK], 12, {0: 1.0})
        p.add_sample([MAIN, WORK], 12, {0: 2.0})
        p.add_sample([MAIN, HELP], 20, {0: 4.0})
        assert len(p) == 3  # main, work, help
        assert p.sample_count == 3
        assert p.totals() == {0: 7.0}

    def test_same_proc_different_call_lines_are_distinct(self):
        p = ProfileData(table())
        p.add_sample([MAIN, Frame("work", "a.c", 5)], 12, {0: 1.0})
        p.add_sample([MAIN, Frame("work", "a.c", 6)], 12, {0: 1.0})
        assert len(p) == 3

    def test_empty_path_rejected(self):
        p = ProfileData(table())
        with pytest.raises(ProfilerError):
            p.add_sample([], 1, {0: 1.0})

    def test_paths_round_trip(self):
        p = ProfileData(table())
        p.add_sample([MAIN, WORK], 12, {0: 1.0})
        p.add_sample([MAIN], 3, {0: 2.0})
        seen = {(tuple(f.proc for f in frames), line): costs
                for frames, line, costs in p.paths()}
        assert seen[(("main", "work"), 12)] == {0: 1.0}
        assert seen[(("main",), 3)] == {0: 2.0}

    def test_merge_into(self):
        a, b = ProfileData(table()), ProfileData(table())
        a.add_sample([MAIN, WORK], 12, {0: 1.0})
        b.add_sample([MAIN, WORK], 12, {0: 2.0})
        b.add_sample([MAIN, HELP], 20, {0: 5.0})
        a_profile_count = a.sample_count
        b.merge_into(a)
        assert a.totals() == {0: 8.0}
        assert a.sample_count == a_profile_count + 2

    def test_merge_requires_matching_metrics(self):
        a = ProfileData(table())
        other_table = MetricTable()
        other_table.add("different")
        b = ProfileData(other_table)
        with pytest.raises(ProfilerError):
            b.merge_into(a)

    def test_resampled_preserves_expectation(self):
        p = ProfileData(table())
        p.add_sample([MAIN], 3, {0: 10_000.0})
        rng = np.random.default_rng(0)
        draws = [p.resampled(period=1.0, rng=rng).totals().get(0, 0.0)
                 for _ in range(50)]
        assert np.mean(draws) == pytest.approx(10_000.0, rel=0.02)

    def test_resampled_rejects_bad_period(self):
        p = ProfileData(table())
        with pytest.raises(ProfilerError):
            p.resampled(period=0.0, rng=np.random.default_rng(0))

    def test_resampled_drops_zero_draws(self):
        p = ProfileData(table())
        p.add_sample([MAIN], 3, {0: 0.001})  # ~always zero samples
        rng = np.random.default_rng(1)
        out = p.resampled(period=1.0, rng=rng)
        assert out.totals().get(0, 0.0) in (0.0, 1.0)


class TestMachineModel:
    def test_standard_table(self):
        t = standard_metric_table()
        assert t.names()[:3] == [CYCLES, FLOPS, L1_DCM]

    def test_peak_compute_bound_kernel(self):
        m = MachineModel(peak_flops_per_cycle=4.0)
        costs = m.kernel_costs(flops=400.0, efficiency=1.0)
        assert costs[CYCLES] == pytest.approx(100.0)
        assert m.relative_efficiency(costs[CYCLES], costs[FLOPS]) == 1.0
        assert m.waste(costs[CYCLES], costs[FLOPS]) == 0.0

    def test_memory_bound_kernel_has_low_efficiency(self):
        m = MachineModel()
        costs = m.kernel_costs(flops=100.0, mem_refs=1000.0,
                               l1_miss_rate=0.5, efficiency=1.0)
        eff = m.relative_efficiency(costs[CYCLES], costs[FLOPS])
        assert eff < 0.01
        assert costs[L1_DCM] == 500.0

    def test_zero_costs_are_sparse(self):
        m = MachineModel()
        costs = m.kernel_costs(flops=4.0)
        assert L1_DCM not in costs

    def test_parameter_validation(self):
        m = MachineModel()
        with pytest.raises(ValueError):
            m.kernel_costs(mem_refs=10, l1_miss_rate=1.5)
        with pytest.raises(ValueError):
            m.kernel_costs(mem_refs=10, l2_miss_fraction=-0.1)
        with pytest.raises(ValueError):
            m.kernel_costs(flops=1, efficiency=0.0)

    def test_waste_and_efficiency_consistency(self):
        m = MachineModel(peak_flops_per_cycle=4.0)
        cycles, flops = 100.0, 24.0
        assert m.relative_efficiency(cycles, flops) == pytest.approx(0.06)
        assert m.waste(cycles, flops) == pytest.approx(376.0)
        assert m.relative_efficiency(0.0, 0.0) == 0.0

"""Tests for the scalable finalization step (partial summary reduction)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.metrics import MetricKind
from repro.hpcprof.merge import merge_ccts
from repro.hpcprof.summarize import (
    Moments,
    SummaryIds,
    finalize_partials,
    partial_summary,
    reduce_partials,
    summarize_ranks,
)
from repro.sim.spmd import run_spmd
from repro.sim.workloads import pflotran
from repro.hpcprof.correlate import correlate
from repro.hpcstruct.synthstruct import build_structure
from repro.core.attribution import attribute


NRANKS = 16


@pytest.fixture(scope="module")
def ranked():
    program = pflotran.build()
    structure = build_structure(program)
    profiles = run_spmd(program, NRANKS)
    ccts = []
    for profile in profiles:
        cct = correlate(profile, structure)
        attribute(cct)
        ccts.append(cct)
    combined = merge_ccts(ccts)
    return combined, ccts


def fresh_ids(metrics) -> SummaryIds:
    return SummaryIds(
        mean=metrics.add("s (mean)", kind=MetricKind.SUMMARY).mid,
        minimum=metrics.add("s (min)", kind=MetricKind.SUMMARY).mid,
        maximum=metrics.add("s (max)", kind=MetricKind.SUMMARY).mid,
        stddev=metrics.add("s (stddev)", kind=MetricKind.SUMMARY).mid,
    )


class TestReductionMatchesDirect:
    def test_two_way_split(self, ranked):
        from repro.core.metrics import MetricTable

        combined, ccts = ranked
        mid = 0

        # direct summarization (the reference)
        direct_metrics = MetricTable()
        direct_metrics.add("cycles")
        direct_ids = summarize_ranks(combined, ccts, direct_metrics, mid)
        reference = {
            node.uid: tuple(node.inclusive.get(m, None)
                            for m in direct_ids.all())
            for node in combined.walk()
        }
        # clear and recompute via partials
        for node in combined.walk():
            for m in direct_ids.all():
                node.inclusive.pop(m, None)
                node.exclusive.pop(m, None)

        half = NRANKS // 2
        p1 = partial_summary(combined, ccts[:half], mid)
        p2 = partial_summary(combined, ccts[half:], mid)
        reduced = reduce_partials(p1, p2)
        assert reduced[0] == NRANKS
        finalize_partials(combined, reduced, direct_metrics, direct_ids)

        for node in combined.walk():
            got = tuple(node.inclusive.get(m, None) for m in direct_ids.all())
            want = reference[node.uid]
            for g, w in zip(got, want):
                if w is None:
                    assert g is None
                else:
                    assert g == pytest.approx(w, rel=1e-9, abs=1e-9)

    def test_reduction_is_associative(self, ranked):
        combined, ccts = ranked
        mid = 0
        parts = [partial_summary(combined, [cct], mid) for cct in ccts[:6]]

        def stats(p):
            n, d = p
            return (n, {u: (m.count, round(m.mean, 9), round(m.m2, 6),
                            m.minimum, m.maximum) for u, m in d.items()})

        left = parts[0]
        for p in parts[1:]:
            left = reduce_partials(left, p)
        mid_split = reduce_partials(
            reduce_partials(parts[0], parts[1]),
            reduce_partials(reduce_partials(parts[2], parts[3]),
                            reduce_partials(parts[4], parts[5])),
        )
        assert stats(left) == stats(mid_split)

    def test_sparse_scope_zero_filling(self, ranked):
        """A scope present in one slice only must average over ALL ranks."""
        combined, ccts = ranked
        mid = 0
        p1 = partial_summary(combined, ccts[:1], mid)
        p2 = partial_summary(combined, ccts[1:2], mid)
        reduced = reduce_partials(p1, p2)
        _count, parts = reduced
        root_uid = combined.root.uid
        assert parts[root_uid].count == 2

    def test_zeros_moments(self):
        z = Moments.zeros(5)
        assert z.count == 5 and z.mean == 0.0 and z.stddev == 0.0
        assert Moments.zeros(0).count == 0
        combined = Moments.of([10.0])
        combined.merge(Moments.zeros(4))
        assert combined.mean == pytest.approx(2.0)
        assert combined.count == 5

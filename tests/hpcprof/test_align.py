"""Unit tests for N-way structural alignment (:mod:`repro.hpcprof.align`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.attribution import attribute
from repro.errors import DatabaseError, MetricError
from repro.hpcprof import database
from repro.hpcprof.align import align_members
from repro.hpcprof.experiment import Experiment
from repro.hpcstruct.synthstruct import build_structure
from repro.sim.executor import execute
from repro.sim.scale import scale_program
from repro.sim.workloads import fig1


def _scale_member(rank: int, nranks: int = 4, metric: str = "cycles",
                  name: str | None = None) -> Experiment:
    program = scale_program(fanout=2, depth=2, metric=metric)
    structure = build_structure(program)
    profile = execute(program, rank=rank, nranks=nranks, seed=5)
    return Experiment.from_profile(profile, structure,
                                   name=name or f"m{rank}")


def test_requires_at_least_two_members():
    with pytest.raises(MetricError, match="at least two"):
        align_members([_scale_member(0)])


def test_union_covers_all_members_and_marks_absences():
    """A member missing a subtree aligns: union keeps the scopes, its
    matrix row is zero exactly where the member had no values."""
    full = _scale_member(0)
    holed = _scale_member(1)
    holed.cct.prune(
        lambda n: not any(f.name == "p2_1" for f in n.call_path())
    )
    attribute(holed.cct)
    holed.cct.invalidate_caches()

    alignment = align_members([full, holed])
    union_names = {n.name for n in alignment.nodes}
    assert "p2_1" in union_names  # the dropped subtree survives in the union
    assert len(alignment.nodes) == len(list(full.cct.walk()))

    mid = alignment.mids[0]
    raw = alignment.matrix(mid, "raw")
    dropped_rows = [row for row, node in enumerate(alignment.nodes)
                    if any(f.name == "p2_1" for f in node.call_path())]
    assert dropped_rows
    assert np.all(raw[1, dropped_rows] == 0.0)
    assert np.any(raw[0, dropped_rows] != 0.0)


def test_union_raw_values_are_member_sums():
    a, b = _scale_member(0), _scale_member(1)
    alignment = align_members([a, b])
    mid = alignment.mids[0]
    total = alignment.union.cct.root.inclusive.get(mid, 0.0)
    assert total == pytest.approx(
        a.cct.root.inclusive.get(mid, 0.0)
        + b.cct.root.inclusive.get(mid, 0.0)
    )


def test_metric_signature_mismatch_is_refused():
    with pytest.raises(MetricError, match="cannot align member 1"):
        align_members([_scale_member(0),
                       _scale_member(1, metric="flops")])


def test_flavor_and_mid_validation():
    alignment = align_members([_scale_member(0), _scale_member(1)])
    with pytest.raises(MetricError, match="unknown flavor"):
        alignment.matrix(alignment.mids[0], "sideways")
    with pytest.raises(MetricError, match="not a raw metric"):
        alignment.matrix(999)


def test_working_set_budget_is_enforced():
    with pytest.raises(DatabaseError, match="working-set"):
        align_members([_scale_member(0), _scale_member(1)],
                      working_set_bytes=256)


def test_multi_rank_members_are_welcome(tmp_path):
    """Unlike the rank merge, alignment accepts multi-rank databases."""
    multi = Experiment.from_program(fig1.build(), nranks=2, seed=7)
    single = Experiment.from_program(fig1.build(), nranks=1, seed=7)
    path = tmp_path / "multi.rpdb"
    database.save(multi, str(path))
    alignment = align_members([single, str(path)])
    assert alignment.n_members == 2
    mid = alignment.mids[0]
    incl = alignment.matrix(mid, "inclusive")
    assert incl[1, 0] == multi.cct.root.inclusive.get(mid, 0.0)


def test_report_shape_and_summary():
    alignment = align_members([_scale_member(0), _scale_member(1)])
    report = alignment.report
    assert report.n_members == 2
    assert report.nnodes == len(alignment.nodes)
    assert report.matrix_bytes == (
        len(alignment.matrices) * 2 * report.nnodes * 8
    )
    text = report.summary()
    assert "aligned 2 experiment(s)" in text
    payload = report.to_payload()
    assert payload["union_scopes"] == report.nnodes


def test_members_are_not_mutated():
    a, b = _scale_member(0), _scale_member(1)
    before = [(n.kind, n.line, dict(n.raw)) for n in a.cct.walk()]
    metrics_before = len(a.metrics)
    align_members([a, b])
    assert [(n.kind, n.line, dict(n.raw)) for n in a.cct.walk()] == before
    assert len(a.metrics) == metrics_before

"""Deep-chain regression tests: no operation may recurse per tree level.

``sys.getrecursionlimit()`` defaults to 1000; a measured call chain of
5000 frames (deep recursion, co-routine trampolines, interpreters) must
still merge, attribute, prune, and difference correctly.  These trees are
built directly through the CCT API — the simulator itself executes
programs recursively, so it cannot produce them.
"""

from __future__ import annotations

import sys

import pytest

from repro.core.attribution import attribute, attribute_dicts
from repro.core.cct import CCT
from repro.core.metrics import MetricTable
from repro.hpcprof.merge import merge_ccts, scale_and_difference
from repro.hpcstruct.model import StructureModel

DEPTH = 5000


@pytest.fixture(scope="module")
def structure():
    model = StructureModel("deep")
    lm = model.add_load_module("deep.x")
    file_scope = model.add_file(lm, "deep.c")
    model.add_procedure(file_scope, "rec", 1, 20)
    return model


def deep_chain_cct(structure: StructureModel, depth: int, leaf_cost: float) -> CCT:
    """``rec -> rec -> …`` *depth* frames deep, costs on every statement."""
    cct = CCT()
    proc = structure.procedure("rec")
    node = cct.root.ensure_frame(proc)
    for _ in range(depth - 1):
        node.ensure_statement(2).add_raw({0: 1.0})
        node = node.ensure_call_site(5).ensure_frame(proc)
    node.ensure_statement(2).add_raw({0: leaf_cost})
    return cct


def test_chain_is_deeper_than_recursion_limit():
    assert DEPTH > sys.getrecursionlimit()


class TestDeepChain:
    def test_merge_and_attribute(self, structure):
        a = deep_chain_cct(structure, DEPTH, leaf_cost=2.0)
        b = deep_chain_cct(structure, DEPTH, leaf_cost=3.0)
        combined = merge_ccts([a, b])  # iterative _graft: no RecursionError
        # depth-1 interior levels contribute 2.0 each (1.0 per tree)
        assert combined.root.inclusive[0] == 2.0 * (DEPTH - 1) + 5.0
        # root + (frame + statement + call-site) per level, minus the
        # leaf level's absent call site
        assert len(combined) == 3 * DEPTH

    def test_both_attribution_backends(self, structure):
        cct = deep_chain_cct(structure, DEPTH, leaf_cost=2.0)
        attribute_dicts(cct)
        reference = {
            n.uid: (dict(n.inclusive), dict(n.exclusive)) for n in cct.walk()
        }
        attribute(cct, columnar=True)
        got = {n.uid: (dict(n.inclusive), dict(n.exclusive)) for n in cct.walk()}
        assert got == reference
        assert cct.root.inclusive[0] == float(DEPTH) + 1.0

    def test_prune_keeps_costed_chain(self, structure):
        cct = deep_chain_cct(structure, DEPTH, leaf_cost=2.0)
        assert cct.prune() == 0

    def test_prune_removes_costless_chain(self, structure):
        cct = deep_chain_cct(structure, DEPTH, leaf_cost=2.0)
        for node in cct.walk():
            node.raw.clear()
        removed = cct.prune()
        assert removed == 3 * DEPTH - 1  # everything but the root
        assert not cct.root.children

    def test_scale_and_difference_deep(self, structure):
        base = deep_chain_cct(structure, DEPTH, leaf_cost=2.0)
        scaled = deep_chain_cct(structure, DEPTH, leaf_cost=10.0)
        metrics = MetricTable()
        metrics.add("cycles")
        loss_mid = scale_and_difference(base, scaled, metrics, 0, factor=1.0)
        # interior statements cancel exactly; only the leaf lost ground
        assert scaled.root.inclusive[loss_mid] == 8.0

    def test_rank_vectors_deep(self, structure):
        from repro.hpcprof.merge import collect_rank_vectors

        ranks = [
            deep_chain_cct(structure, DEPTH, leaf_cost=float(r + 1))
            for r in range(2)
        ]
        for cct in ranks:
            attribute(cct)
        combined = merge_ccts(ranks)
        vectors = collect_rank_vectors(combined, ranks, 0)
        root_frame = combined.root.children[0]
        assert vectors[root_frame.uid].tolist() == [
            float(DEPTH) + 0.0,
            float(DEPTH) + 1.0,
        ]

"""Tests for statistical summarization (Moments, summary metrics)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.errors import MetricError
from repro.hpcprof.experiment import Experiment
from repro.hpcprof.summarize import Moments, imbalance_factor, summarize_ranks
from tests.hpcprof.test_merge import make_rank_program


class TestMoments:
    def test_basic_statistics(self):
        m = Moments.of([1.0, 2.0, 3.0, 4.0])
        assert m.count == 4
        assert m.mean == 2.5
        assert m.minimum == 1.0
        assert m.maximum == 4.0
        assert m.stddev == pytest.approx(np.std([1, 2, 3, 4]))

    def test_single_value(self):
        m = Moments.of([7.0])
        assert m.mean == 7.0
        assert m.stddev == 0.0

    def test_empty(self):
        m = Moments()
        assert m.count == 0
        assert m.variance == 0.0

    def test_merge_matches_batch(self):
        a = Moments.of([1.0, 5.0, 2.0])
        b = Moments.of([8.0, 3.0])
        a.merge(b)
        ref = Moments.of([1.0, 5.0, 2.0, 8.0, 3.0])
        assert a.count == ref.count
        assert a.mean == pytest.approx(ref.mean)
        assert a.m2 == pytest.approx(ref.m2)
        assert a.minimum == ref.minimum and a.maximum == ref.maximum

    def test_merge_with_empty_is_identity(self):
        a = Moments.of([2.0, 4.0])
        before = (a.count, a.mean, a.m2)
        a.merge(Moments())
        assert (a.count, a.mean, a.m2) == before

        empty = Moments()
        empty.merge(Moments.of([2.0, 4.0]))
        assert empty.mean == 3.0

    def test_total(self):
        assert Moments.of([2.0, 4.0, 6.0]).total == pytest.approx(12.0)


class TestSummarizeRanks:
    @pytest.fixture()
    def experiment(self):
        return Experiment.from_program(make_rank_program(), nranks=4)

    def test_summary_columns_registered(self, experiment):
        ids = experiment.summarize("cycles")
        names = experiment.metrics.names()
        assert "cycles (mean)" in names
        assert "cycles (min)" in names
        assert "cycles (max)" in names
        assert "cycles (stddev)" in names
        assert len(set(ids.all())) == 4

    def test_summary_values_at_root(self, experiment):
        ids = experiment.summarize("cycles")
        root = experiment.cct.root
        # rank inclusive totals are 20, 40, 60, 80
        assert root.inclusive[ids.mean] == 50.0
        assert root.inclusive[ids.minimum] == 20.0
        assert root.inclusive[ids.maximum] == 80.0
        assert root.inclusive[ids.stddev] == pytest.approx(np.std([20, 40, 60, 80]))

    def test_summarize_is_idempotent(self, experiment):
        first = experiment.summarize("cycles")
        second = experiment.summarize("cycles")
        assert first == second
        assert experiment.metrics.names().count("cycles (mean)") == 1

    def test_serial_experiment_rejects_summarize(self):
        exp = Experiment.from_program(make_rank_program(), nranks=1)
        with pytest.raises(Exception):
            exp.summarize("cycles")

    def test_summary_replaces_per_rank_storage(self, experiment):
        """The summary costs O(4) per scope regardless of rank count."""
        ids = experiment.summarize("cycles")
        root = experiment.cct.root
        summary_keys = [k for k in root.inclusive if k in ids.all()]
        assert len(summary_keys) == 4


class TestImbalanceFactor:
    def test_balanced(self):
        assert imbalance_factor(np.array([5.0, 5.0, 5.0])) == 1.0

    def test_imbalanced(self):
        assert imbalance_factor(np.array([1.0, 1.0, 4.0])) == 2.0

    def test_zero_work(self):
        assert imbalance_factor(np.zeros(8)) == 1.0


class TestRankVector:
    def test_rank_vector_for_view_row(self):
        exp = Experiment.from_program(make_rank_program(), nranks=4)
        view = exp.flat_view()
        solve = view.find("solve")
        vec = exp.rank_vector(solve, "cycles")
        assert list(vec) == [20.0, 40.0, 60.0, 80.0]

"""Unit tests for the bounded-memory rank-file merge
(:func:`repro.hpcprof.merge.merge_rank_files` and friends)."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.errors import DatabaseError
from repro.hpcprof import database
from repro.hpcprof.experiment import Experiment
from repro.hpcprof.merge import (
    map_structure,
    merge_experiments,
    merge_rank_files,
    remap_cct,
)
from repro.hpcstruct.synthstruct import build_structure
from repro.sim.executor import execute
from repro.sim.scale import generate_rank_files, scale_program
from repro.sim.workloads import fig1
from repro.viewer.table import render_view


@pytest.fixture()
def rank_paths(tmp_path):
    return generate_rank_files(str(tmp_path / "ranks"), 5,
                               fanout=3, depth=2)


class TestMergeRankFiles:
    def test_matches_in_memory_merge(self, rank_paths, tmp_path):
        out = str(tmp_path / "m.rpstore")
        report = merge_rank_files(rank_paths, out, summarize="all")
        assert report.nranks == 5
        assert os.path.samefile(report.out_path, out)
        streamed = database.load(out)
        reference = merge_experiments(
            [database.load(p) for p in rank_paths], summarize="all"
        )
        try:
            for a, b in zip(reference.views(), streamed.views()):
                assert render_view(a) == render_view(b)
            for rn, sn in zip(reference.cct.walk(), streamed.cct.walk()):
                assert dict(rn.inclusive) == dict(sn.inclusive)
                assert dict(rn.exclusive) == dict(sn.exclusive)
                assert np.array_equal(
                    reference.rank_vector(rn, "cycles"),
                    streamed.rank_vector(sn, "cycles"),
                )
        finally:
            streamed.close()

    def test_summary_describes_shape(self, rank_paths, tmp_path):
        report = merge_rank_files(rank_paths, str(tmp_path / "m.rpstore"))
        text = report.summary()
        assert "5 rank database(s)" in text
        assert "budget" in text

    def test_selective_summarize(self, rank_paths, tmp_path):
        report = merge_rank_files(rank_paths, str(tmp_path / "m.rpstore"),
                                  summarize=("cycles",))
        assert report.summarized == (0,)
        exp = database.load(report.out_path)
        try:
            assert any("(mean)" in d.name for d in exp.metrics)
        finally:
            exp.close()

    def test_no_summaries(self, rank_paths, tmp_path):
        report = merge_rank_files(rank_paths, str(tmp_path / "m.rpstore"),
                                  summarize=())
        assert report.summarized == ()
        exp = database.load(report.out_path)
        try:
            assert len(exp.metrics) == 1
        finally:
            exp.close()

    def test_working_set_budget_enforced(self, rank_paths, tmp_path):
        with pytest.raises(DatabaseError, match="working-set budget"):
            merge_rank_files(rank_paths, str(tmp_path / "m.rpstore"),
                             working_set_bytes=1024)

    def test_multi_rank_input_rejected(self, tmp_path, monkeypatch):
        # serialization never writes rank trees, so the guard can only
        # trip on an in-process loader handing back a multi-rank
        # experiment — simulate exactly that
        from repro.hpcprof import merge as merge_mod

        multi = Experiment.from_program(fig1.build(), nranks=3)
        monkeypatch.setattr(merge_mod, "_load_rank",
                            lambda path, strict=True: multi)
        with pytest.raises(DatabaseError, match="single-rank"):
            merge_rank_files(["fake.rpdb"], str(tmp_path / "m.rpstore"))

    def test_metric_signature_mismatch_rejected(self, rank_paths, tmp_path):
        odd_prog = scale_program(fanout=3, depth=2, metric="instructions")
        odd = Experiment.from_profile(
            execute(odd_prog, rank=0, nranks=1, seed=1),
            build_structure(odd_prog),
        )
        odd_path = str(tmp_path / "odd.rpdb")
        database.save(odd, odd_path)
        with pytest.raises(DatabaseError, match="metric"):
            merge_rank_files(rank_paths + [odd_path],
                             str(tmp_path / "m.rpstore"))

    def test_no_inputs_rejected(self, tmp_path):
        with pytest.raises(DatabaseError):
            merge_rank_files([], str(tmp_path / "m.rpstore"))

    def test_overwrite_flag(self, rank_paths, tmp_path):
        out = str(tmp_path / "m.rpstore")
        merge_rank_files(rank_paths, out)
        with pytest.raises(DatabaseError, match="already exists"):
            merge_rank_files(rank_paths, out)
        report = merge_rank_files(rank_paths[:3], out, overwrite=True)
        assert report.nranks == 3


class TestStructureMapping:
    def test_map_structure_bridges_uids(self):
        prog = scale_program(fanout=2, depth=2)
        a = build_structure(prog)
        b = build_structure(prog)  # same shape, independent uids
        mapping = map_structure(a, b)
        assert mapping[b.root.uid] is a.root
        # every node of b maps to the identically-keyed node of a
        a_uids = {node.uid for node in a.root.walk()}
        for node in b.root.walk():
            mapped = mapping[node.uid]
            assert mapped.key == node.key
            assert mapped.uid in a_uids

    def test_remap_cct_preserves_values_and_order(self):
        prog = scale_program(fanout=2, depth=2)
        structure = build_structure(prog)
        other = build_structure(prog)
        exp = Experiment.from_profile(
            execute(prog, rank=0, nranks=1, seed=5), other
        )
        mapping = map_structure(structure, other)
        remapped = remap_cct(exp.cct, mapping)
        canonical_uids = {node.uid for node in structure.root.walk()}
        for orig, new in zip(exp.cct.walk(), remapped.walk()):
            assert orig.kind == new.kind
            assert orig.line == new.line
            assert dict(orig.raw) == dict(new.raw)
            assert dict(orig.inclusive) == dict(new.inclusive)
            if new.struct is not None:
                assert new.struct.uid in canonical_uids

"""Tests for Experiment conveniences: from_sampler, describe, name sort."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.metrics import MetricFlavor, MetricSpec
from repro.hpcprof.experiment import Experiment
from repro.hpcrun.sampler import SamplingProfiler
from repro.hpcstruct.model import StructureModel
from repro.sim.workloads import fig1, s3d
from repro.viewer.navigation import NavigationState


class TestDescribe:
    def test_summary_contents(self):
        exp = Experiment.from_program(s3d.build())
        text = exp.describe()
        assert "experiment 's3d'" in text
        assert "procedure-frame=" in text
        assert "[0] PAPI_TOT_CYC (raw): total" in text
        assert "top procedures by PAPI_TOT_CYC:" in text
        assert "main" in text

    def test_recursive_top_list_uses_exposed_sums(self):
        exp = Experiment.from_program(fig1.build())
        text = exp.describe()
        # g must show 9 (exposed), not 14 (double-counted chain)
        g_line = next(l for l in text.splitlines() if l.strip().startswith("g "))
        assert "9" in g_line and "90.0%" in g_line


class TestFromSampler:
    def test_single_thread_mode(self):
        sampler = SamplingProfiler(period=0.001)
        sampler._target_tid = threading.get_ident()

        def leaf():
            return sampler.sample_once()

        leaf()
        structure = StructureModel("live")
        exp = Experiment.from_sampler(sampler, structure, name="live run")
        assert exp.name == "live run"
        assert exp.nranks == 1

    def test_all_threads_mode_builds_per_thread_trees(self):
        stop = threading.Event()

        def worker():
            x = 0.0
            while not stop.is_set():
                x += 1
            return x

        thread = threading.Thread(target=worker, daemon=True)
        sampler = SamplingProfiler(period=0.002, all_threads=True)
        thread.start()
        try:
            with sampler:
                time.sleep(0.2)
        finally:
            stop.set()
            thread.join()
        structure = StructureModel("live")
        exp = Experiment.from_sampler(sampler, structure)
        assert exp.nranks >= 2  # worker + main thread
        assert exp.cct.root.inclusive  # merged costs present


class TestNameSort:
    def test_alphabetical_ordering(self):
        exp = Experiment.from_program(s3d.build())
        view = exp.calling_context_view()
        state = NavigationState(view)
        state.expand(view.roots[0])
        state.sort_by_name()
        rows = [r.name for r, d in state.visible_rows() if d == 1]
        assert rows == sorted(rows)

    def test_metric_sort_restores(self):
        exp = Experiment.from_program(s3d.build())
        view = exp.calling_context_view()
        state = NavigationState(view)
        state.expand(view.roots[0])
        state.sort_by_name()
        state.sort_by(MetricSpec(0, MetricFlavor.INCLUSIVE))
        rows = [r for r, d in state.visible_rows() if d == 1]
        values = [view.value(r, state.column) for r in rows]
        assert values == sorted(values, reverse=True)


class TestRankExperiment:
    def test_single_rank_extraction(self):
        from repro.sim.spmd import spmd_experiment
        from repro.sim.workloads import pflotran
        from repro.hpcrun.counters import CYCLES

        exp = spmd_experiment(pflotran.build(), nranks=8)
        vec = exp.rank_vector(exp.cct.root, CYCLES)
        worst = int(vec.argmax())
        solo = exp.rank_experiment(worst)
        assert f"[rank {worst}]" in solo.name
        assert solo.nranks == 1
        assert solo.total(CYCLES) == pytest.approx(vec[worst])
        # the solo experiment supports the full analysis surface
        result = solo.hot_path(CYCLES)
        assert result.hotspot_value > 0

    def test_bounds_and_serial_rejection(self):
        from repro.core.errors import ViewError
        from repro.sim.spmd import spmd_experiment
        from repro.sim.workloads import pflotran

        exp = spmd_experiment(pflotran.build(), nranks=2)
        with pytest.raises(ViewError):
            exp.rank_experiment(5)
        serial = Experiment.from_program(s3d.build())
        with pytest.raises(ViewError):
            serial.rank_experiment(0)

"""Process-pool rank reduction vs. serial reduction: identical Moments.

The acceptance bar for parallelizing the summarization is exactness:
chunk boundaries and the pairwise merge tree are fixed, so a process
pool changes *where* Welford partials are computed, never the arithmetic
— count/mean/m2/min/max must match the serial reduction bit for bit for
64 simulated ranks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import MetricError
from repro.hpcprof.merge import collect_rank_matrix
from repro.hpcprof.summarize import (
    Moments,
    _merge_stats,
    _welford_chunk,
    rank_moments,
    summarize_ranks,
)
from repro.sim.spmd import spmd_experiment
from repro.sim.workloads import pflotran

NRANKS = 64


@pytest.fixture(scope="module")
def exp64():
    return spmd_experiment(pflotran.build(), nranks=NRANKS)


@pytest.fixture(scope="module")
def matrix64(exp64):
    _nodes, matrix = collect_rank_matrix(exp64.cct, exp64.rank_ccts, 0)
    assert matrix.shape[1] == NRANKS
    return matrix


def as_moments(stats, row: int) -> Moments:
    count, mean, m2, minimum, maximum = stats
    return Moments(
        count=count,
        mean=float(mean[row]),
        m2=float(m2[row]),
        minimum=float(minimum[row]),
        maximum=float(maximum[row]),
    )


class TestPoolIdentity:
    def test_pool_equals_serial_bitwise(self, matrix64):
        serial = rank_moments(matrix64, max_workers=1)
        pooled = rank_moments(matrix64, max_workers=4)
        assert pooled[0] == serial[0] == NRANKS
        for got, want in zip(pooled[1:], serial[1:]):
            assert np.array_equal(got, want)  # exact, not approx

    def test_every_moment_field_identical(self, matrix64):
        serial = rank_moments(matrix64, max_workers=1)
        pooled = rank_moments(matrix64, max_workers=4)
        for row in range(matrix64.shape[0]):
            assert as_moments(pooled, row) == as_moments(serial, row)

    def test_welford_chunk_matches_scalar_accumulator(self, matrix64):
        stats = _welford_chunk(matrix64)  # single chunk: pure Welford
        for row in range(0, matrix64.shape[0], 7):
            reference = Moments.of(matrix64[row])
            assert as_moments(stats, row) == reference

    def test_chunked_tree_matches_moments_merge(self, matrix64):
        """The vectorized merge replicates Moments.merge exactly: reducing
        two chunk partials row-wise equals merging scalar accumulators."""
        lo, hi = matrix64[:, :16], matrix64[:, 16:32]
        merged = _merge_stats(_welford_chunk(lo), _welford_chunk(hi))
        for row in range(0, matrix64.shape[0], 11):
            reference = Moments.of(lo[row]).merge(Moments.of(hi[row]))
            assert as_moments(merged, row) == reference

    def test_summarize_ranks_pool_equals_serial(self, exp64):
        from repro.core.metrics import MetricTable
        from repro.hpcprof.merge import merge_ccts

        def run(max_workers):
            combined = merge_ccts(exp64.rank_ccts)
            metrics = MetricTable()
            metrics.add("cycles")
            ids = summarize_ranks(
                combined, exp64.rank_ccts, metrics, 0, max_workers=max_workers
            )
            # keyed by preorder position: each merge mints fresh node uids
            return [
                (dict(node.inclusive), dict(node.exclusive))
                for node in combined.walk()
            ], ids

        serial, ids_a = run(max_workers=1)
        pooled, ids_b = run(max_workers=4)
        assert ids_a == ids_b
        assert pooled == serial  # bit-for-bit, every scope and column

    def test_pool_matches_default_numpy_path_closely(self, exp64, matrix64):
        """Welford tree vs. np axis kernels: same statistics up to FP noise
        (they use different summation orders by design)."""
        count, mean, m2, minimum, maximum = rank_moments(matrix64, max_workers=4)
        variance = m2 / count
        assert mean == pytest.approx(matrix64.mean(axis=1), rel=1e-12)
        assert np.array_equal(minimum, matrix64.min(axis=1))
        assert np.array_equal(maximum, matrix64.max(axis=1))
        assert np.sqrt(np.maximum(variance, 0.0)) == pytest.approx(
            matrix64.std(axis=1), rel=1e-9, abs=1e-12
        )

    def test_rank_moments_rejects_empty(self):
        with pytest.raises(MetricError):
            rank_moments(np.zeros((3, 0)))

    def test_odd_chunk_counts(self, matrix64):
        """Uneven trees (odd leaf counts) still reduce identically."""
        for chunk in (5, 7, 13, 63):
            serial = rank_moments(matrix64, max_workers=1, chunk_ranks=chunk)
            pooled = rank_moments(matrix64, max_workers=3, chunk_ranks=chunk)
            for got, want in zip(pooled[1:], serial[1:]):
                assert np.array_equal(got, want)

"""Round-trip tests for the XML and binary experiment databases."""

from __future__ import annotations

import pytest

from repro.core.errors import DatabaseError
from repro.core.metrics import MetricKind
from repro.hpcprof import binio, database, xmlio
from repro.hpcprof.experiment import Experiment
from repro.sim.workloads import fig1
from tests.hpcprof.test_merge import make_rank_program


def tree_snapshot(cct):
    """Structural + metric content of a CCT, identity-free."""
    out = []

    def visit(node, depth):
        struct_key = (
            (node.struct.kind.value, node.struct.name, node.struct.location.file,
             node.struct.location.line)
            if node.struct is not None
            else None
        )
        out.append(
            (
                depth,
                node.kind.value,
                struct_key,
                node.line,
                tuple(sorted(node.raw.items())),
                tuple(sorted(node.inclusive.items())),
                tuple(sorted(node.exclusive.items())),
            )
        )
        for child in sorted(node.children, key=lambda c: c.key):
            visit(child, depth + 1)

    visit(cct.root, 0)
    return out


@pytest.fixture()
def experiment():
    exp = Experiment.from_program(fig1.build())
    exp.add_derived_metric("double", "2 * $0")
    return exp


@pytest.fixture()
def parallel_experiment():
    exp = Experiment.from_program(make_rank_program(), nranks=4)
    exp.summarize("cycles")
    return exp


@pytest.mark.parametrize("codec", [xmlio, binio], ids=["xml", "binary"])
class TestRoundTrip:
    def dumps(self, codec, exp):
        return codec.dumps_xml(exp) if codec is xmlio else codec.dumps_binary(exp)

    def loads(self, codec, data):
        return codec.loads_xml(data) if codec is xmlio else codec.loads_binary(data)

    def test_cct_round_trip_identity(self, codec, experiment):
        loaded = self.loads(codec, self.dumps(codec, experiment))
        assert tree_snapshot(loaded.cct) == tree_snapshot(experiment.cct)

    def test_metric_table_round_trip(self, codec, experiment):
        loaded = self.loads(codec, self.dumps(codec, experiment))
        assert loaded.metrics.names() == experiment.metrics.names()
        derived = loaded.metrics.by_name("double")
        assert derived.kind is MetricKind.DERIVED
        assert derived.formula == "2 * $0"

    def test_name_round_trip(self, codec, experiment):
        loaded = self.loads(codec, self.dumps(codec, experiment))
        assert loaded.name == experiment.name

    def test_structure_round_trip(self, codec, experiment):
        loaded = self.loads(codec, self.dumps(codec, experiment))
        assert loaded.structure.stats() == experiment.structure.stats()
        g = loaded.structure.procedure("g")
        assert g.location.file == "file2.c"
        assert (3, "g") in g.calls and (4, "h") in g.calls

    def test_views_work_after_load(self, codec, experiment):
        loaded = self.loads(codec, self.dumps(codec, experiment))
        mid = loaded.metric_id(fig1.METRIC)
        callers = loaded.callers_view()
        g = next(r for r in callers.roots if r.name == "g")
        assert (g.inclusive[mid], g.exclusive[mid]) == (9.0, 4.0)

    def test_summary_metrics_survive(self, codec, parallel_experiment):
        ids = parallel_experiment.summarize("cycles")
        loaded = self.loads(codec, self.dumps(codec, parallel_experiment))
        root = loaded.cct.root
        assert root.inclusive[ids.mean] == 50.0
        assert root.inclusive[ids.maximum] == 80.0

    def test_double_round_trip_is_stable(self, codec, experiment):
        once = self.loads(codec, self.dumps(codec, experiment))
        twice = self.loads(codec, self.dumps(codec, once))
        assert tree_snapshot(once.cct) == tree_snapshot(twice.cct)


class TestDispatch:
    def test_save_load_by_extension(self, experiment, tmp_path):
        for name in ["db.xml", "db.rpdb"]:
            path = str(tmp_path / name)
            size = database.save(experiment, path)
            assert size > 0
            loaded = database.load(path)
            assert tree_snapshot(loaded.cct) == tree_snapshot(experiment.cct)

    def test_binary_is_smaller_than_xml(self, parallel_experiment, tmp_path):
        xml_size = database.save(parallel_experiment, str(tmp_path / "db.xml"))
        bin_size = database.save(parallel_experiment, str(tmp_path / "db.rpdb"))
        assert bin_size < xml_size

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(DatabaseError):
            database.load(str(tmp_path / "nope.rpdb"))

    def test_load_garbage(self, tmp_path):
        path = tmp_path / "garbage.rpdb"
        path.write_bytes(b"definitely not a database")
        with pytest.raises(DatabaseError):
            database.load(str(path))

    def test_truncated_binary(self, experiment, tmp_path):
        data = binio.dumps_binary(experiment)
        with pytest.raises(DatabaseError):
            binio.loads_binary(data[: len(data) // 2])

    def test_malformed_xml(self):
        with pytest.raises(DatabaseError):
            xmlio.loads_xml(b"<CallPathExperiment><oops></CallPathExperiment>")
        with pytest.raises(DatabaseError):
            xmlio.loads_xml(b"<SomethingElse/>")

"""Version and schema robustness of the experiment databases."""

from __future__ import annotations

import struct

import pytest

from repro.core.errors import DatabaseError
from repro.hpcprof import binio, xmlio
from repro.hpcprof.experiment import Experiment
from repro.sim.workloads import fig1


@pytest.fixture(scope="module")
def blob():
    return binio.dumps_binary(Experiment.from_program(fig1.build()))


class TestBinaryVersioning:
    def test_future_version_rejected(self, blob):
        bumped = blob[:4] + struct.pack("<H", 99) + blob[6:]
        with pytest.raises(DatabaseError) as err:
            binio.loads_binary(bumped)
        assert "version" in str(err.value)

    def test_bad_magic_rejected(self, blob):
        with pytest.raises(DatabaseError):
            binio.loads_binary(b"XXXX" + blob[4:])

    def test_empty_input(self):
        with pytest.raises(DatabaseError):
            binio.loads_binary(b"")

    @pytest.mark.parametrize("cut", [10, 50, 100, 200])
    def test_truncation_at_many_offsets(self, blob, cut):
        if cut < len(blob):
            with pytest.raises(DatabaseError):
                binio.loads_binary(blob[:cut])


class TestXmlSchema:
    def test_sparse_metric_ids_rejected(self):
        doc = (
            b"<CallPathExperiment version='1.0' name='x'>"
            b"<MetricTable><Metric i='1' n='a' u='' p='1.0' k='raw' f='' "
            b"d='' pct='1'/></MetricTable>"
            b"<Structure><S i='0' k='root' n='x' f='' l='0' e='0' c=''/>"
            b"</Structure><CCT><N k='root' s='-1' l='0'/></CCT>"
            b"</CallPathExperiment>"
        )
        with pytest.raises(DatabaseError) as err:
            xmlio.loads_xml(doc)
        assert "dense" in str(err.value)

    def test_multiple_structure_roots_rejected(self):
        doc = (
            b"<CallPathExperiment version='1.0' name='x'>"
            b"<MetricTable/>"
            b"<Structure>"
            b"<S i='0' k='root' n='x' f='' l='0' e='0' c=''/>"
            b"<S i='1' k='root' n='y' f='' l='0' e='0' c=''/>"
            b"</Structure><CCT><N k='root' s='-1' l='0'/></CCT>"
            b"</CallPathExperiment>"
        )
        with pytest.raises(DatabaseError):
            xmlio.loads_xml(doc)

    def test_minimal_valid_document(self):
        doc = (
            b"<CallPathExperiment version='1.0' name='tiny'>"
            b"<MetricTable><Metric i='0' n='c' u='' p='1.0' k='raw' f='' "
            b"d='' pct='1'/></MetricTable>"
            b"<Structure><S i='0' k='root' n='t' f='' l='0' e='0' c=''/>"
            b"</Structure><CCT><N k='root' s='-1' l='0'/></CCT>"
            b"</CallPathExperiment>"
        )
        exp = xmlio.loads_xml(doc)
        assert exp.name == "tiny"
        assert exp.metrics.names() == ["c"]
        assert len(exp.cct) == 1

"""Tests for CCT merging and cross-experiment analyses."""

from __future__ import annotations

import pytest

from repro.core.attribution import attribute
from repro.hpcprof.correlate import correlate
from repro.hpcprof.merge import collect_rank_vectors, merge_ccts, scale_and_difference
from repro.hpcstruct.synthstruct import build_structure
from repro.sim.executor import execute
from repro.sim.program import Call, Loop, Module, Procedure, Program, Work
from repro.sim.workloads import fig1


def make_rank_program(metric="cycles"):
    """A small SPMD-like program whose work depends on the rank."""

    def work(ctx):
        return {metric: 10.0 * (1 + ctx.rank)}

    return Program(
        name="ranked",
        modules=[
            Module(
                path="main.c",
                procedures=[
                    Procedure(
                        name="main",
                        line=1,
                        body=[Call(line=2, callee="solve")],
                    ),
                    Procedure(
                        name="solve",
                        line=10,
                        body=[
                            Loop(line=11, end_line=13, trips=2,
                                 body=[Work(line=12, costs=work)]),
                        ],
                    ),
                ],
            )
        ],
        entry="main",
        metrics=[(metric, "cycles")],
    )


@pytest.fixture()
def rank_ccts():
    program = make_rank_program()
    structure = build_structure(program)
    ccts = []
    for rank in range(4):
        profile = execute(program, rank=rank, nranks=4)
        cct = correlate(profile, structure)
        attribute(cct)
        ccts.append(cct)
    return ccts


class TestMerge:
    def test_merged_totals_are_sums(self, rank_ccts):
        combined = merge_ccts(rank_ccts)
        # ranks contribute 20, 40, 60, 80 cycles (work x 2 loop trips)
        assert combined.root.inclusive.get(0) == 200.0

    def test_merge_preserves_tree_shape(self, rank_ccts):
        combined = merge_ccts(rank_ccts)
        assert len(combined) == len(rank_ccts[0])

    def test_merge_commutative(self, rank_ccts):
        a = merge_ccts(rank_ccts)
        b = merge_ccts(list(reversed(rank_ccts)))

        def snapshot(cct):
            out = {}

            def visit(node, path):
                key = path + (node.key,)
                out[key] = dict(node.inclusive)
                for child in node.children:
                    visit(child, key)

            visit(cct.root, ())
            return out

        assert snapshot(a) == snapshot(b)

    def test_merge_associative(self, rank_ccts):
        left = merge_ccts([merge_ccts(rank_ccts[:2]), merge_ccts(rank_ccts[2:])])
        flat = merge_ccts(rank_ccts)
        assert left.root.inclusive == flat.root.inclusive

    def test_merge_of_disjoint_trees_unions(self):
        p1 = fig1.build()
        structure = build_structure(p1)
        cct1 = correlate(execute(p1), structure)
        attribute(cct1)
        combined = merge_ccts([cct1, cct1])
        assert combined.root.inclusive.get(0) == 20.0


class TestRankVectors:
    def test_vector_values_per_rank(self, rank_ccts):
        combined = merge_ccts(rank_ccts)
        vectors = collect_rank_vectors(combined, rank_ccts, mid=0)
        root_vec = vectors[combined.root.uid]
        assert list(root_vec) == [20.0, 40.0, 60.0, 80.0]

    def test_absent_scope_contributes_zero(self, rank_ccts):
        # drop rank 2's profile: its slot must read 0 for every scope
        combined = merge_ccts(rank_ccts)
        sparse = [rank_ccts[0], rank_ccts[1]]
        vectors = collect_rank_vectors(combined, sparse, mid=0)
        assert list(vectors[combined.root.uid]) == [20.0, 40.0]


class TestScaleAndDifference:
    def test_perfect_scaling_has_zero_loss(self):
        program = fig1.build()
        structure = build_structure(program)
        base = correlate(execute(program), structure)
        attribute(base)
        big = merge_ccts([base, base])  # exactly 2x everywhere
        metrics = _table_copy()
        loss_mid = scale_and_difference(base, big, metrics, mid=0, factor=2.0)
        assert big.root.inclusive.get(loss_mid, 0.0) == 0.0

    def test_excess_cost_is_attributed_in_context(self):
        program = fig1.build()
        structure = build_structure(program)
        base = correlate(execute(program), structure)
        attribute(base)
        big = merge_ccts([base, base])
        # plant 5 extra cycles in one specific context of the big run
        h = next(f for f in big.frames() if f.name == "h")
        stmt = next(n for n in h.walk() if n.kind.value == "statement")
        stmt.raw[0] = stmt.raw.get(0, 0.0) + 5.0
        metrics = _table_copy()
        loss_mid = scale_and_difference(base, big, metrics, mid=0, factor=2.0)
        assert big.root.inclusive.get(loss_mid) == 5.0
        assert stmt.exclusive.get(loss_mid) == 5.0
        # contexts without excess show no loss
        g3 = next(
            f for f in big.frames()
            if f.name == "g" and f.parent.enclosing_frame.name == "m"
        )
        assert g3.inclusive.get(loss_mid, 0.0) == 0.0


def _table_copy():
    from repro.core.metrics import MetricTable

    table = MetricTable()
    table.add("cycles", unit="cycles")
    return table

"""Tests for the dense metric projection and its vectorized kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import MetricError
from repro.hpcprof.dense import DenseMetrics, attribute_dense
from repro.hpcprof.experiment import Experiment
from repro.sim.workloads import fig1, s3d
from repro.sim.workloads.synthetic import uniform_tree


@pytest.fixture(scope="module")
def s3d_exp():
    return Experiment.from_program(s3d.build())


@pytest.fixture(scope="module")
def dense(s3d_exp):
    return DenseMetrics.from_cct(s3d_exp.cct, len(s3d_exp.metrics))


class TestProjection:
    def test_shape_and_preorder(self, s3d_exp, dense):
        n = len(s3d_exp.cct)
        assert dense.raw.shape == (n, 3)
        assert dense.parent_rows[0] == -1
        # preorder: every parent row precedes its children
        assert all(
            dense.parent_rows[row] < row for row in range(1, n)
        )

    def test_matches_sparse_values(self, s3d_exp, dense):
        for node in s3d_exp.cct.walk():
            row = dense.index[node.uid]
            for mid in range(3):
                assert dense.inclusive[row, mid] == node.inclusive.get(mid, 0.0)
                assert dense.exclusive[row, mid] == node.exclusive.get(mid, 0.0)

    def test_invalid_metric_count(self, s3d_exp):
        with pytest.raises(MetricError):
            DenseMetrics.from_cct(s3d_exp.cct, 0)


class TestVectorizedKernels:
    def test_totals(self, s3d_exp, dense):
        totals = dense.totals()
        for mid in range(3):
            assert totals[mid] == s3d_exp.cct.root.inclusive.get(mid, 0.0)

    def test_shares_sum_properties(self, dense):
        shares = dense.shares(0)
        assert shares[0] == 1.0
        assert np.all(shares >= 0) and np.all(shares <= 1.0 + 1e-12)

    def test_top_k_matches_naive(self, s3d_exp, dense):
        top = dense.top_k(0, k=5, exclusive=True)
        naive = sorted(
            ((n, n.exclusive.get(0, 0.0)) for n in s3d_exp.cct.walk()),
            key=lambda t: -t[1],
        )[:5]
        assert [v for _n, v in top] == [v for _n, v in naive]

    def test_recompute_inclusive_matches_eq2(self, s3d_exp):
        dense = attribute_dense(s3d_exp.cct, 3)
        for node in s3d_exp.cct.walk():
            row = dense.index[node.uid]
            for mid in range(3):
                assert dense.inclusive[row, mid] == pytest.approx(
                    node.inclusive.get(mid, 0.0)
                )

    def test_recompute_on_recursive_tree(self):
        exp = Experiment.from_program(fig1.build())
        dense = attribute_dense(exp.cct, 1)
        assert dense.inclusive[0, 0] == 10.0


class TestAblationFacts:
    def test_raw_data_is_actually_sparse(self):
        """The paper's premise quantified: raw costs live on leaves, so
        most raw cells are zero; inclusive densifies by construction."""
        exp = Experiment.from_program(s3d.build())
        dense = DenseMetrics.from_cct(exp.cct, len(exp.metrics))
        assert dense.nonzero_fraction("raw") < 0.5
        assert dense.nonzero_fraction("inclusive") > \
            dense.nonzero_fraction("raw")

    def test_memory_comparison_runs(self):
        exp = Experiment.from_program(uniform_tree(6, 3))
        dense = DenseMetrics.from_cct(exp.cct, 1)
        assert dense.memory_bytes() > 0
        assert DenseMetrics.sparse_memory_bytes(exp.cct) > 0

"""Direct unit tests for the correlation step."""

from __future__ import annotations

import pytest

from repro.core.attribution import attribute
from repro.core.cct import CCTKind
from repro.core.metrics import MetricTable
from repro.hpcprof.correlate import Correlator, correlate
from repro.hpcrun.profile_data import Frame, ProfileData
from repro.hpcstruct.model import (
    SourceLocation,
    StructKind,
    StructureModel,
    StructureNode,
)


@pytest.fixture()
def structure():
    model = StructureModel("corr")
    lm = model.add_load_module("corr.x")
    f = model.add_file(lm, "corr.c")
    main = model.add_procedure(f, "main", 1, 40)
    model.add_procedure(f, "kernel", 50, 90)
    # a loop in main spanning lines 10-30, with the kernel call inside
    StructureNode(StructKind.LOOP, "loop@10",
                  SourceLocation("corr.c", 10, 30), parent=main)
    main.calls = ((20, "kernel"),)
    return model


def make_profile(samples):
    table = MetricTable()
    table.add("cost")
    profile = ProfileData(table)
    for frames, line, value in samples:
        profile.add_sample(frames, line, {0: value})
    return profile


MAIN = Frame("main", "corr.c", 0)


class TestCorrelation:
    def test_call_site_nests_inside_enclosing_loop(self, structure):
        profile = make_profile([
            ([MAIN, Frame("kernel", "corr.c", 20)], 55, 3.0),
        ])
        cct = correlate(profile, structure)
        attribute(cct)
        main = next(iter(cct.root.children))
        loop = next(c for c in main.children if c.kind is CCTKind.LOOP)
        site = next(c for c in loop.children if c.kind is CCTKind.CALL_SITE)
        kernel = next(c for c in site.children if c.kind is CCTKind.FRAME)
        assert kernel.name == "kernel"
        assert loop.inclusive == {0: 3.0}

    def test_leaf_sample_at_known_call_line_hits_call_site(self, structure):
        """A sample whose PC sits at a call instruction attributes to the
        CALL_SITE scope (main.calls marks line 20), merging with the
        call path that runs through that site."""
        profile = make_profile([
            ([MAIN], 20, 1.0),                                  # at the call
            ([MAIN, Frame("kernel", "corr.c", 20)], 55, 2.0),   # through it
        ])
        cct = correlate(profile, structure)
        attribute(cct)
        main = next(iter(cct.root.children))
        loop = next(c for c in main.children if c.kind is CCTKind.LOOP)
        sites = [c for c in loop.children if c.kind is CCTKind.CALL_SITE]
        assert len(sites) == 1              # merged, not duplicated
        assert sites[0].raw == {0: 1.0}
        assert sites[0].inclusive == {0: 3.0}
        assert main.exclusive == {0: 1.0}   # the call-line cost is main's

    def test_sample_outside_any_loop_is_direct_statement(self, structure):
        profile = make_profile([([MAIN], 35, 4.0)])
        cct = correlate(profile, structure)
        main = next(iter(cct.root.children))
        stmt = next(c for c in main.children if c.kind is CCTKind.STATEMENT)
        assert stmt.line == 35

    def test_unknown_procedure_synthesized_under_unknown_module(self, structure):
        profile = make_profile([
            ([MAIN, Frame("libc_read", "", 20)], 0, 1.0),
        ])
        cct = correlate(profile, structure)
        frames = {f.name: f for f in cct.frames()}
        assert "libc_read" in frames
        lib = frames["libc_read"].struct
        assert lib.enclosing_file.parent.name == "<unknown load module>"
        # and it is now findable for subsequent samples
        assert structure.find_procedure("libc_read") is not None

    def test_multiple_profiles_merge_into_one_correlator(self, structure):
        correlator = Correlator(structure)
        correlator.add_profile(make_profile([([MAIN], 35, 1.0)]))
        correlator.add_profile(make_profile([([MAIN], 35, 2.0)]))
        attribute(correlator.cct)
        assert correlator.cct.root.inclusive == {0: 3.0}
        assert len(correlator.cct) == 3  # root, main, statement

    def test_empty_profile_gives_empty_tree(self, structure):
        cct = correlate(make_profile([]), structure)
        assert len(cct) == 1

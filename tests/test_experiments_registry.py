"""Integration: every registered reproduction experiment must REPRODUCE.

This is the repo's headline test — it drives each figure's full pipeline
and asserts every paper-vs-measured row lands within tolerance.
"""

from __future__ import annotations

import pytest

from repro.experiments.registry import ALL, run_all, to_markdown


@pytest.mark.parametrize("exp_id", sorted(ALL))
def test_experiment_reproduces(exp_id):
    report = ALL[exp_id]()
    failing = [r for r in report.rows if r.ok is False]
    assert not failing, (
        f"{exp_id} deviates from the paper:\n"
        + "\n".join(r.render() for r in failing)
    )


def test_run_all_selected_order():
    reports = run_all(["fig4", "fig2"])
    assert [r.exp_id for r in reports] == ["Fig.4", "Fig.2"]


def test_unknown_id_rejected():
    with pytest.raises(KeyError):
        run_all(["nope"])


def test_markdown_rendering():
    reports = run_all(["fig4"])
    md = to_markdown(reports)
    assert md.startswith("# EXPERIMENTS")
    assert "1/1 experiments reproduce" in md
    assert "| quantity | paper | measured |" in md


def test_report_row_semantics():
    from repro.experiments.report import ExperimentReport, Row

    report = ExperimentReport("X", "test")
    report.add("num ok", 10.0, 10.3, tolerance=0.5)
    report.add("num bad", 10.0, 11.0, tolerance=0.5)
    report.add("informational", None, 42.0)
    report.add("string match", "a", "a", tolerance=0.0)
    rows = report.rows
    assert rows[0].ok is True
    assert rows[1].ok is False
    assert rows[2].ok is None
    assert rows[3].ok is True
    assert not report.all_ok
    assert "MISMATCH" in report.render()
    assert Row("r", 1.0, 1.0, tolerance=0.0).ok is True

"""The kill-anywhere battery: crash at every corpus transition point.

Every named crash point in the catalog (staging written, intent
journaled, payload renamed, commit journaled, sources cleaned, …) is
driven twice:

* **in-process** — :func:`repro.testing.faults.crashing_at` raises at
  the point, the catalog object is discarded, and a fresh
  :func:`open_corpus` runs recovery — fast enough to sweep all points
  in tier-1;
* **subprocess** (``kill -9`` for real) — the ``REPRO_CRASH_POINT``
  environment variable makes the child SIGKILL itself at the point;
  the parent then recovers.  The full sweep is ``-m chaos``; one
  representative kill stays unmarked as tier-1 insurance.

After every crash + recovery the same invariants hold: committed
profiles load bit-identically, in-flight work is either absent or
cleanly resumed, staging holds no debris, compaction converges when
re-run, and the journal replays without error.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys

import pytest

from repro.corpus import CRASH_POINTS, CorpusCatalog, open_corpus
from repro.testing.faults import CrashPointHit, crashing_at

INGEST_POINTS = tuple(p for p in CRASH_POINTS if ".ingest." in p)
COMPACT_POINTS = tuple(p for p in CRASH_POINTS if ".compact." in p)
EVICT_POINTS = tuple(p for p in CRASH_POINTS if ".evict." in p)

#: ingest points where the rename already happened — recovery must
#: *resume* (the rename is the promise); at earlier points the upload
#: must be absent without a trace
RESUMED_INGEST = {"corpus.ingest.renamed", "corpus.ingest.committed"}
#: compaction points where the merged store landed at its final path
LANDED_COMPACT = {
    "corpus.compact.renamed",
    "corpus.compact.committed",
    "corpus.compact.cleaned",
}


def _no_debris(root: str) -> None:
    assert os.listdir(os.path.join(root, "staging")) == []


def _crash(point: str, fn) -> None:
    with pytest.raises(CrashPointHit):
        with crashing_at(point):
            fn()


# --------------------------------------------------------------------- #
# in-process battery (unmarked: the whole sweep runs in tier-1)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("point", INGEST_POINTS)
def test_ingest_crash_recovers(point, tmp_path, profile_bytes):
    root = str(tmp_path / "c")
    catalog = CorpusCatalog(root, create=True)
    baseline = catalog.ingest_bytes("t", profile_bytes, name="keeper")
    _crash(point, lambda: catalog.ingest_bytes(
        "t", profile_bytes, name="doomed", meta={"k": "v"}))
    del catalog

    with open_corpus(root) as after:
        # the pre-crash profile is untouched, bit for bit
        assert after.read_bytes("t", baseline.pid) == profile_bytes
        names = {e.name for e in after.list("t")}
        if point in RESUMED_INGEST:
            assert "doomed" in names, "post-rename crash must resume"
            resumed = next(e for e in after.list("t")
                           if e.name == "doomed")
            assert after.read_bytes("t", resumed.pid) == profile_bytes
            assert resumed.meta == {"k": "v"}, "intent metadata survives"
        else:
            assert names == {"keeper"}, "pre-rename crash leaves nothing"
        _no_debris(root)
        after.verify("t", baseline.pid)


@pytest.mark.parametrize("point", COMPACT_POINTS)
def test_compact_crash_recovers_and_converges(point, tmp_path,
                                              profile_bytes,
                                              profile_bytes_alt):
    root = str(tmp_path / "c")
    catalog = CorpusCatalog(root, create=True)
    for i, blob in enumerate([profile_bytes, profile_bytes_alt]):
        catalog.ingest_bytes("t", blob, name=f"r{i}", group="g")
    _crash(point, lambda: catalog.compact_group("t", "g"))
    del catalog

    with open_corpus(root) as after:
        kinds = sorted(e.kind for e in after.list("t"))
        if point in LANDED_COMPACT:
            # the merged store was promised; sources are gone with it
            assert kinds == ["rpstore"]
            entry = next(iter(after.list("t")))
            after.verify("t", entry.pid)
            exp = after.load("t", entry.pid)
            try:
                assert len(exp.cct) > 0
            finally:
                exp.close()
        else:
            # pre-rename crash: both sources intact, no store; a re-run
            # converges to exactly one store (idempotence)
            assert kinds == ["rpdb", "rpdb"]
            entry = after.compact_group("t", "g")
            assert sorted(e.kind for e in after.list("t")) == ["rpstore"]
            after.verify("t", entry.pid)
        _no_debris(root)


@pytest.mark.parametrize("point", EVICT_POINTS)
def test_delete_crash_recovers(point, tmp_path, profile_bytes):
    root = str(tmp_path / "c")
    catalog = CorpusCatalog(root, create=True)
    doomed = catalog.ingest_bytes("t", profile_bytes, name="doomed").pid
    keeper = catalog.ingest_bytes("t", profile_bytes, name="keeper").pid
    _crash(point, lambda: catalog.delete("t", doomed))
    del catalog

    with open_corpus(root) as after:
        # the delete record landed before either crash point, so the
        # entry is gone; recovery reaps the orphaned payload if the
        # crash hit between journal and unlink
        assert {e.pid for e in after.list("t")} == {keeper}
        assert not os.path.exists(
            os.path.join(root, "tenants", "t", "profiles",
                         f"{doomed}.rpdb")
        )
        assert after.read_bytes("t", keeper) == profile_bytes


@pytest.mark.parametrize("point", EVICT_POINTS)
def test_retention_eviction_crash_recovers(point, tmp_path,
                                           profile_bytes):
    """Quota eviction passes through the same journaled delete path."""
    from repro.corpus import RetentionPolicy

    root = str(tmp_path / "c")
    catalog = CorpusCatalog(root, create=True)
    pids = [catalog.ingest_bytes("t", profile_bytes, name=f"r{i}").pid
            for i in range(3)]
    _crash(point, lambda: catalog.set_policy(
        "t", RetentionPolicy(max_profiles=1)))
    del catalog

    with open_corpus(root) as after:
        live = {e.pid for e in after.list("t")}
        # the first eviction was journaled before the crash: it is gone;
        # whether later evictions ran depends on the point, but nothing
        # is ever half-deleted
        assert pids[0] not in live
        for pid in live:
            assert after.read_bytes("t", pid) == profile_bytes
        # the surviving policy re-enforces to convergence
        assert len(after.enforce_retention("t")) + len(
            {e.pid for e in after.list("t")}
        ) >= 1


def test_double_crash_then_recover(tmp_path, profile_bytes):
    """Crashing during *recovery's own* commit is still recoverable."""
    root = str(tmp_path / "c")
    catalog = CorpusCatalog(root, create=True)
    _crash("corpus.ingest.renamed",
           lambda: catalog.ingest_bytes("t", profile_bytes, name="x"))
    del catalog
    # second process crashes too, at a different point, before recovery
    with open_corpus(root) as after:
        assert [e.name for e in after.list("t")] == ["x"]
        pid = after.list("t")[0].pid
        assert after.read_bytes("t", pid) == profile_bytes


def test_torn_journal_tail_plus_pending_intent(tmp_path, profile_bytes):
    """A torn tail *and* an interrupted ingest recover in one pass."""
    root = str(tmp_path / "c")
    catalog = CorpusCatalog(root, create=True)
    _crash("corpus.ingest.renamed",
           lambda: catalog.ingest_bytes("t", profile_bytes, name="x"))
    journal_path = os.path.join(root, "journal.rjl")
    with open(journal_path, "ab") as fh:
        fh.write(b"RJ\x40\x00\x00\x00torn")  # header promising more bytes
    del catalog
    with open_corpus(root) as after:
        assert [e.name for e in after.list("t")] == ["x"]
    # the torn tail was truncated by recovery
    with open_corpus(root) as again:
        report = again.recover()
        assert report["truncated_bytes"] == 0


# --------------------------------------------------------------------- #
# subprocess battery (kill -9 for real)
# --------------------------------------------------------------------- #
_CHILD = """
import sys
from repro.corpus import open_corpus

root, name = sys.argv[1], sys.argv[2]
with open(sys.argv[3], "rb") as fh:
    blob = fh.read()
with open_corpus(root) as corpus:
    corpus.ingest_bytes("t", blob, name=name)
print("COMMITTED")
"""


def _run_child(root, tmp_path, profile_bytes, name, point):
    payload = tmp_path / "payload.rpdb"
    payload.write_bytes(profile_bytes)
    env = dict(os.environ, PYTHONPATH="src")
    if point is not None:
        env["REPRO_CRASH_POINT"] = point
    return subprocess.run(
        [sys.executable, "-c", _CHILD, root, name, str(payload)],
        env=env, cwd=os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))),
        capture_output=True, text=True, timeout=120,
    )


def _assert_killed(proc):
    assert proc.returncode == -signal.SIGKILL, (
        f"child should have SIGKILLed itself: rc={proc.returncode} "
        f"stderr={proc.stderr[-500:]}"
    )


def test_subprocess_kill_at_intent_leaves_nothing(tmp_path,
                                                  profile_bytes):
    root = str(tmp_path / "c")
    CorpusCatalog(root, create=True).close()
    proc = _run_child(root, tmp_path, profile_bytes, "doomed",
                      "corpus.ingest.intent")
    _assert_killed(proc)
    with open_corpus(root) as after:
        assert after.list("t") == []
        _no_debris(root)
    # and the corpus still works
    with open_corpus(root) as after:
        after.ingest_bytes("t", profile_bytes, name="fine")
        assert [e.name for e in after.list("t")] == ["fine"]


@pytest.mark.chaos
@pytest.mark.parametrize("point", INGEST_POINTS)
def test_subprocess_kill_sweep(point, tmp_path, profile_bytes):
    root = str(tmp_path / "c")
    CorpusCatalog(root, create=True).close()
    proc = _run_child(root, tmp_path, profile_bytes, "doomed", point)
    _assert_killed(proc)
    with open_corpus(root) as after:
        names = {e.name for e in after.list("t")}
        if point in RESUMED_INGEST:
            assert names == {"doomed"}
            pid = after.list("t")[0].pid
            assert after.read_bytes("t", pid) == profile_bytes
        else:
            assert names == set()
        _no_debris(root)


def test_crash_points_registered():
    """The battery's parametrization covers every declared point."""
    from repro.testing.faults import crash_points

    assert set(crash_points("corpus.")) == set(CRASH_POINTS)
    assert len(CRASH_POINTS) == (
        len(INGEST_POINTS) + len(COMPACT_POINTS) + len(EVICT_POINTS)
    )

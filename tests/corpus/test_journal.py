"""Journal framing invariants: the committed prefix is always replayable."""

from __future__ import annotations

import pytest

from repro.corpus.journal import (
    MAX_PAYLOAD,
    Journal,
    encode_record,
    scan_records,
)
from repro.errors import CorpusError


def _records(n: int) -> list[dict]:
    return [{"op": "test", "seq": i, "payload": "x" * i} for i in range(n)]


class TestFraming:
    def test_round_trip(self):
        blob = b"".join(encode_record(r) for r in _records(5))
        out = [rec for _end, rec in scan_records(blob)]
        assert out == _records(5)

    def test_canonical_encoding_is_deterministic(self):
        a = encode_record({"b": 1, "a": 2})
        b = encode_record({"a": 2, "b": 1})
        assert a == b

    def test_oversized_record_refused(self):
        with pytest.raises(CorpusError):
            encode_record({"blob": "x" * (MAX_PAYLOAD + 1)})

    def test_scan_stops_at_bad_magic(self):
        good = encode_record({"seq": 1})
        blob = good + b"XX" + good
        out = list(scan_records(blob))
        assert len(out) == 1

    def test_scan_stops_at_torn_tail(self):
        good = encode_record({"seq": 1})
        tail = encode_record({"seq": 2})
        for cut in range(1, len(tail)):
            out = list(scan_records(good + tail[:cut]))
            assert len(out) == 1, f"cut at {cut} must keep the prefix only"

    def test_scan_rejects_non_dict_payload(self):
        import json
        import struct
        import zlib

        payload = json.dumps([1, 2, 3]).encode()
        blob = (
            b"RJ" + struct.pack("<I", len(payload)) + payload
            + struct.pack("<I", zlib.crc32(payload) & 0xFFFFFFFF)
        )
        assert list(scan_records(blob)) == []


class TestJournal:
    def test_append_replay(self, tmp_path):
        journal = Journal(str(tmp_path))
        for rec in _records(3):
            journal.append(rec)
        replay = journal.replay()
        assert replay.records == _records(3)
        assert not replay.torn
        assert replay.valid_end == replay.total

    def test_append_returns_size_and_offsets_chain(self, tmp_path):
        journal = Journal(str(tmp_path))
        offset = 0
        for rec in _records(4):
            offset += journal.append(rec)
        assert journal.replay().valid_end == offset

    def test_incremental_replay_from_offset(self, tmp_path):
        journal = Journal(str(tmp_path))
        first = journal.append({"seq": 1})
        journal.append({"seq": 2})
        replay = journal.replay(start=first)
        assert [r["seq"] for r in replay.records] == [2]

    def test_torn_tail_detected_and_truncated(self, tmp_path):
        journal = Journal(str(tmp_path))
        journal.append({"seq": 1})
        keep = journal.replay().valid_end
        with open(journal.path, "ab") as fh:
            fh.write(encode_record({"seq": 2})[:-3])  # cut mid-trailer
        replay = journal.replay()
        assert replay.torn
        assert [r["seq"] for r in replay.records] == [1]
        journal.truncate(replay.valid_end)
        after = journal.replay()
        assert not after.torn
        assert after.valid_end == keep

    def test_missing_file_is_empty(self, tmp_path):
        journal = Journal(str(tmp_path))
        replay = journal.replay()
        assert replay.records == [] and replay.total == 0

    def test_locked_serializes_cross_process_writers(self, tmp_path):
        # the lock is advisory flock on a sibling file; two sequential
        # lock scopes must both succeed (no leaked lock state)
        journal = Journal(str(tmp_path))
        with journal.locked():
            journal.append({"seq": 1})
        with journal.locked():
            journal.append({"seq": 2})
        assert len(journal.replay().records) == 2

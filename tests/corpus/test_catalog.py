"""Catalog semantics: ingest, queries, pins, retention, compaction.

Crash-interruption coverage lives in ``test_crash_battery``; this file
pins the steady-state contract every crash must recover back to.
"""

from __future__ import annotations

import os

import pytest

from repro.corpus import CorpusCatalog, RetentionPolicy, open_corpus
from repro.errors import (
    CorpusCorrupt,
    CorpusError,
    DatabaseError,
    ProfilePinned,
)
from repro.hpcprof import database


@pytest.fixture()
def corpus(tmp_path):
    with CorpusCatalog(str(tmp_path / "corpus"), create=True) as catalog:
        yield catalog


class TestLayout:
    def test_create_then_reopen(self, tmp_path):
        root = str(tmp_path / "c")
        CorpusCatalog(root, create=True).close()
        with open_corpus(root) as corpus:
            assert corpus.tenants() == []

    def test_open_missing_refused(self, tmp_path):
        with pytest.raises(CorpusError):
            open_corpus(str(tmp_path / "nope"))

    def test_create_refuses_non_empty_dir(self, tmp_path):
        (tmp_path / "junk.txt").write_text("hi")
        with pytest.raises(CorpusError):
            CorpusCatalog(str(tmp_path), create=True)

    def test_bad_marker_is_corrupt(self, tmp_path):
        root = tmp_path / "c"
        CorpusCatalog(str(root), create=True).close()
        (root / "corpus.json").write_text("{}")
        with pytest.raises(CorpusCorrupt):
            open_corpus(str(root))


class TestIngest:
    def test_ingest_bytes_commits(self, corpus, profile_bytes):
        entry = corpus.ingest_bytes(
            "acme", profile_bytes, name="run.rpdb",
            group="nightly", meta={"build": "7"},
        )
        assert entry.pid == "p000001"
        assert entry.kind == "rpdb"
        assert corpus.read_bytes("acme", entry.pid) == profile_bytes
        assert corpus.tenants() == ["acme"]
        assert not os.listdir(os.path.join(corpus.root, "staging"))

    def test_ingest_is_durable_across_reopen(self, tmp_path, profile_bytes):
        root = str(tmp_path / "c")
        with CorpusCatalog(root, create=True) as corpus:
            pid = corpus.ingest_bytes("t", profile_bytes, name="a").pid
        with open_corpus(root) as corpus:
            assert corpus.read_bytes("t", pid) == profile_bytes

    def test_corrupt_upload_refused_strict(self, corpus, profile_bytes):
        with pytest.raises(DatabaseError):
            corpus.ingest_bytes("t", profile_bytes[:40], name="torn")

    def test_corrupt_upload_salvaged_clean(self, corpus, profile_bytes):
        entry = corpus.ingest_bytes(
            "t", profile_bytes[:-7], name="torn", salvage=True
        )
        # what was stored is the *re-serialized recovered* experiment,
        # which loads strictly from here on
        exp = corpus.load("t", entry.pid)
        assert len(exp.cct) > 0

    def test_garbage_upload_refused_even_with_salvage(self, corpus):
        with pytest.raises(DatabaseError):
            corpus.ingest_bytes("t", b"not a database", name="x",
                                salvage=True)

    def test_ingest_file_and_store_dir(self, corpus, profile_bytes,
                                       tmp_path):
        src = tmp_path / "run.rpdb"
        src.write_bytes(profile_bytes)
        entry = corpus.ingest_file("t", str(src))
        assert entry.name == "run.rpdb"

        store = tmp_path / "run.rpstore"
        database.save(database.loads(profile_bytes), str(store))
        entry = corpus.ingest_file("t", str(store))
        assert entry.kind == "rpstore"
        assert entry.files  # per-file manifest recorded
        exp = corpus.load("t", entry.pid)
        try:
            assert len(exp.cct) > 0
        finally:
            exp.close()

    def test_validation_rejects_bad_identifiers(self, corpus,
                                                profile_bytes):
        with pytest.raises(CorpusError):
            corpus.ingest_bytes("../evil", profile_bytes, name="x")
        with pytest.raises(CorpusError):
            corpus.ingest_bytes("t", profile_bytes, name="a\x00b")
        with pytest.raises(CorpusError):
            corpus.ingest_bytes("t", profile_bytes, name="x",
                                meta={i: "v" for i in range(40)})


class TestQueries:
    def test_search_by_name_group_meta(self, corpus, profile_bytes):
        corpus.ingest_bytes("t", profile_bytes, name="alpha.rpdb",
                            group="g1", meta={"build": "1"})
        corpus.ingest_bytes("t", profile_bytes, name="beta.rpdb",
                            group="g1", meta={"build": "2"})
        corpus.ingest_bytes("t", profile_bytes, name="gamma.rpdb",
                            group="g2", meta={"build": "2"})
        assert len(corpus.search("t", group="g1")) == 2
        assert len(corpus.search("t", name="alph")) == 1
        assert len(corpus.search("t", meta={"build": "2"})) == 2
        assert len(corpus.search("t", group="g1", meta={"build": "2"})) == 1

    def test_get_unknown_raises(self, corpus):
        with pytest.raises(CorpusError, match="unknown profile"):
            corpus.get("t", "p999999")

    def test_verify_catches_payload_tamper(self, corpus, profile_bytes):
        entry = corpus.ingest_bytes("t", profile_bytes, name="x")
        path = corpus.profile_path("t", entry.pid)
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        with pytest.raises(CorpusCorrupt):
            corpus.verify("t", entry.pid)

    def test_verify_catches_missing_payload(self, corpus, profile_bytes):
        entry = corpus.ingest_bytes("t", profile_bytes, name="x")
        os.unlink(corpus.profile_path("t", entry.pid))
        with pytest.raises(CorpusCorrupt):
            corpus.verify("t", entry.pid)


class TestPins:
    def test_pinned_profile_refuses_delete(self, corpus, profile_bytes):
        entry = corpus.ingest_bytes("t", profile_bytes, name="x")
        corpus.pin("t", entry.pid, "s1")
        with pytest.raises(ProfilePinned):
            corpus.delete("t", entry.pid)
        corpus.unpin("t", entry.pid, "s1")
        corpus.delete("t", entry.pid)
        with pytest.raises(CorpusError):
            corpus.get("t", entry.pid)

    def test_release_pins_by_owner(self, corpus, profile_bytes):
        """Any process can release a pin knowing only the owner sid —
        a pool worker closing an adopted session relies on this."""
        a = corpus.ingest_bytes("t", profile_bytes, name="a")
        b = corpus.ingest_bytes("t", profile_bytes, name="b")
        corpus.pin("t", a.pid, "s1")
        corpus.pin("t", b.pid, "s1")
        corpus.pin("t", b.pid, "s2")
        assert corpus.release_pins("s1") == 2
        assert not corpus.pinned("t", a.pid)
        assert corpus.pinned("t", b.pid), "other owners' pins survive"
        assert corpus.release_pins("s1") == 0
        assert corpus.release_pins("nobody") == 0

    def test_stale_pin_of_dead_process_is_reaped(self, corpus,
                                                 profile_bytes,
                                                 tmp_path):
        import json

        entry = corpus.ingest_bytes("t", profile_bytes, name="x")
        pin = corpus._pin_path("t", entry.pid, "ghost")
        os.makedirs(os.path.dirname(pin), exist_ok=True)
        with open(pin, "w", encoding="utf-8") as fh:
            json.dump({"ospid": 2**22 - 1, "owner": "ghost"}, fh)
        assert not corpus.pinned("t", entry.pid)
        assert not os.path.exists(pin)


class TestRetention:
    def test_count_policy_evicts_oldest_first(self, tmp_path,
                                              profile_bytes):
        now = [1000.0]
        corpus = CorpusCatalog(str(tmp_path / "c"), create=True,
                               clock=lambda: now[0])
        pids = []
        for i in range(4):
            now[0] += 1
            pids.append(corpus.ingest_bytes("t", profile_bytes,
                                            name=f"r{i}").pid)
        evicted = corpus.set_policy("t", RetentionPolicy(max_profiles=2))
        assert [e["id"] for e in evicted] == pids[:2]
        assert [e.pid for e in corpus.list("t")] == pids[2:]
        corpus.close()

    def test_ttl_policy(self, tmp_path, profile_bytes):
        now = [1000.0]
        corpus = CorpusCatalog(str(tmp_path / "c"), create=True,
                               clock=lambda: now[0])
        old = corpus.ingest_bytes("t", profile_bytes, name="old").pid
        now[0] += 100
        fresh = corpus.ingest_bytes("t", profile_bytes, name="new").pid
        corpus.set_policy("t", RetentionPolicy(ttl_s=50))
        assert [e.pid for e in corpus.list("t")] == [fresh]
        assert old not in {e.pid for e in corpus.list("t")}
        corpus.close()

    def test_byte_quota_enforced_on_ingest(self, tmp_path, profile_bytes):
        corpus = CorpusCatalog(str(tmp_path / "c"), create=True)
        corpus.set_policy(
            "t", RetentionPolicy(max_bytes=len(profile_bytes) * 2 + 1)
        )
        pids = [corpus.ingest_bytes("t", profile_bytes, name=f"r{i}").pid
                for i in range(3)]
        live = [e.pid for e in corpus.list("t")]
        assert live == pids[1:], "oldest evicted as the quota overflowed"
        corpus.close()

    def test_pinned_profiles_survive_retention(self, tmp_path,
                                               profile_bytes):
        corpus = CorpusCatalog(str(tmp_path / "c"), create=True)
        first = corpus.ingest_bytes("t", profile_bytes, name="a").pid
        corpus.pin("t", first, "s1")
        corpus.ingest_bytes("t", profile_bytes, name="b")
        evicted = corpus.set_policy("t", RetentionPolicy(max_profiles=1))
        # the pinned oldest is skipped; the tenant temporarily overflows
        assert first in {e.pid for e in corpus.list("t")}
        assert all(e["id"] != first for e in evicted)
        corpus.close()

    def test_policy_durable_across_reopen(self, tmp_path, profile_bytes):
        root = str(tmp_path / "c")
        with CorpusCatalog(root, create=True) as corpus:
            corpus.set_policy("t", RetentionPolicy(max_profiles=3))
        with open_corpus(root) as corpus:
            assert corpus.policy("t").max_profiles == 3

    def test_policy_validation(self):
        with pytest.raises(CorpusError):
            RetentionPolicy(max_profiles=0)
        with pytest.raises(CorpusError):
            RetentionPolicy(max_bytes=-1)
        with pytest.raises(CorpusError):
            RetentionPolicy.from_payload({"bogus": 1})


class TestCompaction:
    def _grouped(self, corpus, payloads, group="nightly"):
        return [
            corpus.ingest_bytes("t", blob, name=f"r{i}.rpdb", group=group).pid
            for i, blob in enumerate(payloads)
        ]

    def test_compact_group_merges_and_removes_sources(
        self, corpus, profile_bytes, profile_bytes_alt
    ):
        pids = self._grouped(corpus, [profile_bytes, profile_bytes_alt])
        entry = corpus.compact_group("t", "nightly")
        assert entry.kind == "rpstore"
        assert set(entry.sources) == set(pids)
        live = {e.pid for e in corpus.list("t")}
        assert live == {entry.pid}
        for pid in pids:
            assert not os.path.exists(
                os.path.join(corpus._profiles_dir("t"), f"{pid}.rpdb")
            )
        exp = corpus.load("t", entry.pid)
        try:
            assert len(exp.cct) > 0
        finally:
            exp.close()

    def test_small_group_is_left_alone(self, corpus, profile_bytes):
        self._grouped(corpus, [profile_bytes])
        assert corpus.compact_group("t", "nightly") is None
        assert corpus.compactable_groups("t") == {}

    def test_pinned_source_refuses_compaction(self, corpus, profile_bytes,
                                              profile_bytes_alt):
        pids = self._grouped(corpus, [profile_bytes, profile_bytes_alt])
        corpus.pin("t", pids[0], "s1")
        with pytest.raises(ProfilePinned):
            corpus.compact_group("t", "nightly")

    def test_compaction_worker_sweeps(self, corpus, profile_bytes,
                                      profile_bytes_alt):
        from repro.corpus import CompactionWorker

        self._grouped(corpus, [profile_bytes, profile_bytes_alt])
        worker = CompactionWorker(corpus)
        made = worker.run_once()
        assert len(made) == 1 and made[0].kind == "rpstore"
        assert worker.stats["compacted"] == 1
        assert [e.kind for e in corpus.list("t")] == ["rpstore"]


class TestMultiProcessView:
    def test_sibling_catalog_sees_commits(self, tmp_path, profile_bytes):
        root = str(tmp_path / "c")
        with CorpusCatalog(root, create=True) as writer, \
                open_corpus(root) as reader:
            pid = writer.ingest_bytes("t", profile_bytes, name="x").pid
            assert reader.get("t", pid).name == "x"
            writer.delete("t", pid)
            with pytest.raises(CorpusError):
                reader.get("t", pid)

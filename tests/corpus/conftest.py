"""Shared fixtures for the corpus suites.

Profile payloads come from the same synthetic workloads the rest of
tier-1 uses; the catalog under test always lives in ``tmp_path`` so a
failing test leaves no residue.
"""

from __future__ import annotations

import pytest

from repro.hpcprof import binio
from repro.hpcprof.experiment import Experiment
from repro.sim.workloads import fig1


@pytest.fixture(scope="session")
def profile_bytes() -> bytes:
    """One clean, small ``.rpdb`` payload."""
    return binio.dumps_binary(Experiment.from_program(fig1.build()))


@pytest.fixture(scope="session")
def profile_bytes_alt() -> bytes:
    """A second distinct payload (different seed)."""
    return binio.dumps_binary(
        Experiment.from_program(fig1.build(), nranks=1, seed=99)
    )

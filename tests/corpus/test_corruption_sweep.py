"""Every-offset journal corruption: clean prefix replay or CorpusCorrupt.

The storage-corruption sweeps that already cover ``.rpdb`` payloads
(``tests/props/test_salvage_props.py``) extended to the corpus journal:
for every byte offset of a real journal, truncating there or flipping a
bit there must yield either

* a clean :func:`open_corpus` whose catalog is a *prefix-consistent*
  subset of what was committed — every surviving entry verifies
  bit-identically, and no entry exists that was never committed
  (no phantoms) — or
* a structured :class:`CorpusCorrupt` / :class:`CorpusError`,

and **never** an unhandled exception.  The exhaustive sweep is marked
``chaos``; a strided subset runs unmarked in tier-1.
"""

from __future__ import annotations

import os
import shutil

import pytest

from repro.corpus import CorpusCatalog, open_corpus
from repro.errors import CorpusError, ReproError
from repro.testing import bit_flip, truncate


@pytest.fixture(scope="module")
def seeded(tmp_path_factory, profile_bytes, profile_bytes_alt):
    """A corpus with real history: ingests, a compaction, a delete."""
    root = str(tmp_path_factory.mktemp("sweep") / "c")
    with CorpusCatalog(root, create=True) as corpus:
        corpus.ingest_bytes("t", profile_bytes, name="a", group="g")
        corpus.ingest_bytes("t", profile_bytes_alt, name="b", group="g")
        solo = corpus.ingest_bytes("t", profile_bytes, name="solo",
                                   meta={"k": "v"})
        corpus.compact_group("t", "g")
        doomed = corpus.ingest_bytes("t", profile_bytes, name="doomed")
        corpus.delete("t", doomed.pid)
    journal = open(os.path.join(root, "journal.rjl"), "rb").read()
    # "no phantoms" means: never an entry that no journal prefix
    # committed — i.e. anything outside the set of pids ever committed
    from repro.corpus.journal import scan_records

    committed = {
        (rec["tenant"], rec["pid"])
        for _end, rec in scan_records(journal)
        if rec.get("op") in ("commit-profile", "commit-compact")
    }
    return root, journal, committed, solo.pid


def _clone(seeded_root: str, dst: str, journal: bytes) -> str:
    shutil.copytree(seeded_root, dst)
    with open(os.path.join(dst, "journal.rjl"), "wb") as fh:
        fh.write(journal)
    return dst


def _check_one(root: str, committed: dict) -> None:
    """Open the mutated corpus; only clean state or CorpusError allowed."""
    try:
        with open_corpus(root) as corpus:
            for tenant in corpus.tenants():
                for entry in corpus.list(tenant):
                    key = (entry.tenant, entry.pid)
                    assert key in committed, (
                        f"phantom entry {key} from corrupted journal"
                    )
                    # payload checks may legitimately fail as corrupt —
                    # a lost compaction commit resurrects source entries
                    # whose files were already merged away — but they
                    # must fail *structurally*
                    try:
                        corpus.verify(tenant, entry.pid)
                    except CorpusError:
                        pass
    except CorpusError:
        return  # structured refusal is an accepted outcome
    except ReproError as exc:  # pragma: no cover - would be a real bug
        raise AssertionError(
            f"journal corruption leaked a non-corpus error: {exc!r}"
        )


def _sweep_truncate(seeded, tmp_path, offsets) -> None:
    root, journal, committed, _solo = seeded
    for i, offset in enumerate(offsets):
        dst = str(tmp_path / f"t{i}")
        _clone(root, dst, truncate(journal, offset))
        _check_one(dst, committed)
        shutil.rmtree(dst)


def _sweep_flip(seeded, tmp_path, offsets) -> None:
    root, journal, committed, _solo = seeded
    for i, offset in enumerate(offsets):
        dst = str(tmp_path / f"f{i}")
        _clone(root, dst, bit_flip(journal, offset, bit=offset % 8))
        _check_one(dst, committed)
        shutil.rmtree(dst)


def test_truncate_subset(seeded, tmp_path):
    """Tier-1 insurance: strided truncation offsets (every 17th byte)."""
    journal = seeded[1]
    _sweep_truncate(seeded, tmp_path, range(0, len(journal), 17))


def test_bitflip_subset(seeded, tmp_path):
    """Tier-1 insurance: strided bit flips (every 17th byte)."""
    journal = seeded[1]
    _sweep_flip(seeded, tmp_path, range(0, len(journal), 17))


@pytest.mark.chaos
def test_truncate_every_offset(seeded, tmp_path):
    journal = seeded[1]
    _sweep_truncate(seeded, tmp_path, range(len(journal) + 1))


@pytest.mark.chaos
def test_bitflip_every_offset(seeded, tmp_path):
    journal = seeded[1]
    _sweep_flip(seeded, tmp_path, range(len(journal)))


def _offset_before(journal: bytes, op: str, pid: str) -> int:
    from repro.corpus.journal import scan_records

    prev_end = 0
    for end, record in scan_records(journal):
        if record.get("op") == op and record.get("pid") == pid:
            return prev_end
        prev_end = end
    raise AssertionError(f"no {op} record for {pid}")


def test_lost_commit_resumes_from_intent(seeded, tmp_path):
    """Truncating between a profile's intent and its commit leaves an
    intact renamed payload + a pending intent: recovery keeps the
    rename's promise and re-commits it bit-identically."""
    root, journal, committed, solo_pid = seeded
    cut = _offset_before(journal, "commit-profile", solo_pid)
    dst = _clone(root, str(tmp_path / "resumed"),
                 truncate(journal, cut))
    with open_corpus(dst) as corpus:
        entry = corpus.get("t", solo_pid)
        corpus.verify("t", solo_pid)
        assert entry.meta == {"k": "v"}, "intent metadata survives"


def test_lost_intent_never_phantoms(seeded, tmp_path):
    """Truncating before the profile's *intent* loses it entirely —
    entry gone, payload reaped as an orphan — rather than leaving a
    half-visible profile."""
    root, journal, committed, solo_pid = seeded
    cut = _offset_before(journal, "intent-ingest", solo_pid)
    dst = _clone(root, str(tmp_path / "lost"), truncate(journal, cut))
    with open_corpus(dst) as corpus:
        pids = {e.pid for e in corpus.list("t")}
        assert solo_pid not in pids
        assert not os.path.exists(
            os.path.join(dst, "tenants", "t", "profiles",
                         f"{solo_pid}.rpdb")
        ), "orphaned payload must be reaped with its lost entry"


def test_journal_replaced_by_garbage(seeded, tmp_path):
    root, journal, committed, _solo = seeded
    dst = _clone(root, str(tmp_path / "junk"), b"\x00" * len(journal))
    with open_corpus(dst) as corpus:
        assert corpus.tenants() == []  # empty catalog, no crash

"""Tests for the gprof baseline and the misattribution comparison.

The point of the baseline is the contrast: on context-dependent and
recursive programs it *must* misattribute costs the context-sensitive
views attribute exactly — that contrast is asserted here, not avoided.
"""

from __future__ import annotations

import pytest

from repro.baselines.compare import (
    compare_attribution,
    exact_caller_costs,
    max_relative_error,
)
from repro.baselines.gprof import GprofProfile
from repro.core.attribution import attribute
from repro.hpcprof.correlate import correlate
from repro.hpcstruct.synthstruct import build_structure
from repro.sim.executor import execute
from repro.sim.program import Call, ExecContext, Module, Procedure, Program, Work
from repro.sim.workloads import fig1


def cct_of(program):
    profile = execute(program)
    cct = correlate(profile, build_structure(program))
    attribute(cct)
    return cct


def context_dependent_program():
    """kernel() is cheap from fast_path but expensive from slow_path —
    equal call counts, very different costs: gprof's blind spot."""

    def kernel_cost(ctx: ExecContext):
        return {"cycles": 90.0 if ctx.caller == "slow_path" else 10.0}

    return Program(
        name="ctxdep",
        modules=[
            Module(
                path="ctx.c",
                procedures=[
                    Procedure(name="main", line=1, body=[
                        Call(line=2, callee="fast_path"),
                        Call(line=3, callee="slow_path"),
                    ]),
                    Procedure(name="fast_path", line=10,
                              body=[Call(line=11, callee="kernel")]),
                    Procedure(name="slow_path", line=20,
                              body=[Call(line=21, callee="kernel")]),
                    Procedure(name="kernel", line=30,
                              body=[Work(line=31, costs=kernel_cost)]),
                ],
            )
        ],
        entry="main",
        metrics=[("cycles", "cycles")],
    )


class TestGprofModel:
    def test_self_costs_match_flat_truth(self):
        cct = cct_of(fig1.build())
        gprof = GprofProfile.from_cct(cct, mid=0)
        # self costs are context-free, so gprof gets them right:
        assert gprof.self_cost["h"] == 4.0
        assert gprof.self_cost["f"] == 1.0
        assert gprof.self_cost["m"] == 0.0
        assert gprof.self_cost["g"] == 5.0  # all three instances summed

    def test_arcs(self):
        cct = cct_of(fig1.build())
        gprof = GprofProfile.from_cct(cct, mid=0)
        assert gprof.arc_calls[("m", "f")] == 1.0
        assert gprof.arc_calls[("m", "g")] == 1.0
        assert gprof.arc_calls[("f", "g")] == 1.0
        assert gprof.arc_calls[("g", "g")] == 1.0
        assert gprof.arc_calls[("g", "h")] == 1.0

    def test_recursion_detected_as_cycle(self):
        cct = cct_of(fig1.build())
        gprof = GprofProfile.from_cct(cct, mid=0)
        assert gprof.in_cycle("g")
        assert not gprof.in_cycle("h")
        assert any("g" in cycle for cycle in gprof.cycles)

    def test_acyclic_totals_are_exact(self):
        """Without recursion or context dependence within an arc, the
        propagation recovers true inclusive costs."""
        prog = context_dependent_program()
        gprof = GprofProfile.from_cct(cct_of(prog), mid=0)
        assert gprof.total_cost["main"] == pytest.approx(100.0)
        assert gprof.total_cost["kernel"] == pytest.approx(100.0)

    def test_report_renders(self):
        gprof = GprofProfile.from_cct(cct_of(fig1.build()), mid=0)
        text = gprof.report()
        assert "flat profile" in text
        assert "g -> h" in text
        assert "<cycle>" in text

    def test_unknown_arc_query(self):
        gprof = GprofProfile.from_cct(cct_of(fig1.build()), mid=0)
        with pytest.raises(Exception):
            gprof.caller_share("h", "m")


class TestMisattribution:
    def test_context_dependent_costs_split_wrongly(self):
        """gprof splits kernel's 100 cycles 50/50 by call counts; the truth
        is 10/90.  The CCT-derived views get it exactly right."""
        cct = cct_of(context_dependent_program())
        exact = exact_caller_costs(cct, mid=0)
        assert exact[("fast_path", "kernel")] == 10.0
        assert exact[("slow_path", "kernel")] == 90.0

        gprof = GprofProfile.from_cct(cct, mid=0)
        assert gprof.caller_share("fast_path", "kernel") == pytest.approx(50.0)
        assert gprof.caller_share("slow_path", "kernel") == pytest.approx(50.0)

        rows = compare_attribution(cct, mid=0)
        fast = next(r for r in rows if (r.caller, r.callee) == ("fast_path", "kernel"))
        slow = next(r for r in rows if (r.caller, r.callee) == ("slow_path", "kernel"))
        assert fast.absolute_error == pytest.approx(40.0)
        assert slow.absolute_error == pytest.approx(40.0)
        assert max_relative_error(rows) >= 4.0  # 50 vs 10 -> 400% error

    def test_recursive_costs_misattributed(self):
        """On Figure 1's program, gprof lumps g's cycle and apportions by
        counts; the exact per-caller costs (6 via f, 3 via m) differ."""
        cct = cct_of(fig1.build())
        exact = exact_caller_costs(cct, mid=0)
        assert exact[("f", "g")] == 6.0
        assert exact[("m", "g")] == 3.0
        rows = compare_attribution(cct, mid=0)
        fg = next(r for r in rows if (r.caller, r.callee) == ("f", "g"))
        mg = next(r for r in rows if (r.caller, r.callee) == ("m", "g"))
        gg = next(r for r in rows if (r.caller, r.callee) == ("g", "g"))
        # counts are equal, so gprof splits g's 9 units 3/3/3 across the
        # three arcs: f's true 6 is halved; the recursive arc's 5 becomes 3
        assert fg.gprof_estimate == pytest.approx(mg.gprof_estimate)
        assert fg.absolute_error == pytest.approx(3.0)
        assert gg.absolute_error == pytest.approx(2.0)

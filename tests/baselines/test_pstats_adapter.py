"""Tests for the cProfile/pstats adapter."""

from __future__ import annotations

import cProfile
import pstats
import time

import pytest

from repro.baselines.pstats_adapter import gprof_from_pstats, profile_with_cprofile
from repro.core.errors import ReproError


def busy(n):
    total = 0
    for i in range(n):
        total += i * i
    return total


def fast_path():
    return busy(1_000)


def slow_path():
    return busy(400_000)


def driver():
    return fast_path() + slow_path()


class TestAdapter:
    @pytest.fixture(scope="class")
    def gprof(self):
        _result, gprof = profile_with_cprofile(driver)
        return gprof

    def test_functions_present(self, gprof):
        assert "busy" in gprof.self_cost
        assert "fast_path" in gprof.self_cost
        assert "slow_path" in gprof.self_cost

    def test_arc_call_counts_exact(self, gprof):
        assert gprof.arc_calls[("fast_path", "busy")] == 1.0
        assert gprof.arc_calls[("slow_path", "busy")] == 1.0
        assert gprof.arc_calls[("driver", "fast_path")] == 1.0

    def test_busy_self_time_dominates(self, gprof):
        assert gprof.self_cost["busy"] > gprof.self_cost["driver"]

    def test_count_proportional_misattribution(self, gprof):
        """cProfile's model splits busy's time 50/50 between the two
        callers despite a 400:1 work ratio — the gprof blind spot, now
        demonstrated with the stdlib profiler itself."""
        fast = gprof.caller_share("fast_path", "busy")
        slow = gprof.caller_share("slow_path", "busy")
        assert fast == pytest.approx(slow)

    def test_accepts_stats_object(self):
        profiler = cProfile.Profile()
        profiler.runcall(driver)
        gprof = gprof_from_pstats(pstats.Stats(profiler))
        assert "busy" in gprof.self_cost

    def test_recursion_detected(self):
        def rec(n):
            return 0 if n == 0 else rec(n - 1) + busy(10)

        _res, gprof = profile_with_cprofile(rec, 5)
        assert gprof.in_cycle("rec")
        assert not gprof.in_cycle("busy")

    def test_rejects_other_objects(self):
        with pytest.raises(ReproError):
            gprof_from_pstats(object())

    def test_report_renders(self, gprof):
        text = gprof.report(top=5)
        assert "flat profile" in text
        assert "busy" in text

"""The ``window()`` query operator: validation, spec round-trip, and
the trace-capable-target requirement."""

from __future__ import annotations

import pytest

from repro.errors import QueryError
from repro.hpcprof.experiment import Experiment
from repro.query import Query, query, run_query
from repro.sim.workloads import fig1


def test_window_validates_bounds():
    q = query("**/*")
    with pytest.raises(QueryError, match="NaN"):
        q.window(float("nan"), 1.0)
    with pytest.raises(QueryError, match="inverted"):
        q.window(2.0, 1.0)
    with pytest.raises(QueryError, match="number or None"):
        q.window("soon", None)


def test_window_is_immutable_chaining():
    base = query("**/*")
    windowed = base.window(1.0, 2.0)
    assert base.time_window is None
    assert windowed.time_window == (1.0, 2.0)


def test_window_survives_spec_round_trip():
    q = query("**/*").window(0.5, None).sort("m")
    spec = q.to_spec()
    assert spec["window"] == [0.5, None]
    assert Query.from_spec(spec).time_window == (0.5, None)


def test_spec_rejects_malformed_window():
    spec = query("**/*").to_spec()
    spec["window"] = [1.0]
    with pytest.raises(QueryError, match="pair"):
        Query.from_spec(spec)


def test_window_requires_trace_target():
    """An untimed experiment cannot answer a windowed query."""
    exp = Experiment.from_program(fig1.build())
    with pytest.raises(QueryError, match="trace-capable"):
        run_query(query("**/*").window(0.0, 1.0), exp)
    # but the same query without a window runs fine
    assert run_query(query("**/*"), exp).row_count > 0


def test_untimed_query_over_trace_is_the_whole_trace():
    from repro.sim.spmd import trace_spmd

    traces = trace_spmd(fig1.build(), nranks=2, seed=7)
    plain = run_query(query("**/*"), traces)
    unbounded = run_query(query("**/*").window(None, None), traces)
    assert plain.to_rows() == unbounded.to_rows()

"""Unit tests for corpus-wide diagnosis (``diagnose_corpus``).

Each rule is exercised against a corpus seeded with a profile that
must trip it — an imbalanced merge for load-imbalance, a scaling
series with a planted blowup for scaling-loss, a cost shift that moves
the hot path for hot-path-drift — plus the streaming contracts:
per-profile checkpoints, metric auto-resolution, and skip counting.
"""

from __future__ import annotations

import pytest

from repro.core.attribution import attribute
from repro.corpus import open_corpus
from repro.hpcprof.binio import dumps_binary
from repro.hpcprof.experiment import Experiment
from repro.query import diagnose_corpus
from repro.sim.workloads import fig1

TENANT = "acme"


def _fig1(seed: int = 7) -> Experiment:
    return Experiment.from_program(fig1.build(), nranks=1, seed=seed)


def _scaled(factor: float, subtree: str | None = None) -> Experiment:
    """fig1 with every raw cost (or one subtree's) multiplied."""
    exp = _fig1()
    for node in exp.cct.walk():
        if subtree is not None and not any(
                f.name == subtree for f in node.call_path()):
            continue
        for mid, value in list(node.raw.items()):
            node.raw[mid] = value * factor
    attribute(exp.cct)
    exp.cct.invalidate_caches()
    return exp


def _imbalanced() -> Experiment:
    """Six linearly skewed ranks merged — high per-rank CoV."""
    from repro.hpcprof.merge import merge_experiments
    from repro.hpcstruct.synthstruct import build_structure
    from repro.sim.executor import execute
    from repro.sim.scale import scale_program

    program = scale_program(fanout=3, depth=2, imbalance="linear_skew")
    structure = build_structure(program)
    ranks = [
        Experiment.from_profile(execute(program, rank=r, nranks=6, seed=99),
                                structure, name=f"r{r}")
        for r in range(6)
    ]
    return merge_experiments(ranks, name="imbalanced", summarize="all")


@pytest.fixture()
def corpus(tmp_path):
    with open_corpus(str(tmp_path / "corpus"), create=True) as c:
        yield c


class TestRules:
    def test_load_imbalance(self, corpus):
        corpus.ingest_bytes(TENANT, dumps_binary(_imbalanced()),
                            name="imbalanced")
        diag = diagnose_corpus(corpus, TENANT)
        rules = {f.rule for f in diag.findings}
        assert "load-imbalance" in rules
        finding = next(f for f in diag.findings
                       if f.rule == "load-imbalance")
        assert finding.evidence["cov"] >= 0.10
        assert finding.evidence["nranks"] == 6.0

    def test_scaling_loss(self, corpus):
        corpus.ingest_bytes(TENANT, dumps_binary(_fig1()), name="n1",
                            group="scale", meta={"nranks": 1})
        corpus.ingest_bytes(TENANT, dumps_binary(_scaled(2.0)), name="n4",
                            group="scale", meta={"nranks": 4})
        diag = diagnose_corpus(corpus, TENANT)
        losses = [f for f in diag.findings if f.rule == "scaling-loss"]
        assert len(losses) == 1
        assert losses[0].evidence["efficiency"] == pytest.approx(0.5)
        assert losses[0].group == "scale"

    def test_scaling_within_floor_is_clean(self, corpus):
        corpus.ingest_bytes(TENANT, dumps_binary(_fig1()), name="n1",
                            group="scale", meta={"nranks": 1})
        corpus.ingest_bytes(TENANT, dumps_binary(_scaled(1.1)), name="n4",
                            group="scale", meta={"nranks": 4})
        diag = diagnose_corpus(corpus, TENANT)
        assert not [f for f in diag.findings if f.rule == "scaling-loss"]

    def test_hot_path_drift_on_diverged_path(self, corpus):
        base = _fig1()
        # blow up g's subtree so the hot path swings away from baseline's
        drifted = _scaled(20.0, subtree="h")
        corpus.ingest_bytes(TENANT, dumps_binary(base), name="base",
                            group="nightly")
        corpus.ingest_bytes(TENANT, dumps_binary(drifted), name="drift",
                            group="nightly")
        diag = diagnose_corpus(corpus, TENANT)
        drifts = [f for f in diag.findings if f.rule == "hot-path-drift"]
        assert len(drifts) == 1
        assert "diverged" in drifts[0].detail or "moved" in drifts[0].detail

    def test_explicit_baseline_compares_everything(self, corpus):
        pid0 = corpus.ingest_bytes(TENANT, dumps_binary(_fig1()),
                                   name="base").pid
        corpus.ingest_bytes(TENANT, dumps_binary(_scaled(20.0, subtree="h")),
                            name="u1")  # no group
        diag = diagnose_corpus(corpus, TENANT, baseline=pid0)
        assert [f.rule for f in diag.findings] == ["hot-path-drift"]
        # without a baseline, ungrouped profiles are never compared
        assert not diagnose_corpus(corpus, TENANT).findings

    def test_identical_profiles_are_clean(self, corpus):
        for i in range(3):
            corpus.ingest_bytes(TENANT, dumps_binary(_fig1()),
                                name=f"run{i}", group="nightly")
        diag = diagnose_corpus(corpus, TENANT)
        assert diag.findings == ()
        assert diag.profiles_examined == 3


class TestStreamingContracts:
    def test_metric_auto_resolution(self, corpus):
        corpus.ingest_bytes(TENANT, dumps_binary(_fig1()), name="a")
        diag = diagnose_corpus(corpus, TENANT)
        assert diag.metric == "cycles"

    def test_profiles_missing_metric_are_skipped(self, corpus):
        corpus.ingest_bytes(TENANT, dumps_binary(_fig1()), name="a")
        corpus.ingest_bytes(TENANT, dumps_binary(_fig1()), name="b")
        diag = diagnose_corpus(corpus, TENANT, metric="PAPI_TOT_CYC")
        assert diag.profiles_examined == 0
        assert diag.profiles_skipped == 2

    def test_checkpoint_called_per_profile(self, corpus):
        for i in range(4):
            corpus.ingest_bytes(TENANT, dumps_binary(_fig1()),
                                name=f"run{i}")
        calls = []
        diagnose_corpus(corpus, TENANT,
                        checkpoint=lambda: calls.append(1))
        assert len(calls) == 4

    def test_findings_sorted_by_severity(self, corpus):
        corpus.ingest_bytes(TENANT, dumps_binary(_fig1()), name="n1",
                            group="scale", meta={"nranks": 1})
        corpus.ingest_bytes(TENANT, dumps_binary(_scaled(2.0)), name="n2",
                            group="scale", meta={"nranks": 2})
        corpus.ingest_bytes(TENANT, dumps_binary(_scaled(8.0)), name="n8",
                            group="scale", meta={"nranks": 8})
        diag = diagnose_corpus(corpus, TENANT)
        sevs = [f.severity for f in diag.findings]
        assert sevs == sorted(sevs, reverse=True)

    def test_columnar_surfaces_agree(self, corpus):
        corpus.ingest_bytes(TENANT, dumps_binary(_fig1()), name="n1",
                            group="scale", meta={"nranks": 1})
        corpus.ingest_bytes(TENANT, dumps_binary(_scaled(2.0)), name="n4",
                            group="scale", meta={"nranks": 4})
        diag = diagnose_corpus(corpus, TENANT)
        cols = diag.to_columns()
        rows = diag.to_rows()
        assert len(rows) == len(diag.findings) == len(cols["rule"])
        for i, row in enumerate(rows):
            assert row == [cols["rule"][i], cols["profile"][i],
                           cols["group"][i], cols["severity"][i],
                           cols["detail"][i]]
        payload = diag.to_payload()
        assert payload["tenant"] == TENANT
        assert payload["profiles_examined"] == 2
        assert len(payload["profiles"]) == 2
        assert payload["profiles"][1]["nranks"] == 4

"""Unit tests for query evaluation over real experiments.

Operator semantics (match, any-depth, predicates, prune, squash,
groupby, sort/limit/select) are pinned on the paper's Figure 1
workload, where the expected scopes are known by name; target
uniformity (views, ensemble members) rides the same fixtures.
"""

from __future__ import annotations

import pytest

from repro.errors import MetricError
from repro.hpcprof.experiment import Experiment
from repro.query import query, run_query
from repro.sim.workloads import fig1


@pytest.fixture(scope="module")
def exp():
    return Experiment.from_program(fig1.build())


class TestMatch:
    def test_exact_name(self, exp):
        result = run_query(query("m"), exp)
        assert result.names == ("m",)
        assert tuple(result.depths) == (1,)

    def test_anchored_chain(self, exp):
        result = run_query(query("<program root> / m"), exp)
        assert result.names == ("m",)

    def test_any_depth_reaches_deep_scopes(self, exp):
        result = run_query(query("m / ** / h"), exp)
        assert set(result.names) == {"h"}
        assert result.row_count >= 1

    def test_category_step(self, exp):
        result = run_query(query('** / {"category": "loop"}'), exp)
        assert result.row_count > 0
        assert all(c == "loop" for c in result.categories)

    def test_unmatched_pattern_is_empty(self, exp):
        result = run_query(query("no-such-scope"), exp)
        assert result.row_count == 0
        assert result.to_rows() == []

    def test_results_are_preorder(self, exp):
        result = run_query(query("**/*"), exp)
        assert list(result.rows) == sorted(result.rows)


class TestFilterAndPrune:
    def test_share_predicate(self, exp):
        total = exp.total("cycles")
        result = run_query(
            query("**/*").where("cycles.inclusive >= 50%")
                         .select(flavors=("inclusive",)), exp)
        assert result.row_count > 0
        assert all(v >= 0.5 * total for v in result.values[:, 0])

    def test_absolute_predicate(self, exp):
        result = run_query(
            query("**/*").where("cycles.exclusive > 3")
                         .select(flavors=("exclusive",)), exp)
        assert all(v > 3 for v in result.values[:, 0])

    def test_prune_drops_whole_subtree(self, exp):
        kept = run_query(query("**/*").prune("f"), exp)
        assert "f" not in kept.names
        # file1.c:2 lives only inside f's subtree in Figure 1
        assert "file1.c:2" not in kept.names

    def test_conjunction_of_predicates(self, exp):
        both = run_query(
            query("**/*").where("cycles.inclusive > 2",
                                "cycles.exclusive > 2"), exp)
        one = run_query(query("**/*").where("cycles.inclusive > 2"), exp)
        assert both.row_count <= one.row_count


class TestShaping:
    def test_squash_parent_links(self, exp):
        result = run_query(query("** / *loop*").squash(), exp)
        assert result.parents is not None
        for i, parent in enumerate(result.parents):
            assert parent < i  # parents precede children in the result

    def test_groupby_unique_keys(self, exp):
        result = run_query(query("**/*").groupby("category"), exp)
        assert len(set(result.names)) == result.row_count

    def test_sort_and_limit(self, exp):
        full = run_query(query("**/*").sort("cycles"), exp)
        col = full.labels.index("cycles (I)")
        values = list(full.values[:, col])
        assert values == sorted(values, reverse=True)

        top = run_query(query("**/*").sort("cycles").limit(3), exp)
        assert top.row_count == 3
        assert top.truncated == full.row_count - 3
        assert list(top.values[:, col]) == values[:3]

    def test_ascending_sort(self, exp):
        result = run_query(
            query("**/*").sort("cycles", descending=False), exp)
        col = result.labels.index("cycles (I)")
        values = list(result.values[:, col])
        assert values == sorted(values)

    def test_select_shapes_columns(self, exp):
        result = run_query(
            query("m").select(metrics=["cycles"], flavors=("raw",)), exp)
        assert result.labels == ("cycles (R)",)
        assert result.values.shape == (1, 1)

    def test_unknown_metric_raises(self, exp):
        for q in (query("**/*").sort("bogus"),
                  query("**/*").filter("bogus > 1"),
                  query("**/*").select(metrics=["bogus"])):
            with pytest.raises(MetricError):
                run_query(q, exp)


class TestTargets:
    def test_query_runs_on_views(self, exp):
        flat = exp.views()[2]
        result = run_query(query("** / *").groupby("name"), flat)
        assert "f" in result.names and "g" in result.names

    def test_query_runs_on_ensemble_members(self):
        from repro.core.ensemble import align_experiments

        members = [Experiment.from_program(fig1.build(), nranks=1, seed=s)
                   for s in (1, 2)]
        ensemble = align_experiments(members)
        a = run_query(query("**/*").sort("cycles"), ensemble.member(0))
        b = run_query(query("**/*").sort("cycles"), members[0])
        assert a.names == b.names
        assert (a.values == b.values).all()

    def test_query_dot_run_is_run_query(self, exp):
        q = query("m / ** / *").limit(4)
        direct = q.run(exp)
        assert direct.to_rows() == run_query(q, exp).to_rows()

"""Unit tests for the query-language surface (patterns, predicates,
operator builders, and the JSON spec round-trip)."""

from __future__ import annotations

import pytest

from repro.errors import QueryError
from repro.query import (
    ANY_DEPTH,
    MetricPred,
    Query,
    Step,
    parse_pattern,
    parse_predicate,
    query,
)


class TestParsePredicate:
    def test_compact_form(self):
        pred = parse_predicate("CYCLES.exclusive >= 5%")
        assert pred == MetricPred(metric="CYCLES", flavor="exclusive",
                                  op=">=", value=0.05, share=True)

    def test_default_flavor_is_inclusive(self):
        pred = parse_predicate("cycles > 100")
        assert pred.flavor == "inclusive"
        assert pred.value == 100.0
        assert not pred.share

    @pytest.mark.parametrize("op", ["<", "<=", ">", ">=", "==", "!="])
    def test_all_operators(self, op):
        assert parse_predicate(f"m {op} 1").op == op

    @pytest.mark.parametrize("bad", ["", "m", "m >", "> 5", "m ~ 5",
                                     "m.bogus > 5", "m > x"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(QueryError):
            parse_predicate(bad)

    def test_spec_round_trip(self):
        pred = parse_predicate("FLOPS.raw != 3.5")
        assert MetricPred.from_spec(pred.to_spec()) == pred

    def test_spec_validation(self):
        with pytest.raises(QueryError, match="unknown predicate key"):
            MetricPred.from_spec({"metric": "m", "op": ">", "value": 1,
                                  "bogus": True})
        with pytest.raises(QueryError, match="missing"):
            MetricPred.from_spec({"metric": "m", "op": ">"})
        with pytest.raises(QueryError, match="must be a number"):
            MetricPred.from_spec({"metric": "m", "op": ">", "value": "x"})
        with pytest.raises(QueryError, match="unknown predicate op"):
            MetricPred(metric="m", op="~", value=1.0)


class TestParsePattern:
    def test_string_chain(self):
        steps = parse_pattern("main / ** / flux*")
        assert steps == (Step(name="main"), ANY_DEPTH, Step(name="flux*"))

    def test_json_object_segment(self):
        steps = parse_pattern('main / {"name": "f*", "category": "loop"}')
        assert steps[1] == Step(name="f*", category=("loop",))

    def test_embedded_predicate(self):
        steps = parse_pattern(
            '{"category": "loop", "where": [{"metric": "m", "op": ">", '
            '"value": 2}]}')
        assert steps[0].where == (MetricPred(metric="m", op=">", value=2.0),)

    def test_single_step_forms(self):
        assert parse_pattern("main") == (Step(name="main"),)
        assert parse_pattern({"category": "loop"}) == \
            (Step(category=("loop",)),)
        assert parse_pattern([Step(name="x"), "**", "y"]) == \
            (Step(name="x"), ANY_DEPTH, Step(name="y"))

    @pytest.mark.parametrize("bad", ["", "a //", "a / / b", "**",
                                     "** / **", "a / ** / ** / b",
                                     '{"name": "x"'])
    def test_rejects_bad_patterns(self, bad):
        with pytest.raises(QueryError):
            parse_pattern(bad)

    def test_slash_inside_quotes_and_braces(self):
        steps = parse_pattern('{"name": "a/b"} / c')
        assert steps == (Step(name="a/b"), Step(name="c"))


class TestQueryBuilder:
    def test_builders_are_immutable(self):
        q0 = query("main")
        q1 = q0.filter("m > 1").sort("m").limit(3)
        assert q0.ops != q1.ops
        assert q0.row_limit is None and q1.row_limit == 3

    def test_where_alias(self):
        assert query("x").where("m > 1").ops == \
            query("x").filter("m > 1").ops

    def test_filter_requires_something(self):
        with pytest.raises(QueryError, match="filter"):
            query("x").filter()

    def test_groupby_validates_key(self):
        with pytest.raises(QueryError, match="groupby"):
            query("x").groupby("bogus")

    def test_limit_validates(self):
        for bad in (0, -1, 1.5, True):
            with pytest.raises(QueryError):
                query("x").limit(bad)

    def test_select_validates_flavors(self):
        with pytest.raises(QueryError, match="flavor"):
            query("x").select(flavors=("bogus",))
        with pytest.raises(QueryError, match="at least one"):
            query("x").select(flavors=())


class TestSpecRoundTrip:
    CASES = [
        query("main / ** / flux*"),
        query('** / {"category": "loop"}').where("m.exclusive >= 2%"),
        query("a").prune("b*").squash().groupby("category"),
        query("a").select(metrics=["m"], flavors=("raw",))
                  .sort("m", "exclusive", descending=False).limit(7),
    ]

    @pytest.mark.parametrize("q", CASES)
    def test_round_trip(self, q):
        assert Query.from_spec(q.to_spec()) == q

    def test_bare_pattern_string(self):
        assert Query.from_spec("main / *") == query("main / *")

    def test_pattern_shorthand_key(self):
        assert Query.from_spec({"pattern": "main", "limit": 2}) == \
            query("main").limit(2)

    def test_unknown_keys_rejected(self):
        with pytest.raises(QueryError, match="unknown query key"):
            Query.from_spec({"pattern": "x", "bogus": 1})
        with pytest.raises(QueryError, match="unknown op"):
            Query.from_spec({"ops": [{"op": "bogus"}]})

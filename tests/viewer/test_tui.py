"""Tests for the interactive text-mode viewer (driven via onecmd)."""

from __future__ import annotations

import io

import pytest

from repro.hpcprof.experiment import Experiment
from repro.sim.workloads import s3d
from repro.viewer.tui import InteractiveViewer


@pytest.fixture()
def viewer():
    exp = Experiment.from_program(s3d.build())
    return InteractiveViewer(exp, stdout=io.StringIO())


def output(viewer) -> str:
    text = viewer.stdout.getvalue()
    viewer.stdout.truncate(0)
    viewer.stdout.seek(0)
    return text


class TestViewSwitching:
    def test_default_listing_shows_roots(self, viewer):
        viewer.onecmd("ls")
        out = output(viewer)
        assert "Calling Context View" in out
        assert "main" in out
        assert "   1 " in out

    def test_switch_views(self, viewer):
        viewer.onecmd("view callers")
        assert "Callers View" in output(viewer)
        viewer.onecmd("ls")
        out = output(viewer)
        assert "chemkin_m_reaction_rate" in out

    def test_views_marks_active(self, viewer):
        viewer.onecmd("view flat")
        output(viewer)
        viewer.onecmd("views")
        out = output(viewer)
        assert " * flat" in out

    def test_unknown_view(self, viewer):
        viewer.onecmd("view pie-chart")
        assert "unknown view" in output(viewer)


class TestNavigation:
    def test_expand_by_number(self, viewer):
        viewer.onecmd("ls")
        output(viewer)
        viewer.onecmd("expand 1")
        out = output(viewer)
        assert "solve_driver" in out

    def test_collapse(self, viewer):
        viewer.onecmd("ls")
        output(viewer)
        viewer.onecmd("expand 1")
        output(viewer)
        viewer.onecmd("collapse 1")
        out = output(viewer)
        assert "solve_driver" not in out

    def test_bad_row_number(self, viewer):
        viewer.onecmd("ls")
        output(viewer)
        viewer.onecmd("expand 99")
        assert "no row #99" in output(viewer)
        viewer.onecmd("expand xyz")
        assert "expected a row number" in output(viewer)

    def test_hot_expands_to_bottleneck(self, viewer):
        viewer.onecmd("hot")
        out = output(viewer)
        assert "hot path:" in out
        assert "chemkin_m_reaction_rate" in out
        assert "*" in out  # flame markers in the listing

    def test_select_then_source(self, viewer):
        viewer.onecmd("ls")
        output(viewer)
        viewer.onecmd("select 1")
        assert "selected main" in output(viewer)
        viewer.onecmd("source")
        assert "not on disk" in output(viewer)  # synthetic source

    def test_top_limits_rows(self, viewer):
        viewer.onecmd("hot")
        output(viewer)
        viewer.onecmd("top 3")
        viewer.onecmd("ls")
        out = output(viewer)
        assert "limit 3" in out


class TestSortingAndMetrics:
    def test_sort_by_metric(self, viewer):
        viewer.onecmd("sort PAPI_L1_DCM")
        out = output(viewer)
        assert "sorted by PAPI_L1_DCM (inclusive)" in out

    def test_sort_exclusive(self, viewer):
        viewer.onecmd("sort PAPI_TOT_CYC excl")
        assert "(exclusive)" in output(viewer)

    def test_sort_unknown_metric(self, viewer):
        viewer.onecmd("sort NOPE")
        assert "unknown metric" in output(viewer)

    def test_metrics_listing(self, viewer):
        viewer.onecmd("metrics")
        out = output(viewer)
        assert "[0] PAPI_TOT_CYC (raw)" in out

    def test_derive_and_sort_by_it(self, viewer):
        viewer.onecmd("derive waste := 4 * $0 - $1")
        assert "defined derived metric" in output(viewer)
        viewer.onecmd("sort waste")
        assert "sorted by waste" in output(viewer)

    def test_derive_bad_syntax(self, viewer):
        viewer.onecmd("derive nope")
        assert "usage: derive" in output(viewer)
        viewer.onecmd("derive bad := 1 +")
        assert "" != output(viewer)


class TestFlattenAndFilters:
    def test_flatten_in_flat_view(self, viewer):
        viewer.onecmd("view flat")
        output(viewer)
        viewer.onecmd("ls")
        assert ".f90" in output(viewer)  # files at top level
        viewer.onecmd("flatten")
        out = output(viewer)
        assert "rhsf" in out  # procedures now at top level

    def test_filter_elides(self, viewer):
        viewer.onecmd("hot")
        output(viewer)
        viewer.onecmd("filter loop at*")
        out = output(viewer)
        assert "loop at" not in out
        assert "rhsf" in out
        viewer.onecmd("nofilter")
        assert "loop at" in output(viewer)

    def test_threshold_hides_cold(self, viewer):
        viewer.onecmd("ls")
        output(viewer)
        viewer.onecmd("expand 1")
        output(viewer)
        viewer.onecmd("threshold 5")
        out = output(viewer)
        assert "initialize_field" not in out
        assert "solve_driver" in out


class TestMisc:
    def test_quit(self, viewer):
        assert viewer.onecmd("quit") is True

    def test_unknown_command(self, viewer):
        viewer.onecmd("dance")
        assert "unknown command" in output(viewer)

    def test_empty_line_lists(self, viewer):
        viewer.onecmd("")
        assert "Calling Context View" in output(viewer)

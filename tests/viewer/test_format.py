"""Tests for the metric cell formatting rules (Section V-A)."""

from __future__ import annotations

import math

from repro.viewer.format import format_cell, format_percent, format_value


class TestFormatValue:
    def test_zero_is_blank(self):
        assert format_value(0.0) == ""

    def test_scientific_notation(self):
        assert format_value(41900000.0) == "4.19e+07"
        assert format_value(0.0042) == "4.20e-03"

    def test_negative(self):
        assert format_value(-1234.0) == "-1.23e+03"

    def test_non_finite(self):
        assert format_value(float("nan")) == "nan"
        assert format_value(float("inf")) == "inf"
        assert format_value(float("-inf")) == "-inf"


class TestFormatPercent:
    def test_blank_when_total_zero(self):
        assert format_percent(5.0, 0.0) == ""

    def test_blank_when_value_zero(self):
        assert format_percent(0.0, 100.0) == ""

    def test_typical(self):
        assert format_percent(41.4, 100.0) == "41.4%"

    def test_full(self):
        assert format_percent(100.0, 100.0) == "100%"

    def test_tiny_values_stay_visible(self):
        out = format_percent(1e-6, 100.0)
        assert out.endswith("%") and out != ""


class TestFormatCell:
    def test_blank_zero_cell(self):
        assert format_cell(0.0, 100.0) == ""

    def test_value_with_percent(self):
        assert format_cell(41.4, 100.0) == "4.14e+01 41.4%"

    def test_value_without_percent(self):
        assert format_cell(41.4, 100.0, show_percent=False) == "4.14e+01"

    def test_no_total_no_percent(self):
        assert format_cell(41.4, 0.0) == "4.14e+01"

"""Tests for source-line metric annotation."""

from __future__ import annotations

import os
import textwrap

import pytest

from repro.core.errors import ViewError
from repro.hpcprof.experiment import Experiment
from repro.hpcrun.counters import CYCLES
from repro.hpcrun.tracer import trace_call
from repro.hpcstruct.pystruct import build_python_structure
from repro.sim.workloads import fig1, s3d
from repro.viewer.source import annotate_file, render_annotated_source


@pytest.fixture(scope="module")
def s3d_exp():
    return Experiment.from_program(s3d.build())


class TestAnnotateSynthetic:
    def test_costed_lines_for_synthetic_file(self, s3d_exp):
        rows = annotate_file(s3d_exp, "getrates.f")
        lines = {r.line for r in rows}
        assert {25, 85, 145} <= lines  # the three phase-loop bodies

    def test_rows_sorted_by_cost(self, s3d_exp):
        mid = s3d_exp.metric_id(CYCLES)
        rows = annotate_file(s3d_exp, "rhsf.f90")
        values = [r.values.get(mid, 0.0) for r in rows]
        assert values == sorted(values, reverse=True)

    def test_all_contexts_aggregate(self):
        """In fig1, line 2 of file2.c (g's self cost) sums over g1+g2+g3."""
        exp = Experiment.from_program(fig1.build())
        mid = exp.metric_id(fig1.METRIC)
        rows = {r.line: r.values.get(mid, 0.0)
                for r in annotate_file(exp, "file2.c")}
        assert rows[2] == 5.0   # 1 + 1 + 3 across the three contexts
        assert rows[10] == 4.0  # the l2 loop body

    def test_unknown_file_reports_candidates(self, s3d_exp):
        with pytest.raises(ViewError) as err:
            annotate_file(s3d_exp, "nope.f90")
        assert "profiled files" in str(err.value)
        with pytest.raises(ViewError):
            annotate_file(s3d_exp, "")

    def test_render_without_source_text(self, s3d_exp):
        out = render_annotated_source(s3d_exp, "getrates.f", CYCLES)
        assert "annotated with exclusive PAPI_TOT_CYC" in out
        assert "source text not on disk" in out
        assert "    25 " in out


class TestAnnotateRealSource:
    @pytest.fixture(scope="class")
    def real(self, tmp_path_factory):
        workdir = tmp_path_factory.mktemp("annot")
        path = os.path.join(str(workdir), "job.py")
        with open(path, "w") as fh:
            fh.write(textwrap.dedent(
                """
                def hot(n):
                    total = 0
                    for i in range(n):
                        total += i * i
                    return total

                def run():
                    return hot(3000) + hot(10)
                """
            ))
        namespace: dict = {}
        exec(compile(open(path).read(), path, "exec"), namespace)
        _res, profile = trace_call(namespace["run"], roots=[str(workdir)])
        structure = build_python_structure([path])
        return Experiment.from_profile(profile, structure), path

    def test_gutter_marks_hot_loop(self, real):
        exp, path = real
        out = render_annotated_source(exp, path, "line events")
        body_line = next(l for l in out.splitlines() if "total += i * i" in l)
        assert "%" in body_line  # a cost in the gutter
        def_line = next(l for l in out.splitlines() if "def hot" in l)
        assert def_line.split("|")[0].strip() == ""  # no cost on the def

    def test_basename_matching(self, real):
        exp, path = real
        rows = annotate_file(exp, os.path.basename(path))
        assert rows

    def test_context_only_elides_cold_regions(self, real):
        exp, path = real
        out = render_annotated_source(exp, path, "line events",
                                      context_only=True)
        assert "total += i * i" in out

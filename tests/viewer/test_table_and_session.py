"""Tests for tree-table rendering, navigation and the viewer session."""

from __future__ import annotations

import pytest

from repro.core.metrics import MetricFlavor, MetricSpec
from repro.core.views import ViewKind
from repro.hpcprof.experiment import Experiment
from repro.sim.workloads import fig1
from repro.viewer.navigation import NavigationState
from repro.viewer.session import ViewerSession
from repro.viewer.table import TableOptions, render_table, render_view


@pytest.fixture()
def experiment():
    return Experiment.from_program(fig1.build())


@pytest.fixture()
def session(experiment):
    return ViewerSession(experiment)


class TestNavigation:
    def test_roots_visible_unexpanded(self, experiment):
        view = experiment.calling_context_view()
        state = NavigationState(view)
        rows = list(state.visible_rows())
        assert [r.name for r, _ in rows] == ["m"]

    def test_expand_reveals_sorted_children(self, experiment):
        view = experiment.calling_context_view()
        state = NavigationState(view)
        state.expand(view.roots[0])
        rows = list(state.visible_rows())
        names = [r.name for r, _ in rows]
        # children of m sorted by inclusive cycles: f (7) before g3 (3)
        assert names == ["m", "f", "g"]

    def test_ascending_sort(self, experiment):
        view = experiment.calling_context_view()
        state = NavigationState(view)
        state.expand(view.roots[0])
        state.sort_by(state.column, descending=False)
        names = [r.name for r, _ in state.visible_rows()]
        assert names == ["m", "g", "f"]

    def test_collapse(self, experiment):
        view = experiment.calling_context_view()
        state = NavigationState(view)
        state.expand(view.roots[0])
        state.collapse(view.roots[0])
        assert [r.name for r, _ in state.visible_rows()] == ["m"]

    def test_expand_hot_path_marks_and_selects(self, experiment):
        view = experiment.calling_context_view()
        state = NavigationState(view)
        result = state.expand_hot_path()
        assert state.selected is result.hotspot
        assert all(state.is_hot(n) for n in result.path)
        # the hot path rows are now visible
        visible = {id(r) for r, _ in state.visible_rows()}
        assert all(id(n) in visible for n in result.path)


class TestRenderTable:
    def test_header_and_alignment(self, experiment):
        out = render_view(experiment.calling_context_view(), depth=2)
        lines = out.splitlines()
        assert "scope" in lines[0]
        assert "cycles (I)" in lines[0]
        assert "cycles (E)" in lines[0]

    def test_blank_zero_cells(self, experiment):
        out = render_view(experiment.calling_context_view(), depth=1)
        m_line = next(l for l in out.splitlines() if " m" in l.split("|")[0])
        # m has inclusive 10 but exclusive 0: exactly one numeric cell
        cells = [c.strip() for c in m_line.split("|")[1:]]
        assert cells[0].startswith("1.00e+01")
        assert cells[1] == ""

    def test_percent_of_total(self, experiment):
        out = render_view(experiment.calling_context_view(), depth=2)
        f_line = next(l for l in out.splitlines() if " f" in l.split("|")[0])
        assert "70.0%" in f_line  # 7 of 10 cycles

    def test_call_site_icon_and_location(self, experiment):
        out = render_view(experiment.calling_context_view(), depth=2)
        f_line = next(l for l in out.splitlines() if " f" in l.split("|")[0])
        assert ">> f" in f_line
        assert "file1.c:7" in f_line  # the call-site line in m

    def test_max_rows_truncation(self, experiment):
        opts = TableOptions(max_rows=2)
        out = render_view(experiment.calling_context_view(), depth=5, options=opts)
        assert "more rows" in out.splitlines()[-1]

    def test_hot_path_flame_markers(self, experiment):
        view = experiment.calling_context_view()
        state = NavigationState(view)
        state.expand_hot_path()
        out = render_table(view, state)
        flamed = [l for l in out.splitlines() if l.lstrip().startswith("*")]
        assert len(flamed) >= 3


class TestViewerSession:
    def test_lazy_view_loading(self, session):
        assert session.loaded_views == 0
        session.show(ViewKind.CALLING_CONTEXT)
        assert session.loaded_views == 1
        session.show(ViewKind.FLAT)
        assert session.loaded_views == 2

    def test_render_all_three_views(self, session):
        for kind in ViewKind:
            out = session.render(kind, expand_depth=2)
            assert "scope" in out
            assert session.experiment.name in out

    def test_hot_path_through_session(self, session):
        session.show(ViewKind.CALLING_CONTEXT)
        result = session.expand_hot_path()
        assert result.hotspot_value == 4.0

    def test_threshold_preference(self, session):
        session.show(ViewKind.CALLING_CONTEXT)
        session.hot_path_threshold = 0.99
        result = session.expand_hot_path()
        # with a 99% threshold the path stops almost immediately
        assert len(result) <= 3

    def test_flatten_through_session(self, session):
        session.show(ViewKind.FLAT)
        before = session.render(ViewKind.FLAT)
        session.flatten()
        after = session.render(ViewKind.FLAT)
        assert "file1.c" in before
        assert "file1.c" not in after.split("\n", 2)[2]

    def test_derived_metric_column(self, session):
        session.add_derived_metric("double cycles", "2 * $0")
        view = session.show(ViewKind.CALLING_CONTEXT)
        spec = session.experiment.spec("double cycles")
        assert view.value(view.roots[0], spec) == 20.0

    def test_source_pane_missing_file(self, session):
        view = session.show(ViewKind.CALLING_CONTEXT)
        node = view.roots[0]
        out = session.source_pane(node)
        assert "not on disk" in out or "no source" in out

"""Regression tests for the lazy-construction races.

``ViewerSession.view()``/``state()`` and ``View.roots`` construct their
components on first access; before the guard, two threads hitting the
same cold path would each build a component and clobber the shared dict
— harmless for a single-user TUI, state-splitting for the concurrent
analysis server (one thread sorts a View the other thread never sees).

The hammer here releases 16 threads through a barrier at every cold
path and asserts exactly one component per kind was ever constructed.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.views import ViewKind
from repro.hpcprof.experiment import Experiment
from repro.sim.workloads import fig1
from repro.viewer.session import ViewerSession

N_THREADS = 16


@pytest.fixture()
def experiment():
    return Experiment.from_program(fig1.build())


class CountingExperiment:
    """Wrap an Experiment, counting every view-factory invocation."""

    def __init__(self, experiment: Experiment) -> None:
        self._experiment = experiment
        self.builds: dict[str, int] = {
            "calling_context_view": 0, "callers_view": 0, "flat_view": 0,
        }
        self._count_lock = threading.Lock()

    def __getattr__(self, name):
        value = getattr(self._experiment, name)
        if name in self.builds:
            def counted(*args, **kwargs):
                with self._count_lock:
                    self.builds[name] += 1
                return value(*args, **kwargs)

            return counted
        return value


def _hammer(n_threads: int, work) -> list:
    """Run *work(index)* on n threads after a common barrier; re-raise."""
    barrier = threading.Barrier(n_threads)
    results: list = [None] * n_threads
    errors: list = []

    def run(i: int) -> None:
        barrier.wait()
        try:
            results[i] = work(i)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert not any(t.is_alive() for t in threads), "hammer thread hung"
    if errors:
        raise errors[0]
    return results


def test_concurrent_view_builds_exactly_one_per_kind(experiment):
    counting = CountingExperiment(experiment)
    session = ViewerSession(counting)

    def work(i: int):
        kind = list(ViewKind)[i % len(ViewKind)]
        return kind, session.view(kind)

    results = _hammer(N_THREADS, work)

    assert counting.builds == {
        "calling_context_view": 1, "callers_view": 1, "flat_view": 1,
    }
    # every thread asking for a kind got the *same* View object
    for kind in ViewKind:
        views = {id(v) for k, v in results if k is kind}
        assert len(views) == 1
    assert session.loaded_views == len(ViewKind)


def test_concurrent_state_builds_exactly_one_per_kind(experiment):
    session = ViewerSession(experiment)

    def work(i: int):
        kind = list(ViewKind)[i % len(ViewKind)]
        return kind, session.state(kind)

    results = _hammer(N_THREADS, work)
    for kind in ViewKind:
        states = {id(s) for k, s in results if k is kind}
        assert len(states) == 1
    # states were built against the single shared view of their kind
    for kind, state in results:
        assert state.view is session.view(kind)


def test_concurrent_roots_access_builds_once(experiment):
    """View.roots double-checks under its build lock: one forest only."""
    view = experiment.calling_context_view()
    results = _hammer(N_THREADS, lambda i: view.roots)
    first = results[0]
    assert all(r is first for r in results)


def test_mixed_view_state_render_hammer(experiment):
    """Sessions survive interleaved view/state/render first accesses."""
    from repro.server.sessions import render_snapshot

    session = ViewerSession(experiment)
    lock = threading.RLock()  # server-style per-session serialization

    def work(i: int):
        kind = list(ViewKind)[i % len(ViewKind)]
        with lock:
            return kind, render_snapshot(session, kind, depth=2)["text"]

    results = _hammer(N_THREADS, work)
    by_kind: dict[ViewKind, set[str]] = {}
    for kind, text in results:
        by_kind.setdefault(kind, set()).add(text)
    # renders of the same kind are identical regardless of thread timing
    assert all(len(texts) == 1 for texts in by_kind.values())

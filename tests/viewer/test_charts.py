"""Unit tests for the ASCII chart renderers (Figure 7's panels)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.viewer.charts import (
    render_histogram,
    render_rank_panel,
    render_scatter,
    render_sorted,
)


@pytest.fixture()
def skewed():
    rng = np.random.default_rng(3)
    return rng.lognormal(mean=0.0, sigma=0.5, size=128)


class TestScatter:
    def test_shape(self, skewed):
        out = render_scatter(skewed, width=40, height=8, title="t")
        lines = out.splitlines()
        assert lines[0] == "t"
        assert len(lines) == 1 + 8 + 2  # title + rows + axis + label
        assert all("|" in line for line in lines[1:9])

    def test_axis_labels_bound_the_series(self, skewed):
        """Top/bottom labels are the plotted (bucket-mean) extremes."""
        out = render_scatter(skewed)
        lines = out.splitlines()
        top = float(lines[1].split("|")[0])
        bottom = float(lines[-3].split("|")[0])
        assert bottom < top
        assert skewed.min() <= bottom <= top <= skewed.max()

    def test_one_star_per_column(self, skewed):
        out = render_scatter(skewed, width=20, height=6)
        body = [l.split("|", 1)[1] for l in out.splitlines()[1:7]]
        for col in range(20):
            assert sum(1 for row in body if row[col] == "*") == 1

    def test_constant_series(self):
        out = render_scatter(np.full(16, 3.0), width=16, height=5)
        assert out.count("*") == 16

    def test_empty(self):
        assert "(no data)" in render_scatter(np.array([]))

    def test_fewer_ranks_than_width(self):
        out = render_scatter(np.arange(4.0), width=64, height=4)
        assert out.count("*") == 4


class TestSorted:
    def test_monotone_rendering(self, skewed):
        out = render_sorted(skewed, width=32, height=8)
        body = [l.split("|", 1)[1] for l in out.splitlines()[1:9]]
        # star height (row index from bottom) must be non-decreasing
        heights = []
        for col in range(32):
            row = next(i for i, line in enumerate(body) if line[col] == "*")
            heights.append(8 - row)
        assert heights == sorted(heights)


class TestHistogram:
    def test_counts_sum_to_n(self, skewed):
        out = render_histogram(skewed, bins=8)
        counts = [int(line.split(")")[1].split()[0])
                  for line in out.splitlines()[1:]]
        assert sum(counts) == len(skewed)

    def test_bar_lengths_proportional(self):
        values = np.array([1.0] * 30 + [10.0] * 10)
        out = render_histogram(values, bins=2, width=30)
        lines = out.splitlines()[1:]
        bars = [line.count("#") for line in lines]
        assert bars[0] == 30           # the modal bin fills the width
        assert 8 <= bars[1] <= 12      # ~ a third

    def test_empty(self):
        assert "(no data)" in render_histogram(np.array([]))


class TestPanel:
    def test_panel_contains_all_three_charts_and_stats(self, skewed):
        out = render_rank_panel(skewed, title="demo")
        assert "=== demo ===" in out
        assert "imbalance(max/mean)=" in out
        assert "per-rank values" in out
        assert "sorted values" in out
        assert "histogram" in out

    def test_panel_imbalance_statistic(self):
        out = render_rank_panel(np.array([1.0, 1.0, 4.0]))
        assert "imbalance(max/mean)=2.00" in out

    def test_empty_panel(self):
        assert "(no data)" in render_rank_panel(np.array([]))

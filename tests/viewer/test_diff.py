"""Tests for differential experiment presentation."""

from __future__ import annotations

import pytest

from repro.core.errors import ViewError
from repro.core.metrics import MetricFlavor
from repro.core.views import NodeCategory
from repro.hpcprof.experiment import Experiment
from repro.hpcrun.counters import CYCLES
from repro.sim.workloads import s3d
from repro.viewer.diff import ExperimentDiff


@pytest.fixture(scope="module")
def before():
    return Experiment.from_program(s3d.build())


@pytest.fixture(scope="module")
def after():
    return Experiment.from_program(s3d.build(tuned=True))


@pytest.fixture(scope="module")
def diff(before, after):
    return ExperimentDiff(before, after, CYCLES)


class TestAlignment:
    def test_inclusive_deltas_propagate_to_ancestors(self, diff):
        """With inclusive values, every ancestor of the tuned loop moves
        by the same amount — the expected containment behaviour."""
        movers = {r.name: r for r in diff.rows}
        flux = movers["compute_diffusive_flux"]
        for ancestor in ["main", "solve_driver", "integrate_erk", "rhsf"]:
            assert movers[ancestor].delta == pytest.approx(flux.delta)

    def test_exclusive_diff_localizes_the_change(self, before, after):
        """The exclusive flavour pins the change to the changed scope."""
        ediff = ExperimentDiff(before, after, CYCLES,
                               flavor=MetricFlavor.EXCLUSIVE)
        assert ediff.rows[0].name == "compute_diffusive_flux"
        others = [r for r in ediff.rows[1:]]
        assert all(r.delta == pytest.approx(0.0) for r in others)

    def test_flux_speedup_matches_the_paper(self, diff):
        flux = next(r for r in diff.rows if r.name == "compute_diffusive_flux")
        assert flux.speedup == pytest.approx(2.9, abs=0.01)

    def test_untouched_scopes_are_stable(self, diff):
        ratt = next(r for r in diff.rows if r.name == "ratt")
        assert ratt.speedup == pytest.approx(1.0)
        assert ratt.delta == 0.0

    def test_total_speedup(self, diff, before, after):
        expected = before.total(CYCLES) / after.total(CYCLES)
        assert diff.total_speedup == pytest.approx(expected)
        assert diff.total_speedup > 1.05

    def test_improved_and_regressed(self, diff):
        improved = {r.name for r in diff.improved()}
        assert "compute_diffusive_flux" in improved
        assert diff.regressed() == []

    def test_loop_granularity(self, before, after):
        loop_diff = ExperimentDiff(before, after, CYCLES,
                                   flavor=MetricFlavor.EXCLUSIVE,
                                   granularity=NodeCategory.LOOP)
        top = loop_diff.rows[0]
        assert top.file == "diffflux.f90"
        assert top.speedup == pytest.approx(2.9, abs=0.01)

    def test_exclusive_flavor(self, before, after):
        ediff = ExperimentDiff(before, after, CYCLES,
                               flavor=MetricFlavor.EXCLUSIVE)
        flux = next(r for r in ediff.rows
                    if r.name == "compute_diffusive_flux")
        # flux's own exclusive time also shrank 2.9x
        assert flux.speedup == pytest.approx(2.9, abs=0.05)


class TestEdgeCases:
    def test_scope_only_in_one_run(self, before):
        from repro.sim.workloads import fig1

        other = Experiment.from_program(fig1.build())
        other.metrics.add(CYCLES)  # shared metric name, disjoint scopes
        diff = ExperimentDiff(other, other, CYCLES)
        assert all(not r.only_before and not r.only_after for r in diff)

    def test_missing_metric_rejected(self, before):
        from repro.sim.workloads import fig1

        other = Experiment.from_program(fig1.build())
        with pytest.raises(ViewError):
            ExperimentDiff(before, other, CYCLES)

    def test_invalid_granularity(self, before, after):
        with pytest.raises(ViewError):
            ExperimentDiff(before, after, CYCLES,
                           granularity=NodeCategory.STATEMENT)

    def test_render(self, diff):
        text = diff.render(top=5)
        assert "overall speedup" in text
        assert "compute_diffusive_flux" in text
        assert "more scopes" in text

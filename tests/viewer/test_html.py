"""Tests for the HTML export."""

from __future__ import annotations

import pytest

from repro.core.metrics import MetricFlavor, MetricSpec
from repro.hpcprof.experiment import Experiment
from repro.hpcrun.counters import CYCLES
from repro.sim.workloads import s3d
from repro.viewer.html import render_html


@pytest.fixture(scope="module")
def exp():
    return Experiment.from_program(s3d.build())


class TestHtmlExport:
    def test_document_structure(self, exp):
        doc = render_html(exp.calling_context_view(), title="S3D run")
        assert doc.startswith("<!DOCTYPE html>")
        assert "<title>S3D run</title>" in doc
        assert doc.rstrip().endswith("</html>")
        assert "toggleRow" in doc

    def test_metric_headers(self, exp):
        doc = render_html(exp.calling_context_view())
        assert "PAPI_TOT_CYC (I)" in doc
        assert "PAPI_TOT_CYC (E)" in doc

    def test_rows_and_percentages(self, exp):
        doc = render_html(exp.calling_context_view(), max_depth=6)
        assert "rhsf" in doc
        assert "97.9%" in doc or "97.8%" in doc

    def test_hot_path_highlight(self, exp):
        result = exp.hot_path(CYCLES)
        view = exp.calling_context_view()
        # re-run the hot path on the same view object for identity match
        result = exp.hot_path(CYCLES, view=view)
        doc = render_html(view, hot=result, max_depth=2)
        assert "class='hot'" in doc
        assert "chemkin_m_reaction_rate" in doc  # included beyond max_depth

    def test_custom_columns(self, exp):
        spec = MetricSpec(exp.metric_id(CYCLES), MetricFlavor.EXCLUSIVE)
        doc = render_html(exp.flat_view(), columns=[spec])
        assert doc.count("PAPI_TOT_CYC (E)") == 1
        assert "PAPI_FP_OPS" not in doc

    def test_truncation(self, exp):
        doc = render_html(exp.calling_context_view(), max_depth=8, max_rows=5)
        assert "(truncated at 5 rows)" in doc

    def test_escaping(self):
        """Scope names with markup must be escaped."""
        from repro.sim.program import Module, Procedure, Program, Work

        prog = Program(
            name="esc",
            modules=[Module(path="a.c", procedures=[
                Procedure(name="operator<<", line=1,
                          body=[Work(line=2, costs={"c": 1.0})]),
            ])],
            entry="operator<<",
            metrics=[("c", "u")],
        )
        exp = Experiment.from_program(prog)
        doc = render_html(exp.calling_context_view())
        assert "operator&lt;&lt;" in doc
        assert "<<(" not in doc

    def test_all_three_views_render(self, exp):
        for view in exp.views():
            doc = render_html(view, max_depth=3)
            assert "<table>" in doc

"""Tests for the TUI's find and annotate commands."""

from __future__ import annotations

import io

import pytest

from repro.hpcprof.experiment import Experiment
from repro.sim.workloads import s3d
from repro.viewer.tui import InteractiveViewer


@pytest.fixture()
def viewer():
    exp = Experiment.from_program(s3d.build())
    return InteractiveViewer(exp, stdout=io.StringIO())


def output(viewer) -> str:
    text = viewer.stdout.getvalue()
    viewer.stdout.truncate(0)
    viewer.stdout.seek(0)
    return text


class TestFind:
    def test_find_selects_heaviest(self, viewer):
        viewer.onecmd("find chemkin*")
        out = output(viewer)
        assert "main ->" in out
        assert "selected heaviest match: chemkin_m_reaction_rate" in out
        viewer.onecmd("hot")
        out = output(viewer)
        # flame starts at the selected scope
        assert out.startswith("hot path: chemkin_m_reaction_rate")

    def test_find_no_match(self, viewer):
        viewer.onecmd("find zz*")
        assert "no matches" in output(viewer)

    def test_find_usage(self, viewer):
        viewer.onecmd("find")
        assert "usage: find" in output(viewer)


class TestAnnotate:
    def test_annotate_synthetic_file(self, viewer):
        viewer.onecmd("annotate rhsf.f90")
        out = output(viewer)
        assert "annotated with exclusive PAPI_TOT_CYC" in out
        assert "110" in out  # rhsf's work statement line

    def test_annotate_explicit_metric(self, viewer):
        viewer.onecmd("annotate diffflux.f90 PAPI_L1_DCM")
        assert "PAPI_L1_DCM" in output(viewer)

    def test_annotate_unknown_file(self, viewer):
        viewer.onecmd("annotate missing.c")
        assert "profiled files" in output(viewer)

    def test_annotate_usage(self, viewer):
        viewer.onecmd("annotate")
        assert "usage: annotate" in output(viewer)


class TestAdvise:
    def test_advise_lists_suggestions(self, viewer):
        viewer.onecmd("advise")
        out = output(viewer)
        assert "[memory-bound-loop]" in out
        assert "evidence:" in out

"""Unit tests for the ViewNode/View API surface."""

from __future__ import annotations

import pytest

from repro.core.errors import ViewError
from repro.core.metrics import MetricFlavor, MetricSpec
from repro.core.views import NodeCategory, ViewNode
from repro.hpcprof.experiment import Experiment
from repro.sim.workloads import fig1, s3d


@pytest.fixture(scope="module")
def exp():
    return Experiment.from_program(s3d.build())


class TestViewNode:
    def test_lazy_expansion_runs_once(self):
        calls = []

        def expander(row):
            calls.append(row)
            return [ViewNode("child", NodeCategory.STATEMENT)]

        node = ViewNode("parent", NodeCategory.PROCEDURE, expander=expander)
        assert not node.is_expanded
        assert [c.name for c in node.children] == ["child"]
        assert node.is_expanded
        node.children
        assert len(calls) == 1
        assert node.children[0].parent is node

    def test_no_expander_means_leaf(self):
        node = ViewNode("leaf", NodeCategory.STATEMENT)
        assert node.is_leaf
        assert node.children == []

    def test_set_children_reparents(self):
        parent = ViewNode("p", NodeCategory.PROCEDURE)
        child = ViewNode("c", NodeCategory.LOOP)
        parent.set_children([child])
        assert child.parent is parent
        assert parent.depth == 0 and child.depth == 1
        assert list(child.ancestors()) == [parent]

    def test_value_flavors(self):
        node = ViewNode("n", NodeCategory.PROCEDURE,
                        inclusive={0: 10.0}, exclusive={0: 4.0})
        assert node.value(MetricSpec(0, MetricFlavor.INCLUSIVE)) == 10.0
        assert node.value(MetricSpec(0, MetricFlavor.EXCLUSIVE)) == 4.0
        assert node.value(MetricSpec(1, MetricFlavor.INCLUSIVE)) == 0.0

    def test_walk_max_depth(self, exp):
        root = exp.calling_context_view().roots[0]
        shallow = list(root.walk(max_depth=1))
        assert all(n.depth - root.depth <= 1 for n in shallow)

    def test_location(self):
        node = ViewNode("n", NodeCategory.STATEMENT, file="a.c", line=12)
        assert node.location() == "a.c:12"
        assert ViewNode("m", NodeCategory.FILE, file="a.c").location() == "a.c"


class TestViewApi:
    def test_find_category_disambiguation(self, exp):
        flat = exp.flat_view()
        row = flat.find("exp", category=NodeCategory.PROCEDURE)
        assert row.category is NodeCategory.PROCEDURE

    def test_find_missing_raises(self, exp):
        with pytest.raises(ViewError):
            exp.calling_context_view().find("not-a-scope")

    def test_find_all(self):
        e = Experiment.from_program(fig1.build())
        view = e.calling_context_view()
        assert len(view.find_all("g")) == 3
        assert view.find_all("zzz") == []

    def test_invalidate_rebuilds(self, exp):
        view = exp.calling_context_view()
        first = view.roots
        view.invalidate()
        second = view.roots
        assert first is not second
        assert [r.name for r in first] == [r.name for r in second]

    def test_totals_from_cct_root(self, exp):
        view = exp.flat_view()
        spec = exp.spec("PAPI_TOT_CYC")
        assert view.total(spec) == exp.total("PAPI_TOT_CYC")

    def test_derived_value_memoized_per_view(self, exp):
        exp.add_derived_metric("twice", "2 * $0")
        view = exp.calling_context_view()
        spec = exp.spec("twice")
        row = view.roots[0]
        value = view.value(row, spec)
        assert value == 2 * exp.total("PAPI_TOT_CYC")
        # memoized on the view, NOT written into the row's metric dicts:
        # CC-view rows alias the CCT nodes' vectors, so an on-row write
        # would leak the derived column into other views' aggregations
        assert spec.mid not in row.inclusive
        assert view._derived_cache[(id(row), spec.mid, spec.flavor)] == value

    def test_derived_evaluation_does_not_bleed_across_views(self, exp):
        """Evaluating a derived column in one view must not change what
        another view over the same CCT aggregates for any column."""
        if "twice" not in exp.metrics:
            exp.add_derived_metric("twice", "2 * $0")
        spec = exp.spec("twice")
        baseline = exp.flat_view()
        expected = {r.name: baseline.value(r, spec) for r in baseline.roots}
        # pollute: walk a CC view evaluating the derived column everywhere
        ccv = exp.calling_context_view()
        for root in ccv.roots:
            for node in root.walk():
                ccv.value(node, spec)
        fresh = exp.flat_view()
        observed = {r.name: fresh.value(r, spec) for r in fresh.roots}
        assert observed == expected

    def test_derived_total(self, exp):
        exp.metrics.names()  # ensure 'twice' from the previous test or add
        if "thrice" not in exp.metrics:
            exp.add_derived_metric("thrice", "3 * $0")
        view = exp.calling_context_view()
        spec = exp.spec("thrice")
        assert view.total(spec) == 3 * exp.total("PAPI_TOT_CYC")


class TestDerivedCycleGuard:
    """The cyclic-reference guard in View.value (a real instance attribute,
    initialized in __init__, not conjured via getattr)."""

    def _cyclic_experiment(self):
        # define_derived validates referenced columns exist, which forbids
        # forward references — register the raw descriptors directly to
        # build the mutual cycle a buggy database could contain.
        from repro.core.metrics import MetricKind

        e = Experiment.from_program(fig1.build())
        a = e.metrics.add(
            "a", kind=MetricKind.DERIVED, formula=f"${len(e.metrics) + 1} + 1"
        )
        b = e.metrics.add("b", kind=MetricKind.DERIVED, formula=f"${a.mid} * 2")
        assert a.formula == f"${b.mid} + 1"
        return e, a, b

    def test_cycle_raises_view_error(self):
        e, a, _b = self._cyclic_experiment()
        view = e.calling_context_view()
        with pytest.raises(ViewError, match="cyclic derived-metric"):
            view.value(view.roots[0], MetricSpec(a.mid, MetricFlavor.INCLUSIVE))

    def test_self_reference_raises(self):
        from repro.core.metrics import MetricKind

        e = Experiment.from_program(fig1.build())
        d = e.metrics.add(
            "self", kind=MetricKind.DERIVED, formula=f"${len(e.metrics)} + 1"
        )
        view = e.calling_context_view()
        with pytest.raises(ViewError, match="cyclic derived-metric"):
            view.value(view.roots[0], MetricSpec(d.mid, MetricFlavor.EXCLUSIVE))

    def test_guard_resets_after_failure(self):
        """A failed evaluation must not poison later, acyclic ones."""
        from repro.core.derived import define_derived

        e, a, _b = self._cyclic_experiment()
        view = e.calling_context_view()
        spec_a = MetricSpec(a.mid, MetricFlavor.INCLUSIVE)
        with pytest.raises(ViewError):
            view.value(view.roots[0], spec_a)
        ok = define_derived(e.metrics, "fine", "$0 * 2")
        row = view.roots[0]
        expected = 2 * row.value(MetricSpec(0, MetricFlavor.INCLUSIVE))
        assert view.value(row, MetricSpec(ok.mid, MetricFlavor.INCLUSIVE)) == expected
        # and the guard is empty again (instance attribute, per-view state)
        assert view._eval_guard == set()

    def test_guard_is_initialized_in_init(self):
        view = Experiment.from_program(fig1.build()).calling_context_view()
        assert view._eval_guard == set()

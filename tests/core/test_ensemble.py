"""Unit tests for :mod:`repro.core.ensemble` and the advisor bridge."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.attribution import attribute
from repro.core.ensemble import (
    EnsembleView,
    align_experiments,
    detect_regressions,
)
from repro.errors import MetricError
from repro.hpcprof.experiment import Experiment
from repro.hpcstruct.synthstruct import build_structure
from repro.sim.executor import execute
from repro.sim.scale import scale_program


def _member(rank: int, name: str | None = None,
            boost: str | None = None, scale: float = 2.0) -> Experiment:
    """One run of the scale corpus; *boost* multiplies a subtree's costs."""
    program = scale_program(fanout=2, depth=2)
    structure = build_structure(program)
    profile = execute(program, rank=rank, nranks=4, seed=13)
    exp = Experiment.from_profile(profile, structure,
                                  name=name or f"m{rank}")
    if boost is not None:
        for node in exp.cct.walk():
            if any(f.name == boost for f in node.call_path()):
                for mid, value in list(node.raw.items()):
                    node.raw[mid] = value * scale
        attribute(exp.cct)
        exp.cct.invalidate_caches()
    return exp


@pytest.fixture(scope="module")
def ensemble() -> EnsembleView:
    return align_experiments([_member(i) for i in range(3)])


# --------------------------------------------------------------------- #
# selectors and statistics
# --------------------------------------------------------------------- #
def test_resolve_selectors(ensemble):
    assert ensemble.resolve(0) == (0, "m0")
    assert ensemble.resolve(-1) == (2, "m2")
    assert ensemble.resolve("m1") == (1, "m1")
    assert ensemble.resolve("mean") == (None, "mean")
    with pytest.raises(MetricError, match="unknown ensemble member"):
        ensemble.resolve("nope")
    with pytest.raises(MetricError, match="out of range"):
        ensemble.resolve(7)
    with pytest.raises(MetricError, match="selector"):
        ensemble.resolve(True)
    with pytest.raises(MetricError, match="selector"):
        ensemble.resolve(1.5)


def test_stats_match_numpy(ensemble):
    stats = ensemble.stats("cycles", "inclusive", quantiles=(0.5,))
    matrix = ensemble.matrix("cycles", "inclusive")
    assert stats.count == 3
    assert np.allclose(stats.mean, matrix.mean(axis=0))
    assert np.allclose(stats.stddev, matrix.std(axis=0))
    assert np.array_equal(stats.minimum, matrix.min(axis=0))
    assert np.array_equal(stats.maximum, matrix.max(axis=0))
    assert np.array_equal(stats.quantiles[0.5],
                          np.quantile(matrix, 0.5, axis=0))


def test_unknown_metric_and_flavor(ensemble):
    with pytest.raises(MetricError, match="unknown metric"):
        ensemble.matrix("no-such")
    with pytest.raises(MetricError, match="unknown flavor"):
        ensemble.matrix("cycles", "diagonal")


def test_attach_stats_is_idempotent():
    ensemble = align_experiments([_member(0), _member(1)])
    before = len(ensemble.union.metrics)
    ids = ensemble.attach_stats()
    assert ensemble.attach_stats() is ids
    names = {d.name for d in ensemble.union.metrics}
    assert {"cycles (mean)", "cycles (min)", "cycles (max)",
            "cycles (stddev)"} <= names
    assert len(ensemble.union.metrics) == before + 4
    # the mean column is the member average on the root
    mean_mid = ensemble.union.metrics.by_name("cycles (mean)").mid
    matrix = ensemble.matrix("cycles", "inclusive")
    assert ensemble.union.cct.root.inclusive.get(mean_mid, 0.0) \
        == pytest.approx(matrix[:, 0].mean())


# --------------------------------------------------------------------- #
# materialization
# --------------------------------------------------------------------- #
def test_member_rematerializes_totals(ensemble):
    member = ensemble.member(1)
    matrix = ensemble.matrix("cycles", "inclusive")
    mid = ensemble.alignment.mids[0]
    assert member.cct.root.inclusive.get(mid, 0.0) \
        == pytest.approx(matrix[1, 0])
    assert member.name == "m1"


def test_diff_scale_and_subtract(ensemble):
    mid = ensemble.alignment.mids[0]
    matrix = ensemble.matrix("cycles", "inclusive")
    diff = ensemble.diff(0, 2, factor=2.0)
    assert diff.name == "m2 vs 2*m0"
    assert diff.cct.root.inclusive.get(mid, 0.0) \
        == pytest.approx(matrix[2, 0] - 2.0 * matrix[0, 0])
    plain = ensemble.diff(0, 2)
    assert plain.name == "m2 vs m0"
    with pytest.raises(MetricError, match="must be positive"):
        ensemble.diff(0, 1, factor=0.0)


def test_diff_views_render(ensemble):
    """The diff is a first-class experiment: all three views build."""
    diff = ensemble.diff("mean", -1, name="drift")
    assert diff.name == "drift"
    assert len(diff.views()) == 3
    flat = diff.flat_view()
    assert flat.roots


def test_payload_shape(ensemble):
    payload = ensemble.to_payload()
    assert payload["members"] == ["m0", "m1", "m2"]
    assert payload["n_experiments"] == 3
    assert payload["metrics"] == ["cycles"]
    assert payload["report"]["n_members"] == 3


# --------------------------------------------------------------------- #
# regression detection
# --------------------------------------------------------------------- #
def test_detect_flags_planted_regression():
    members = [_member(i) for i in range(3)]
    members.append(_member(3, name="bad", boost="p1_1", scale=3.0))
    ensemble = align_experiments(members)
    findings = detect_regressions(ensemble, target="bad")
    regressed = {f.scope for f in findings if f.kind == "regression"}
    assert "p1_1" in regressed
    top = findings[0]
    assert top.target == "bad"
    assert abs(top.delta) == max(abs(f.delta) for f in findings)
    # shares, not absolutes: scaling a whole member flags nothing
    uniform = align_experiments(
        [_member(0), _member(1), _member(2, boost="p0_0", scale=4.0)]
    )
    assert detect_regressions(uniform, target=2) == []


def test_detect_selector_validation(ensemble):
    with pytest.raises(MetricError, match="target must be a member"):
        detect_regressions(ensemble, target="mean")
    with pytest.raises(MetricError, match="corpus members must be"):
        detect_regressions(ensemble, target=0, baseline=["mean"])
    with pytest.raises(MetricError, match="corpus is empty"):
        detect_regressions(ensemble, target=0, baseline=[])


def test_detect_explicit_baseline_corpus():
    members = [_member(0), _member(1),
               _member(2, name="bad", boost="p1_0", scale=3.0)]
    ensemble = align_experiments(members)
    findings = detect_regressions(ensemble, target="bad", baseline=[0])
    assert any(f.scope == "p1_0" and f.kind == "regression"
               for f in findings)
    # a single-member corpus has no spread: sigma rule stays silent
    assert all(f.sigmas is None for f in findings)


def test_finding_payload_and_describe():
    members = [_member(0), _member(1),
               _member(2, name="bad", boost="p1_1", scale=3.0)]
    findings = detect_regressions(align_experiments(members), target="bad")
    assert findings
    finding = findings[0]
    payload = finding.to_payload()
    assert payload["scope"] == finding.scope
    assert payload["path"] == list(finding.path)
    text = finding.describe()
    assert finding.scope in text and "share" in text


def test_advise_regressions_bridges_findings():
    from repro.core.advisor import advise_regressions

    members = [_member(0), _member(1),
               _member(2, name="bad", boost="p1_1", scale=3.0)]
    suggestions = advise_regressions(align_experiments(members),
                                     target="bad")
    assert suggestions
    assert all(s.rule.startswith("ensemble-") for s in suggestions)
    top = suggestions[0]
    assert top.impact == abs(top.evidence["delta"])
    assert "target_share" in top.evidence
    assert top.describe()

"""Handcrafted attribution cases pinning Eq. 1/2 corner behaviour."""

from __future__ import annotations

import pytest

from repro.core.attribution import (
    aggregate_exposed,
    attribute,
    exposed_instances,
    exposed_sum,
)
from repro.core.cct import CCT
from repro.hpcstruct.model import StructureModel, StructureNode, StructKind, SourceLocation


@pytest.fixture()
def structure():
    model = StructureModel("unit")
    lm = model.add_load_module("u.x")
    f = model.add_file(lm, "u.c")
    model.add_procedure(f, "p", 1, 40)
    model.add_procedure(f, "q", 50, 90)
    return model


def loop_struct(proc, line, end):
    return StructureNode(
        StructKind.LOOP, f"loop@{line}",
        SourceLocation(proc.location.file, line, end), parent=proc,
    )


class TestEquationOne:
    def test_call_site_raw_counts_toward_caller_frame(self, structure):
        """Cost at the call instruction belongs to the *caller*'s
        exclusive value (f in Figure 2 earns its 1 this way)."""
        cct = CCT()
        p = cct.root.ensure_frame(structure.procedure("p"))
        site = p.ensure_call_site(5)
        site.add_raw({0: 2.0})
        q = site.ensure_frame(structure.procedure("q"))
        q.ensure_statement(55).add_raw({0: 10.0})
        attribute(cct)
        assert p.exclusive == {0: 2.0}       # call-line cost only
        assert q.exclusive == {0: 10.0}
        assert site.exclusive == {0: 2.0}    # rule 1: the invocation itself
        assert p.inclusive == {0: 12.0}

    def test_frame_exclusive_spans_loop_nests(self, structure):
        cct = CCT()
        p = cct.root.ensure_frame(structure.procedure("p"))
        outer = p.ensure_loop(loop_struct(structure.procedure("p"), 10, 30))
        inner = outer.ensure_loop(loop_struct(structure.procedure("p"), 15, 25))
        outer.ensure_statement(11).add_raw({0: 1.0})
        inner.ensure_statement(16).add_raw({0: 5.0})
        attribute(cct)
        # frame: all statements within the frame, any nesting depth
        assert p.exclusive == {0: 6.0}
        # loops: direct child statements only
        assert outer.exclusive == {0: 1.0}
        assert inner.exclusive == {0: 5.0}
        assert outer.inclusive == {0: 6.0}

    def test_raw_directly_on_loop_counts_for_it(self, structure):
        """Samples at the loop-control line itself may be attributed to
        the loop scope; its exclusive must include them."""
        cct = CCT()
        p = cct.root.ensure_frame(structure.procedure("p"))
        loop = p.ensure_loop(loop_struct(structure.procedure("p"), 10, 30))
        loop.add_raw({0: 3.0})
        attribute(cct)
        assert loop.exclusive == {0: 3.0}
        assert p.exclusive == {0: 3.0}

    def test_frame_exclusive_stops_at_callee_frames(self, structure):
        cct = CCT()
        p = cct.root.ensure_frame(structure.procedure("p"))
        loop = p.ensure_loop(loop_struct(structure.procedure("p"), 10, 30))
        site = loop.ensure_call_site(12)
        q = site.ensure_frame(structure.procedure("q"))
        q.ensure_statement(60).add_raw({0: 100.0})
        attribute(cct)
        assert p.exclusive == {}          # all cost is in the callee
        assert p.inclusive == {0: 100.0}

    def test_multiple_metrics_are_independent(self, structure):
        cct = CCT()
        p = cct.root.ensure_frame(structure.procedure("p"))
        p.ensure_statement(2).add_raw({0: 1.0, 1: 7.0})
        p.ensure_statement(3).add_raw({1: 3.0})
        attribute(cct)
        assert p.exclusive == {0: 1.0, 1: 10.0}
        assert cct.root.inclusive == {0: 1.0, 1: 10.0}

    def test_attribute_is_idempotent(self, structure):
        cct = CCT()
        p = cct.root.ensure_frame(structure.procedure("p"))
        p.ensure_statement(2).add_raw({0: 4.0})
        attribute(cct)
        first = dict(p.inclusive)
        attribute(cct)
        assert p.inclusive == first

    def test_empty_tree(self):
        cct = CCT()
        attribute(cct)
        assert cct.root.inclusive == {}
        assert cct.root.exclusive == {}


class TestExposure:
    def test_mutual_recursion(self, structure):
        """p -> q -> p -> q: each procedure has one exposed instance."""
        cct = CCT()
        p_struct, q_struct = structure.procedure("p"), structure.procedure("q")
        p1 = cct.root.ensure_frame(p_struct)
        q1 = p1.ensure_call_site(5).ensure_frame(q_struct)
        p2 = q1.ensure_call_site(55).ensure_frame(p_struct)
        q2 = p2.ensure_call_site(5).ensure_frame(q_struct)
        q2.ensure_statement(60).add_raw({0: 1.0})
        for frame, cost in ((p1, 1.0), (q1, 2.0), (p2, 3.0)):
            frame.ensure_statement(2).add_raw({0: cost})
        attribute(cct)

        p_exposed = exposed_instances([p1, p2])
        q_exposed = exposed_instances([q1, q2])
        assert p_exposed == [p1]
        assert q_exposed == [q1]
        # p's exposed inclusive is the whole chain; q's skips only p1's own
        assert exposed_sum([p1, p2]) == {0: 7.0}
        assert exposed_sum([q1, q2]) == {0: 6.0}
        incl, excl = aggregate_exposed([p1, p2])
        assert incl == {0: 7.0}
        assert excl == {0: 1.0}

    def test_exposed_sum_exclusive_flavor(self, structure):
        cct = CCT()
        p_struct = structure.procedure("p")
        p1 = cct.root.ensure_frame(p_struct)
        p1.ensure_statement(2).add_raw({0: 1.0})
        p2 = p1.ensure_call_site(5).ensure_frame(p_struct)
        p2.ensure_statement(2).add_raw({0: 2.0})
        attribute(cct)
        assert exposed_sum([p1, p2], inclusive=False) == {0: 1.0}

    def test_empty_instance_set(self):
        assert exposed_instances([]) == []
        assert exposed_sum([]) == {}

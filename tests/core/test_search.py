"""Tests for metric-ranked scope search."""

from __future__ import annotations

import pytest

from repro.core.errors import ViewError
from repro.core.metrics import MetricFlavor
from repro.core.search import search
from repro.core.views import NodeCategory
from repro.hpcprof.experiment import Experiment
from repro.sim.workloads import fig1, s3d


@pytest.fixture(scope="module")
def exp():
    return Experiment.from_program(s3d.build())


class TestSearch:
    def test_exact_name(self, exp):
        hits = search(exp.calling_context_view(), "rhsf")
        assert len(hits) == 1
        assert hits[0].node.name == "rhsf"
        assert hits[0].path[0] == "main"
        assert hits[0].path[-1] == "rhsf"

    def test_glob_ranked_by_metric(self, exp):
        hits = search(exp.calling_context_view(), "loop at *",
                      spec=exp.spec("PAPI_TOT_CYC"))
        values = [h.value for h in hits]
        assert values == sorted(values, reverse=True)
        # the time-step loop is the heaviest loop
        assert "solve_driver.f90" in hits[0].node.name

    def test_share_computed_against_total(self, exp):
        hits = search(exp.calling_context_view(), "chemkin*")
        assert hits[0].share == pytest.approx(0.422, abs=0.01)

    def test_category_filter(self, exp):
        hits = search(exp.flat_view(), "*",
                      categories=[NodeCategory.PROCEDURE])
        assert hits
        assert all(h.node.category is NodeCategory.PROCEDURE for h in hits)

    def test_exclusive_ranking(self, exp):
        hits = search(exp.flat_view(), "*",
                      spec=exp.spec("PAPI_TOT_CYC", MetricFlavor.EXCLUSIVE),
                      categories=[NodeCategory.PROCEDURE])
        # derivative_m_deriv's own loops make it the top exclusive scorer
        assert hits[0].node.name == "derivative_m_deriv"

    def test_limit(self, exp):
        hits = search(exp.calling_context_view(), "*", limit=3)
        assert len(hits) == 3

    def test_recursive_program_finds_all_instances(self):
        exp = Experiment.from_program(fig1.build())
        hits = search(exp.calling_context_view(), "g")
        assert len(hits) == 3  # g1, g2, g3
        assert [h.value for h in hits] == [6.0, 5.0, 3.0]

    def test_describe(self, exp):
        hit = search(exp.calling_context_view(), "rhsf")[0]
        text = hit.describe()
        assert "main ->" in text and text.endswith("%)")

    def test_validation(self, exp):
        view = exp.calling_context_view()
        with pytest.raises(ViewError):
            search(view, "")
        with pytest.raises(ViewError):
            search(view, "x", limit=0)

    def test_max_nodes_bounds_walk(self, exp):
        hits = search(exp.calling_context_view(), "*", max_nodes=3)
        assert len(hits) <= 3

"""Unit tests for the derived-metric formula language (Section V-D)."""

from __future__ import annotations

import math

import pytest

from repro.core.derived import (
    define_derived,
    evaluate,
    flop_waste_formula,
    formula_columns,
    parse_formula,
    relative_efficiency_formula,
)
from repro.core.errors import FormulaError, MetricError
from repro.core.metrics import MetricKind, MetricTable


def ev(src, cols=None):
    cols = cols or {}
    return evaluate(src, resolver=lambda mid: cols.get(mid, 0.0))


class TestParsing:
    def test_number(self):
        assert ev("42") == 42.0

    def test_scientific_notation(self):
        assert ev("1.5e3") == 1500.0
        assert ev("2E-2") == pytest.approx(0.02)

    def test_column_reference(self):
        assert ev("$0", {0: 7.0}) == 7.0
        assert ev("$12", {12: 3.0}) == 3.0

    def test_precedence(self):
        assert ev("2 + 3 * 4") == 14.0
        assert ev("(2 + 3) * 4") == 20.0
        assert ev("2 * 3 ^ 2") == 18.0

    def test_power_right_associative(self):
        assert ev("2 ^ 3 ^ 2") == 512.0

    def test_unary_minus(self):
        assert ev("-$0 + 10", {0: 4.0}) == 6.0
        assert ev("--3") == 3.0
        assert ev("-2^2") == -4.0  # unary binds looser than ^ via power chain

    def test_functions(self):
        assert ev("sqrt(16)") == 4.0
        assert ev("abs(-3)") == 3.0
        assert ev("min($0, $1)", {0: 2.0, 1: 5.0}) == 2.0
        assert ev("max($0, $1)", {0: 2.0, 1: 5.0}) == 5.0
        assert ev("log(e)") == pytest.approx(1.0)
        assert ev("log2(8)") == 3.0
        assert ev("floor(2.7) + ceil(2.1)") == 5.0

    def test_constants(self):
        assert ev("pi") == pytest.approx(math.pi)

    def test_whitespace_insensitive(self):
        assert ev("  $0   *2 ", {0: 3.0}) == 6.0

    @pytest.mark.parametrize(
        "bad",
        ["", "   ", "$", "$x", "2 +", "(1", "1)", "foo(1)", "min(1)", "1 2",
         "2 ** 3", "sqrt 4", "min(1, 2, 3)", "@1",
         # non-ASCII "digits" pass str.isdigit() but not float()/int();
         # multi-dot numerals lex as one token — all must raise
         # FormulaError, never ValueError (the server maps FormulaError
         # to a structured 400; a ValueError would surface as a 500)
         "²", "$²", "1.2.3", "1..2", "٤"],
    )
    def test_malformed_formulas_rejected(self, bad):
        with pytest.raises(FormulaError):
            parse_formula(bad)

    def test_formula_columns(self):
        assert formula_columns("4 * $0 - $1 + min($2, $0)") == {0, 1, 2}
        assert formula_columns("1 + 2") == set()


class TestEvaluation:
    def test_division_by_zero_yields_zero(self):
        assert ev("$0 / $1", {0: 5.0, 1: 0.0}) == 0.0

    def test_missing_column_is_zero(self):
        # sparse data: an absent metric value is zero by definition
        assert ev("$0 + 1", {}) == 1.0

    def test_overflow_power_is_zero(self):
        assert ev("10 ^ 10000") == 0.0

    def test_negative_sqrt_is_zero(self):
        assert ev("sqrt(0 - 4)") == 0.0

    def test_log_of_nonpositive_is_zero(self):
        assert ev("log(0)") == 0.0
        assert ev("log10(-1)") == 0.0


class TestDefineDerived:
    def test_register_and_lookup(self):
        table = MetricTable()
        cyc = table.add("cycles")
        flops = table.add("flops")
        waste = define_derived(
            table, "fp waste", flop_waste_formula(cyc.mid, flops.mid, 4.0)
        )
        assert waste.kind is MetricKind.DERIVED
        assert waste.mid == 2
        assert ev(waste.formula, {cyc.mid: 100.0, flops.mid: 150.0}) == 250.0

    def test_relative_efficiency(self):
        table = MetricTable()
        cyc = table.add("cycles")
        flops = table.add("flops")
        eff = define_derived(
            table, "efficiency", relative_efficiency_formula(cyc.mid, flops.mid, 4.0)
        )
        assert ev(eff.formula, {cyc.mid: 100.0, flops.mid: 24.0}) == pytest.approx(0.06)
        # no cycles -> efficiency defined as 0
        assert ev(eff.formula, {cyc.mid: 0.0, flops.mid: 0.0}) == 0.0

    def test_unknown_column_rejected_at_definition(self):
        table = MetricTable()
        table.add("cycles")
        with pytest.raises(MetricError):
            define_derived(table, "bad", "$5 * 2")

    def test_derived_may_reference_derived(self):
        table = MetricTable()
        cyc = table.add("cycles")
        d1 = define_derived(table, "double", f"2 * ${cyc.mid}")
        d2 = define_derived(table, "quad", f"2 * ${d1.mid}")
        cols = {cyc.mid: 3.0}

        def resolver(mid):
            if mid == d1.mid:
                return evaluate(d1.formula, resolver)
            return cols.get(mid, 0.0)

        assert evaluate(d2.formula, resolver) == 12.0

    def test_malformed_formula_rejected_at_definition(self):
        table = MetricTable()
        with pytest.raises(FormulaError):
            define_derived(table, "bad", "1 +")

"""Golden tests reproducing the paper's Figure 2 numbers exactly.

Figure 2 shows three views of one execution of the Figure 1 program, with
(inclusive, exclusive) costs per scope.  These tests drive the whole
pipeline — synthetic execution, structure recovery, correlation,
attribution, view construction — and assert every number in the figure.
"""

from __future__ import annotations

import pytest

from repro.core.attribution import attribute
from repro.core.cct import CCTKind
from repro.hpcprof.correlate import correlate
from repro.hpcstruct.synthstruct import build_structure
from repro.sim.executor import execute
from repro.sim.workloads import fig1


@pytest.fixture(scope="module")
def experiment():
    program = fig1.build()
    profile = execute(program)
    structure = build_structure(program)
    cct = correlate(profile, structure)
    attribute(cct)
    mid = profile.metrics.by_name(fig1.METRIC).mid
    return cct, mid


def frame_by_path(cct, names):
    """Find the frame reached by the chain of procedure names from the root."""
    node = cct.root
    for name in names:
        found = None
        for frame in _child_frames(node):
            if frame.name == name:
                found = frame
                break
        assert found is not None, f"no frame {name!r} under {node.name!r}"
        node = found
    return node


def _child_frames(node):
    """Frames reachable from *node* without passing through another frame."""
    out = []
    stack = list(node.children)
    while stack:
        cur = stack.pop()
        if cur.kind is CCTKind.FRAME:
            out.append(cur)
        else:
            stack.extend(cur.children)
    return out


def iv(node, mid):
    return node.inclusive.get(mid, 0.0)


def ev(node, mid):
    return node.exclusive.get(mid, 0.0)


class TestFig2aCallingContextTree:
    """Figure 2a: the calling context tree (top-down view)."""

    def test_m(self, experiment):
        cct, mid = experiment
        m = frame_by_path(cct, ["m"])
        assert (iv(m, mid), ev(m, mid)) == (10.0, 0.0)

    def test_f(self, experiment):
        cct, mid = experiment
        f = frame_by_path(cct, ["m", "f"])
        assert (iv(f, mid), ev(f, mid)) == (7.0, 1.0)

    def test_g1(self, experiment):
        cct, mid = experiment
        g1 = frame_by_path(cct, ["m", "f", "g"])
        assert (iv(g1, mid), ev(g1, mid)) == (6.0, 1.0)

    def test_g2(self, experiment):
        cct, mid = experiment
        g2 = frame_by_path(cct, ["m", "f", "g", "g"])
        assert (iv(g2, mid), ev(g2, mid)) == (5.0, 1.0)

    def test_g3(self, experiment):
        cct, mid = experiment
        g3 = frame_by_path(cct, ["m", "g"])
        assert (iv(g3, mid), ev(g3, mid)) == (3.0, 3.0)

    def test_h(self, experiment):
        cct, mid = experiment
        h = frame_by_path(cct, ["m", "f", "g", "g", "h"])
        assert (iv(h, mid), ev(h, mid)) == (4.0, 4.0)

    def test_loops(self, experiment):
        cct, mid = experiment
        h = frame_by_path(cct, ["m", "f", "g", "g", "h"])
        loops = [n for n in h.walk() if n.kind is CCTKind.LOOP]
        assert len(loops) == 2
        l1 = next(n for n in loops if n.struct.location.line == 8)
        l2 = next(n for n in loops if n.struct.location.line == 9)
        assert (iv(l1, mid), ev(l1, mid)) == (4.0, 0.0)
        assert (iv(l2, mid), ev(l2, mid)) == (4.0, 4.0)
        assert l2.parent is l1, "l2 must nest inside l1"

    def test_root_total(self, experiment):
        cct, mid = experiment
        assert iv(cct.root, mid) == 10.0

    def test_g_instances_are_distinct_scopes(self, experiment):
        """Each calling context of g is a distinct scope (g1, g2, g3)."""
        cct, mid = experiment
        g_frames = [f for f in cct.frames() if f.name == "g"]
        assert len(g_frames) == 3
        assert sorted(iv(g, mid) for g in g_frames) == [3.0, 5.0, 6.0]

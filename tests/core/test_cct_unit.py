"""Unit tests for the canonical CCT data structure."""

from __future__ import annotations

import pytest

from repro.core.attribution import attribute
from repro.core.cct import CCT, CCTKind, CCTNode
from repro.core.errors import CorrelationError
from repro.hpcstruct.model import StructKind, StructureModel


@pytest.fixture()
def structure():
    model = StructureModel("unit")
    lm = model.add_load_module("unit.x")
    f = model.add_file(lm, "a.c")
    model.add_procedure(f, "alpha", 1, 20)
    model.add_procedure(f, "beta", 30, 50)
    return model


class TestConstruction:
    def test_ensure_frame_is_idempotent(self, structure):
        cct = CCT()
        alpha = structure.procedure("alpha")
        f1 = cct.root.ensure_frame(alpha)
        f2 = cct.root.ensure_frame(alpha)
        assert f1 is f2
        assert len(cct.root.children) == 1

    def test_frames_only_under_root_or_call_site(self, structure):
        cct = CCT()
        alpha = structure.procedure("alpha")
        frame = cct.root.ensure_frame(alpha)
        with pytest.raises(CorrelationError):
            frame.ensure_frame(structure.procedure("beta"))
        site = frame.ensure_call_site(5)
        site.ensure_frame(structure.procedure("beta"))  # ok

    def test_frame_requires_procedure_scope(self, structure):
        cct = CCT()
        file_scope = structure.procedure("alpha").parent
        with pytest.raises(CorrelationError):
            cct.root.ensure_frame(file_scope)

    def test_statement_identity_by_line(self, structure):
        cct = CCT()
        frame = cct.root.ensure_frame(structure.procedure("alpha"))
        s1 = frame.ensure_statement(3)
        s2 = frame.ensure_statement(3)
        s3 = frame.ensure_statement(4)
        assert s1 is s2 and s1 is not s3

    def test_add_raw_accumulates(self, structure):
        cct = CCT()
        frame = cct.root.ensure_frame(structure.procedure("alpha"))
        stmt = frame.ensure_statement(3)
        stmt.add_raw({0: 2.0})
        stmt.add_raw({0: 3.0, 1: 1.0})
        assert stmt.raw == {0: 5.0, 1: 1.0}

    def test_add_raw_removes_cancelled_entries(self, structure):
        cct = CCT()
        frame = cct.root.ensure_frame(structure.procedure("alpha"))
        stmt = frame.ensure_statement(3)
        stmt.add_raw({0: 2.0})
        stmt.add_raw({0: -2.0})
        assert stmt.raw == {}


class TestNavigation:
    @pytest.fixture()
    def tree(self, structure):
        cct = CCT()
        alpha = cct.root.ensure_frame(structure.procedure("alpha"))
        site = alpha.ensure_call_site(5)
        beta = site.ensure_frame(structure.procedure("beta"))
        beta.ensure_statement(31).add_raw({0: 1.0})
        return cct, alpha, site, beta

    def test_call_path(self, tree):
        _cct, alpha, _site, beta = tree
        stmt = beta.children[0]
        assert [f.name for f in stmt.call_path()] == ["alpha", "beta"]
        assert [f.name for f in beta.call_path()] == ["alpha", "beta"]

    def test_enclosing_frame(self, tree):
        _cct, alpha, site, beta = tree
        assert site.enclosing_frame is alpha
        assert beta.enclosing_frame is beta
        assert beta.children[0].enclosing_frame is beta

    def test_procedure_of_inner_scope(self, tree):
        _cct, _alpha, _site, beta = tree
        stmt = beta.children[0]
        assert stmt.procedure.name == "beta"

    def test_depth(self, tree):
        cct, alpha, site, beta = tree
        assert cct.root.depth == 0
        assert alpha.depth == 1
        assert beta.depth == 3

    def test_walk_orders(self, tree):
        cct, *_ = tree
        pre = [n.kind for n in cct.root.walk()]
        post = [n.kind for n in cct.root.walk_postorder()]
        assert pre[0] is CCTKind.ROOT
        assert post[-1] is CCTKind.ROOT
        assert sorted(k.value for k in pre) == sorted(k.value for k in post)

    def test_len_counts_all_scopes(self, tree):
        cct, *_ = tree
        assert len(cct) == 5  # root, alpha, site, beta, statement


class TestPrune:
    def test_prune_removes_zero_subtrees(self, structure):
        cct = CCT()
        alpha = cct.root.ensure_frame(structure.procedure("alpha"))
        hot = alpha.ensure_statement(3)
        hot.add_raw({0: 1.0})
        site = alpha.ensure_call_site(5)
        site.ensure_frame(structure.procedure("beta"))  # no cost anywhere
        removed = cct.prune()
        assert removed == 2
        assert [c.kind for c in alpha.children] == [CCTKind.STATEMENT]

    def test_prune_keeps_parents_of_costly_scopes(self, structure):
        cct = CCT()
        alpha = cct.root.ensure_frame(structure.procedure("alpha"))
        site = alpha.ensure_call_site(5)
        beta = site.ensure_frame(structure.procedure("beta"))
        beta.ensure_statement(31).add_raw({0: 1.0})
        assert cct.prune() == 0
        assert len(cct) == 5

    def test_prune_empty_tree(self):
        cct = CCT()
        assert cct.prune() == 0


class TestFramesIndex:
    def test_frames_by_procedure_groups_instances(self, structure):
        cct = CCT()
        alpha_struct = structure.procedure("alpha")
        beta_struct = structure.procedure("beta")
        a = cct.root.ensure_frame(alpha_struct)
        s1 = a.ensure_call_site(5)
        s2 = a.ensure_call_site(6)
        s1.ensure_frame(beta_struct)
        s2.ensure_frame(beta_struct)
        index = cct.frames_by_procedure()
        assert len(index[alpha_struct]) == 1
        assert len(index[beta_struct]) == 2

"""Unit tests for hot path analysis (Eq. 3)."""

from __future__ import annotations

import pytest

from repro.core.attribution import attribute
from repro.core.ccview import CallingContextView
from repro.core.errors import ViewError
from repro.core.hotpath import hot_path, hot_path_cct, hot_path_generic
from repro.core.metrics import MetricFlavor, MetricSpec
from repro.hpcprof.correlate import correlate
from repro.hpcstruct.synthstruct import build_structure
from repro.sim.executor import execute
from repro.sim.workloads import fig1


class Node:
    """Minimal tree node for exercising the generic algorithm."""

    def __init__(self, name, value, children=()):
        self.name = name
        self.value = value
        self.children = list(children)


def vfn(node):
    return node.value


def cfn(node):
    return node.children


class TestGenericHotPath:
    def test_descends_while_above_threshold(self):
        leaf = Node("leaf", 60)
        mid = Node("mid", 80, [leaf, Node("cold", 10)])
        root = Node("root", 100, [mid, Node("other", 20)])
        result = hot_path_generic(root, vfn, cfn)
        assert [n.name for n in result.path] == ["root", "mid", "leaf"]
        assert result.hotspot.name == "leaf"
        assert result.values == (100.0, 80.0, 60.0)

    def test_stops_when_cost_disperses(self):
        # three children at 33% each: no child reaches 50% of the parent
        root = Node("root", 99, [Node(f"c{i}", 33) for i in range(3)])
        result = hot_path_generic(root, vfn, cfn)
        assert result.hotspot is root
        assert len(result) == 1

    def test_threshold_is_inclusive_boundary(self):
        # child at exactly t x parent extends the path (Eq. 3 uses >=)
        child = Node("child", 50)
        root = Node("root", 100, [child])
        result = hot_path_generic(root, vfn, cfn, threshold=0.5)
        assert result.hotspot is child

    def test_lower_threshold_descends_further(self):
        c2 = Node("c2", 12)
        c1 = Node("c1", 40, [c2])
        root = Node("root", 100, [c1])
        high = hot_path_generic(root, vfn, cfn, threshold=0.5)
        low = hot_path_generic(root, vfn, cfn, threshold=0.25)
        assert high.hotspot is root
        assert low.hotspot is c2

    def test_zero_value_parent_stops(self):
        root = Node("root", 0, [Node("c", 0)])
        result = hot_path_generic(root, vfn, cfn)
        assert result.hotspot is root

    def test_invalid_threshold_rejected(self):
        root = Node("root", 1)
        with pytest.raises(ViewError):
            hot_path_generic(root, vfn, cfn, threshold=0.0)
        with pytest.raises(ViewError):
            hot_path_generic(root, vfn, cfn, threshold=1.5)

    def test_ties_resolve_deterministically_to_first_max(self):
        a = Node("a", 50)
        b = Node("b", 50)
        root = Node("root", 100, [a, b])
        result = hot_path_generic(root, vfn, cfn)
        assert result.hotspot is a


class TestHotPathOnViews:
    @pytest.fixture(scope="class")
    def setup(self):
        program = fig1.build()
        profile = execute(program)
        structure = build_structure(program)
        cct = correlate(profile, structure)
        attribute(cct)
        mid = profile.metrics.by_name(fig1.METRIC).mid
        return cct, profile.metrics, mid

    def test_cct_hot_path_finds_planted_bottleneck(self, setup):
        cct, _, mid = setup
        result = hot_path_cct(cct.root, mid)
        names = [n.name for n in result.path]
        # the raw CCT path interleaves frames with call-site scopes:
        # root -> m -> cs:7 -> f -> cs:2 -> g1 -> cs:3 -> g2 -> cs:4 -> h ...
        assert names[0] == "<program root>"
        assert names[1] == "m"
        frame_names = [
            n.name for n in result.path if n.kind.value == "procedure-frame"
        ]
        assert frame_names == ["m", "f", "g", "g", "h"]
        assert result.hotspot_value == 4.0
        assert result.hotspot.kind.value == "statement"

    def test_view_hot_path_spans_fused_call_chain(self, setup):
        cct, metrics, mid = setup
        view = CallingContextView(cct, metrics)
        spec = MetricSpec(mid, MetricFlavor.INCLUSIVE)
        result = hot_path(view, spec)
        names = [n.name for n in result.path]
        assert names[0] == "m"
        assert "g" in names and "h" in names
        assert result.values[0] == 10.0

    def test_hot_path_from_subtree(self, setup):
        """Hot path analysis applies at any subtree, not just the root."""
        cct, metrics, mid = setup
        view = CallingContextView(cct, metrics)
        spec = MetricSpec(mid, MetricFlavor.INCLUSIVE)
        g3 = next(
            r for r in view.roots[0].children if r.name == "g" and
            view.value(r, spec) == 3.0
        )
        result = hot_path(view, spec, start=g3)
        assert result.path[0] is g3
        assert result.hotspot_value == 3.0

    def test_path_is_connected(self, setup):
        cct, _, mid = setup
        result = hot_path_cct(cct.root, mid)
        for parent, node in zip(result.path, result.path[1:]):
            assert node in parent.children

"""Unit tests for the out-of-core column store (:mod:`repro.core.store`)."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.core.store import (
    StoreExperiment,
    create_store,
    is_store_path,
    open_store,
)
from repro.errors import DatabaseError, ViewError
from repro.hpcprof import database
from repro.hpcprof.experiment import Experiment
from repro.sim.workloads import fig1
from repro.viewer.table import render_view


@pytest.fixture()
def experiment():
    return Experiment.from_program(fig1.build(), nranks=4, seed=3)


@pytest.fixture()
def store_exp(experiment, tmp_path):
    exp = create_store(experiment, str(tmp_path / "s.rpstore"))
    yield exp
    exp.close()


class TestCreateOpen:
    def test_round_trip_renders_identically(self, experiment, store_exp):
        for a, b in zip(experiment.views(), store_exp.views()):
            assert render_view(a) == render_view(b)

    def test_engine_is_memory_mapped(self, store_exp):
        assert isinstance(store_exp.engine.raw, np.memmap)
        assert isinstance(store_exp.engine.inclusive, np.memmap)

    def test_rank_vectors_survive(self, experiment, store_exp):
        for orig, stored in zip(experiment.cct.walk(), store_exp.cct.walk()):
            assert np.array_equal(
                experiment.rank_vector(orig, "cycles"),
                store_exp.rank_vector(stored, "cycles"),
            )

    def test_is_store_path(self, store_exp, tmp_path):
        assert is_store_path(store_exp.store.path)
        assert not is_store_path(str(tmp_path))

    def test_metricless_experiment_refused(self, tmp_path):
        from repro.core.metrics import MetricTable
        from repro.core.cct import CCT
        from repro.hpcstruct.model import StructureModel

        empty = Experiment("e", MetricTable(), StructureModel("e"), CCT())
        with pytest.raises(DatabaseError, match="metric-less"):
            create_store(empty, str(tmp_path / "e.rpstore"))

    def test_refuses_to_clobber_foreign_directory(self, experiment, tmp_path):
        victim = tmp_path / "precious"
        victim.mkdir()
        (victim / "data.txt").write_text("keep me")
        with pytest.raises(DatabaseError, match="already exists"):
            create_store(experiment, str(victim))
        with pytest.raises(DatabaseError, match="non-store"):
            create_store(experiment, str(victim), overwrite=True)
        assert (victim / "data.txt").read_text() == "keep me"


class TestDatabaseDispatch:
    def test_save_rpstore_extension_builds_store(self, experiment, tmp_path):
        path = str(tmp_path / "x.rpstore")
        size = database.save(experiment, path)
        assert size > 0
        assert is_store_path(path)

    def test_load_store_directory(self, experiment, tmp_path):
        path = str(tmp_path / "x.rpstore")
        database.save(experiment, path)
        exp = database.load(path)
        try:
            assert isinstance(exp, StoreExperiment)
            assert exp.nranks == 4
        finally:
            exp.close()

    def test_load_plain_directory_still_canonical_error(self, tmp_path):
        with pytest.raises(DatabaseError,
                           match="database path is a directory"):
            database.load(str(tmp_path))


class TestManifestValidation:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(DatabaseError):
            open_store(str(tmp_path / "nope.rpstore"))

    def test_corrupt_manifest_json(self, store_exp):
        path = store_exp.store.path
        store_exp.close()
        manifest = os.path.join(path, "manifest.json")
        with open(manifest, "w") as fh:
            fh.write("{not json")
        with pytest.raises(DatabaseError):
            open_store(path)

    def test_truncated_column_file(self, store_exp):
        path = store_exp.store.path
        store_exp.close()
        column = os.path.join(path, "columns", "inclusive.f64")
        with open(column, "r+b") as fh:
            fh.truncate(8)
        exp = open_store(path)
        try:
            with pytest.raises(DatabaseError):
                _ = exp.engine.inclusive
        finally:
            exp.close()

    def test_manifest_skeleton_disagreement(self, store_exp):
        path = store_exp.store.path
        store_exp.close()
        manifest = os.path.join(path, "manifest.json")
        with open(manifest) as fh:
            data = json.load(fh)
        data["nnodes"] += 1
        with open(manifest, "w") as fh:
            json.dump(data, fh)
        with pytest.raises(DatabaseError, match="corrupt store"):
            open_store(path)


class TestLifecycle:
    def test_closed_store_rank_data_errors(self, store_exp):
        node = next(iter(store_exp.cct.walk()))
        store_exp.close()
        with pytest.raises(ViewError, match="closed"):
            store_exp.rank_vector(node, "cycles")

    def test_release_then_reuse_reopens_maps(self, store_exp):
        before = render_view(store_exp.views()[0])
        store_exp.release()
        assert render_view(store_exp.views()[0]) == before

    def test_mutation_falls_back_to_gathered_engine(self, store_exp):
        assert isinstance(store_exp.engine.raw, np.memmap)
        store_exp.add_derived_metric("double", "2 * $0")
        engine = store_exp.engine
        assert not isinstance(engine.raw, np.memmap)
        # and the derived column actually renders
        assert "double" in render_view(store_exp.views()[2])

    def test_summarize_on_demand_matches_in_memory(self, experiment,
                                                   tmp_path):
        ids = experiment.summarize("cycles")
        store = create_store(experiment, str(tmp_path / "u.rpstore"))
        try:
            # summaries were baked at create time; same metric ids resolve
            got = store.summarize("cycles")
            assert got == ids
            for orig, stored in zip(experiment.cct.walk(),
                                    store.cct.walk()):
                for mid in (ids.mean, ids.minimum, ids.maximum, ids.stddev):
                    assert orig.inclusive.get(mid) == stored.inclusive.get(mid)
        finally:
            store.close()

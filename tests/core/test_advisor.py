"""Tests for the tuning advisor (the paper's ongoing-work feature)."""

from __future__ import annotations

import pytest

from repro.core.advisor import Advisor, advise
from repro.hpcprof.experiment import Experiment
from repro.sim.spmd import spmd_experiment
from repro.sim.workloads import moab, pflotran, s3d


@pytest.fixture(scope="module")
def s3d_suggestions():
    return advise(Experiment.from_program(s3d.build()))


class TestLoopRules:
    def test_flux_loop_flagged_memory_bound(self, s3d_suggestions):
        """The Figure 6 finding, automated: the streaming flux-diffusion
        loop gets the cache-reuse transformation suggestion."""
        hits = [s for s in s3d_suggestions if s.rule == "memory-bound-loop"]
        assert hits
        assert any("diffflux.f90" in s.location for s in hits)
        flux = next(s for s in hits if "diffflux.f90" in s.location)
        assert flux.evidence["efficiency"] == pytest.approx(0.06, abs=0.01)
        assert "unroll-and-jam" in flux.transformation

    def test_tight_loops_not_flagged_for_tuning(self, s3d_suggestions):
        """The exp-library loop (39% of peak) lands in 'already tight',
        matching the paper's reading that it is fairly tightly tuned."""
        tight = [s for s in s3d_suggestions if s.rule == "already-tight"]
        assert any("e_exp.c" in s.location for s in tight)
        # and it is NOT among the memory-bound suggestions
        memory = [s for s in s3d_suggestions if s.rule == "memory-bound-loop"]
        assert not any("e_exp.c" in s.location for s in memory)

    def test_suggestions_sorted_by_impact(self, s3d_suggestions):
        impacts = [s.impact for s in s3d_suggestions]
        assert impacts == sorted(impacts, reverse=True)

    def test_small_scopes_ignored(self, s3d_suggestions):
        assert all(s.impact >= 0.02 for s in s3d_suggestions)

    def test_describe_contains_evidence(self, s3d_suggestions):
        text = s3d_suggestions[0].describe()
        assert "evidence:" in text
        assert "% of cycles" in text

    def test_tuned_binary_drops_the_flux_suggestion(self):
        tuned = advise(Experiment.from_program(s3d.build(tuned=True)))
        memory = [s for s in tuned if s.rule == "memory-bound-loop"
                  and "diffflux.f90" in s.location]
        # after the 2.9x fix the loop runs at ~17% of peak with the same
        # misses; it may still warn, but not as the top opportunity
        if memory:
            assert memory[0] is not tuned[0]


class TestImbalanceRule:
    def test_pflotran_flags_imbalance(self):
        exp = spmd_experiment(pflotran.build(), nranks=32)
        suggestions = advise(exp)
        imb = [s for s in suggestions if s.rule == "load-imbalance"]
        assert len(imb) == 1
        assert imb[0].evidence["cov"] > 0.1
        assert "repartition" in imb[0].transformation
        # localized via the idleness hot path
        assert "MPI_Allreduce" in imb[0].location or "loop" in imb[0].location

    def test_balanced_run_stays_quiet(self):
        exp = spmd_experiment(pflotran.build(), nranks=4)  # window flattens
        suggestions = advise(exp)
        assert not [s for s in suggestions if s.rule == "load-imbalance"]

    def test_serial_run_has_no_imbalance_rule(self, s3d_suggestions):
        assert not [s for s in s3d_suggestions if s.rule == "load-imbalance"]


class TestContextRule:
    def test_single_context_callee_detected(self):
        """MOAB's memset: 99% of its misses come from one caller, so the
        advisor recommends fixing that call path."""
        exp = Experiment.from_program(moab.build())
        suggestions = advise(exp)
        ctx = [s for s in suggestions if s.rule == "single-context-callee"]
        assert any(s.scope == "_intel_fast_memset.A" for s in ctx)

    def test_thresholds_adjustable(self):
        exp = Experiment.from_program(s3d.build())
        advisor = Advisor(exp)
        advisor.min_impact = 0.5  # absurdly high: nothing qualifies
        assert [s for s in advisor.advise()
                if s.rule.endswith("loop")] == []

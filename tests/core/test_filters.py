"""Tests for scope and threshold filters."""

from __future__ import annotations

import pytest

from repro.core.errors import ViewError
from repro.core.filters import FilterAction, FilterSet, ScopeFilter, ThresholdFilter
from repro.core.metrics import MetricFlavor, MetricSpec
from repro.core.views import NodeCategory
from repro.hpcprof.experiment import Experiment
from repro.sim.workloads import fig1, s3d


@pytest.fixture(scope="module")
def exp():
    return Experiment.from_program(s3d.build())


class TestScopeFilter:
    def test_glob_matching(self, exp):
        filt = ScopeFilter("chemkin*")
        view = exp.calling_context_view()
        row = view.find("chemkin_m_reaction_rate")
        assert filt.matches(row)
        assert not filt.matches(view.find("rhsf"))

    def test_category_restriction(self, exp):
        view = exp.calling_context_view()
        loop_row = next(
            n for r in view.roots for n in r.walk()
            if n.category is NodeCategory.LOOP
        )
        any_filter = ScopeFilter("loop*")
        loops_only = ScopeFilter("*", categories=(NodeCategory.LOOP,))
        assert any_filter.matches(loop_row)
        assert loops_only.matches(loop_row)
        assert not loops_only.matches(view.find("rhsf"))


class TestElideAndPrune:
    def test_elide_splices_children(self, exp):
        """Eliding all loop scopes gives pure call chains — costs intact."""
        view = exp.calling_context_view()
        filters = FilterSet().add("*", categories=[NodeCategory.LOOP,
                                                   NodeCategory.INLINED])
        roots = filters.apply(view)
        assert [r.name for r in roots] == ["main"]

        def visible(node):
            yield node
            for child in filters.children_of(view, node):
                yield from visible(child)

        names = {n.name for n in visible(roots[0])}
        assert "rhsf" in names and "chemkin_m_reaction_rate" in names
        assert not any(n.startswith("loop at") for n in names)

    def test_prune_drops_subtree(self, exp):
        view = exp.calling_context_view()
        filters = FilterSet().add("chemkin*", action=FilterAction.PRUNE)
        roots = filters.apply(view)

        def visible(node):
            yield node
            for child in filters.children_of(view, node):
                yield from visible(child)

        names = {n.name for n in visible(roots[0])}
        assert "chemkin_m_reaction_rate" not in names
        assert "ratt" not in names          # pruned with its parent
        assert "rhsf" in names

    def test_elide_root_promotes_children(self, exp):
        view = exp.calling_context_view()
        filters = FilterSet().add("main")
        roots = filters.apply(view)
        names = [r.name for r in roots]
        assert "main" not in names
        assert "solve_driver" in names

    def test_first_matching_filter_wins(self, exp):
        view = exp.calling_context_view()
        filters = (FilterSet()
                   .add("rhsf", action=FilterAction.PRUNE)
                   .add("rhsf", action=FilterAction.ELIDE))
        roots = filters.apply(view)

        def visible(node):
            yield node
            for child in filters.children_of(view, node):
                yield from visible(child)

        names = {n.name for r in roots for n in visible(r)}
        assert "chemkin_m_reaction_rate" not in names  # pruned, not elided


class TestThreshold:
    def test_threshold_hides_cold_rows(self, exp):
        view = exp.calling_context_view()
        spec = exp.spec("PAPI_TOT_CYC")
        filters = FilterSet(threshold=ThresholdFilter(spec, min_share=0.05))
        main = filters.apply(view)[0]
        children = filters.children_of(view, main)
        total = exp.total("PAPI_TOT_CYC")
        # initialize_field is 1.7% of cycles: hidden at a 5% threshold
        assert all(
            view.value(c, spec) >= 0.05 * total for c in children
        )
        names = {c.name for c in children}
        assert "initialize_field" not in names

    def test_zero_threshold_keeps_everything(self, exp):
        view = exp.calling_context_view()
        spec = exp.spec("PAPI_TOT_CYC")
        unfiltered = FilterSet()
        zeroed = FilterSet(threshold=ThresholdFilter(spec, min_share=0.0))
        assert len(zeroed.apply(view)) == len(unfiltered.apply(view))

    def test_invalid_share(self, exp):
        spec = exp.spec("PAPI_TOT_CYC")
        with pytest.raises(ViewError):
            ThresholdFilter(spec, min_share=1.5)


class TestCostPreservation:
    def test_eliding_never_loses_cost(self):
        """The union of visible subtrees after eliding covers every cost."""
        exp = Experiment.from_program(fig1.build())
        mid = exp.metric_id(fig1.METRIC)
        view = exp.calling_context_view()
        filters = FilterSet().add("f")  # elide procedure f rows
        roots = filters.apply(view)
        total = sum(r.inclusive.get(mid, 0.0) for r in roots)
        assert total == 10.0  # m's subtree still accounts for everything

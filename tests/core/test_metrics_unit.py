"""Unit tests for metric descriptors, tables and sparse arithmetic."""

from __future__ import annotations

import pytest

from repro.core.errors import MetricError
from repro.core.metrics import (
    MetricDescriptor,
    MetricFlavor,
    MetricKind,
    MetricSpec,
    MetricTable,
    add_into,
    scale,
    total,
)


class TestMetricTable:
    def test_dense_sequential_ids(self):
        table = MetricTable()
        assert table.add("a").mid == 0
        assert table.add("b").mid == 1
        assert len(table) == 2
        assert table.names() == ["a", "b"]

    def test_duplicate_name_rejected(self):
        table = MetricTable()
        table.add("cycles")
        with pytest.raises(MetricError):
            table.add("cycles")

    def test_lookup(self):
        table = MetricTable()
        cyc = table.add("cycles", unit="cycles", period=2.0)
        assert table.by_id(0) is cyc
        assert table.by_name("cycles") is cyc
        assert "cycles" in table
        with pytest.raises(MetricError):
            table.by_id(3)
        with pytest.raises(MetricError):
            table.by_name("nope")

    def test_spec_helper(self):
        table = MetricTable()
        table.add("cycles")
        spec = table.spec("cycles", MetricFlavor.EXCLUSIVE)
        assert spec == MetricSpec(0, MetricFlavor.EXCLUSIVE)
        assert str(spec) == "0E"

    def test_copy_is_independent(self):
        table = MetricTable()
        table.add("a")
        clone = table.copy()
        clone.add("b")
        assert len(table) == 1 and len(clone) == 2

    def test_add_descriptor_reassigns_id(self):
        table = MetricTable()
        table.add("x")
        desc = MetricDescriptor(mid=0, name="y", unit="u")
        added = table.add_descriptor(desc)
        assert added.mid == 1
        assert added.unit == "u"


class TestDescriptorValidation:
    def test_negative_id(self):
        with pytest.raises(MetricError):
            MetricDescriptor(mid=-1, name="x")

    def test_empty_name(self):
        with pytest.raises(MetricError):
            MetricDescriptor(mid=0, name="")

    def test_nonpositive_period(self):
        with pytest.raises(MetricError):
            MetricDescriptor(mid=0, name="x", period=0.0)

    def test_derived_requires_formula(self):
        with pytest.raises(MetricError):
            MetricDescriptor(mid=0, name="x", kind=MetricKind.DERIVED)


class TestSparseArithmetic:
    def test_add_into(self):
        dst = {0: 1.0}
        add_into(dst, {0: 2.0, 1: 3.0})
        assert dst == {0: 3.0, 1: 3.0}

    def test_add_into_with_factor(self):
        dst = {}
        add_into(dst, {0: 2.0}, factor=-0.5)
        assert dst == {0: -1.0}

    def test_add_into_drops_exact_zeros(self):
        dst = {0: 1.0}
        add_into(dst, {0: -1.0})
        assert dst == {}

    def test_scale(self):
        assert scale({0: 2.0, 1: 4.0}, 0.5) == {0: 1.0, 1: 2.0}
        assert scale({0: 2.0}, 0.0) == {}

    def test_total(self):
        assert total([{0: 1.0}, {0: 2.0, 1: 1.0}, {}]) == {0: 3.0, 1: 1.0}

    def test_flavor_short_names(self):
        assert MetricFlavor.INCLUSIVE.short == "I"
        assert MetricFlavor.EXCLUSIVE.short == "E"

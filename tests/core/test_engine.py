"""The columnar MetricEngine vs. the sparse-dict reference path.

The engine is only allowed on the production path because it agrees with
the dict backend *bit for bit* — these tests assert exact equality (no
``approx``) over every node and metric id of every registered workload,
plus the engine-specific kernels (totals, top-k, hot path, exposed
aggregation, view-row gathers) against their naive counterparts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.attribution import (
    aggregate_exposed,
    attribute,
    attribute_dicts,
)
from repro.core.cct import CCTKind
from repro.core.engine import MetricEngine, attribute_columnar, engine_for
from repro.core.errors import MetricError
from repro.core.hotpath import hot_path, hot_path_cct
from repro.core.metrics import MetricFlavor, MetricSpec
from repro.hpcprof.experiment import Experiment
from repro.sim.spmd import spmd_experiment
from repro.sim.workloads import fig1, moab, pflotran, s3d
from repro.sim.workloads.synthetic import (
    deep_chain,
    mutual_ladder,
    recursive_ladder,
    uniform_tree,
    wide_flat,
)

WORKLOADS = {
    "fig1": fig1.build,
    "s3d": s3d.build,
    "moab": moab.build,
    "pflotran": pflotran.build,
    "tree-6x3": lambda: uniform_tree(6, 3),
    "wide-400": lambda: wide_flat(400),
    "chain-120": lambda: deep_chain(120),
    "ladder-40x4": lambda: recursive_ladder(40, 4),
    "mutual-40x3": lambda: mutual_ladder(40, 3),
}


def snapshot(cct):
    return {
        node.uid: (dict(node.inclusive), dict(node.exclusive))
        for node in cct.walk()
    }


class TestBitwiseParity:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_attribution_parity(self, name):
        """Dict and columnar attribution agree exactly, not approximately."""
        exp = Experiment.from_program(WORKLOADS[name]())
        attribute_dicts(exp.cct)
        reference = snapshot(exp.cct)
        attribute(exp.cct, columnar=True)
        assert snapshot(exp.cct) == reference

    def test_attribution_parity_multirank(self):
        exp = spmd_experiment(pflotran.build(), nranks=8)
        attribute_dicts(exp.cct)
        reference = snapshot(exp.cct)
        attribute(exp.cct, columnar=True)
        assert snapshot(exp.cct) == reference

    def test_summary_columns_match_per_vector_reference(self):
        """The columnar summary (axis reductions over the rank matrix)
        equals the per-vector np calls of the historical dict path."""
        from repro.hpcprof.merge import collect_rank_vectors

        exp = spmd_experiment(pflotran.build(), nranks=16)
        vectors = collect_rank_vectors(exp.cct, exp.rank_ccts, 0)
        ids = exp.summarize(exp.metrics.by_id(0).name)
        for node in exp.cct.walk():
            vec = vectors.get(node.uid)
            if vec is None:
                assert ids.mean not in node.inclusive
                continue
            assert node.inclusive[ids.mean] == float(np.mean(vec))
            assert node.inclusive[ids.minimum] == float(np.min(vec))
            assert node.inclusive[ids.maximum] == float(np.max(vec))
            assert node.inclusive[ids.stddev] == float(np.std(vec))

    def test_dispatcher_threshold(self):
        exp = Experiment.from_program(fig1.build())
        attribute(exp.cct)  # small tree: dict path, engine cache dropped
        assert exp.cct._engine is None
        attribute(exp.cct, columnar=True)
        assert isinstance(exp.cct._engine, MetricEngine)


@pytest.fixture(scope="module")
def s3d_exp():
    return Experiment.from_program(s3d.build())


class TestEngineLayout:
    def test_preorder_and_extents(self, s3d_exp):
        eng = s3d_exp.engine
        n = len(eng)
        assert all(eng.parent_rows[row] < row for row in range(1, n))
        assert eng.parent_rows[0] == -1
        for row, node in enumerate(eng.nodes):
            end = eng.subtree_end[row]
            assert end - row == sum(1 for _ in node.walk())
            kids = eng.children_rows(row)
            assert [eng.nodes[k].uid for k in kids] == [
                c.uid for c in node.children
            ]

    def test_row_of_foreign_node_raises(self, s3d_exp):
        other = Experiment.from_program(fig1.build())
        with pytest.raises(MetricError):
            s3d_exp.engine.row_of(other.cct.root)

    def test_totals_and_total(self, s3d_exp):
        eng = s3d_exp.engine
        for mid in range(len(s3d_exp.metrics)):
            assert eng.total(mid) == s3d_exp.cct.root.inclusive.get(mid, 0.0)
        assert list(eng.totals()) == [
            s3d_exp.cct.root.inclusive.get(m, 0.0)
            for m in range(len(s3d_exp.metrics))
        ]


class TestEngineKernels:
    def test_hot_path_rows_matches_dict_descent(self, s3d_exp):
        eng = s3d_exp.engine
        for threshold in (0.3, 0.5, 0.9):
            fast = hot_path_cct(s3d_exp.cct.root, 0, threshold, engine=eng)
            slow = hot_path_cct(s3d_exp.cct.root, 0, threshold)
            assert [n.uid for n in fast.path] == [n.uid for n in slow.path]
            assert fast.values == slow.values

    def test_hot_path_threshold_validated(self, s3d_exp):
        from repro.core.errors import ViewError

        with pytest.raises(ViewError):
            hot_path_cct(s3d_exp.cct.root, 0, 0.0, engine=s3d_exp.engine)

    def test_view_hot_path_engine_vs_dict(self, s3d_exp):
        from repro.core.ccview import CallingContextView

        with_engine = s3d_exp.calling_context_view()
        assert with_engine.engine is not None
        plain = CallingContextView(s3d_exp.cct, s3d_exp.metrics)
        spec = MetricSpec(0, MetricFlavor.INCLUSIVE)
        fast = hot_path(with_engine, spec)
        slow = hot_path(plain, spec)
        assert [n.name for n in fast.path] == [n.name for n in slow.path]
        assert fast.values == slow.values

    def test_aggregate_exposed_parity_on_fixtures(self, s3d_exp):
        eng = s3d_exp.engine
        for frames in s3d_exp.cct.frames_by_procedure().values():
            assert eng.aggregate_exposed(frames) == aggregate_exposed(frames)

    def test_aggregate_exposed_counts_duplicates_like_dict_path(self, s3d_exp):
        eng = s3d_exp.engine
        frames = next(iter(s3d_exp.cct.frames_by_procedure().values()))
        doubled = list(frames) + list(frames)
        assert eng.aggregate_exposed(doubled) == aggregate_exposed(doubled)

    def test_gather_view_values_matches_view_value(self, s3d_exp):
        view = s3d_exp.calling_context_view()
        rows = [r for root in view.roots for r in root.walk(max_depth=3)]
        for mid in range(len(s3d_exp.metrics)):
            for flavor in (MetricFlavor.INCLUSIVE, MetricFlavor.EXCLUSIVE):
                spec = MetricSpec(mid, flavor)
                values = view.engine.gather_view_values(rows, spec)
                assert values.tolist() == [row.value(spec) for row in rows]


class TestViewRouting:
    @pytest.mark.parametrize("descending", [True, False])
    def test_sorted_children_matches_dict_sort(self, s3d_exp, descending):
        from repro.core.ccview import CallingContextView

        fast_view = s3d_exp.calling_context_view()
        slow_view = CallingContextView(s3d_exp.cct, s3d_exp.metrics)
        spec = MetricSpec(0, MetricFlavor.EXCLUSIVE)

        def compare(fast_node, slow_node, depth):
            fast = fast_view.sorted_children(fast_node, spec, descending)
            slow = slow_view.sorted_children(slow_node, spec, descending)
            assert [r.name for r in fast] == [r.name for r in slow]
            if depth:
                for f, s in zip(fast, slow):
                    compare(f, s, depth - 1)

        compare(None, None, depth=3)

    def test_total_routed_through_engine(self, s3d_exp):
        view = s3d_exp.calling_context_view()
        view.totals = {}  # force the fallback that consults the engine
        spec = MetricSpec(0, MetricFlavor.INCLUSIVE)
        assert view.total(spec) == s3d_exp.cct.root.inclusive.get(0, 0.0)


class TestEngineLifecycle:
    def test_engine_cached_until_mutation(self):
        exp = Experiment.from_program(uniform_tree(4, 2))
        eng = exp.engine
        assert exp.engine is eng
        exp.cct.invalidate_caches()
        assert exp.engine is not eng

    def test_engine_grows_with_metric_table(self):
        exp = spmd_experiment(uniform_tree(4, 2), nranks=4)
        before = exp.engine
        assert before.num_metrics == 1
        ids = exp.summarize("cycles")
        after = exp.engine
        assert after is not before
        assert after.num_metrics == len(exp.metrics)
        # the new summary columns are readable through the engine
        row = after.row_of(exp.cct.root)
        assert after.inclusive[row, ids.mean] == exp.cct.root.inclusive[ids.mean]

    def test_frames_by_procedure_cached_and_invalidated(self):
        exp = Experiment.from_program(uniform_tree(4, 2))
        first = exp.cct.frames_by_procedure()
        assert exp.cct.frames_by_procedure() is first
        # a no-op prune must NOT drop the cache…
        assert exp.cct.prune() == 0
        assert exp.cct.frames_by_procedure() is first
        # …but one that removes a scope must
        next(exp.cct.frames()).ensure_statement(99)
        assert exp.cct.prune() == 1
        assert exp.cct.frames_by_procedure() is not first

    def test_prune_drops_engine(self):
        exp = Experiment.from_program(uniform_tree(4, 2))
        frame = next(exp.cct.frames())
        leaf = frame.ensure_statement(99)
        assert leaf.raw == {}
        _ = exp.engine
        removed = exp.cct.prune()
        assert removed == 1
        assert exp.cct._engine is None
        assert exp.engine.row_of(exp.cct.root) == 0

    def test_engine_for_metricless(self):
        exp = Experiment.from_program(uniform_tree(3, 2))
        assert engine_for(exp.cct, 0) is None


class TestMutualLadderParity:
    """Satellite: exposed aggregation on deep mutual recursion, both paths."""

    @pytest.mark.parametrize("depth", [10, 60, 200])
    def test_dict_and_columnar_identical(self, depth):
        exp = Experiment.from_program(mutual_ladder(depth, contexts=3))
        eng = exp.engine
        by_proc = exp.cct.frames_by_procedure()
        assert {p.name for p in by_proc} == {"main", "ping", "pong"}
        for proc, frames in by_proc.items():
            if proc.name != "main":
                assert len(frames) > 1  # recursion produced nested instances
            assert eng.aggregate_exposed(frames) == aggregate_exposed(frames)

    def test_exposed_values_are_sane(self):
        # 3 contexts x alternating chain: each context contributes one
        # exposed ping instance whose inclusive cost covers its whole chain
        exp = Experiment.from_program(mutual_ladder(12, contexts=3))
        eng = exp.engine
        by_proc = {p.name: f for p, f in exp.cct.frames_by_procedure().items()}
        incl, _excl = eng.aggregate_exposed(by_proc["ping"])
        total = exp.cct.root.inclusive[0]
        assert incl[0] == total  # ping heads every chain; main has no cost

    def test_callers_view_consistent(self):
        exp = Experiment.from_program(mutual_ladder(30, contexts=2))
        view = exp.callers_view()
        ping = view.find("ping")
        spec = MetricSpec(0, MetricFlavor.INCLUSIVE)
        assert ping.value(spec) == exp.cct.root.inclusive[0]


class TestColumnarScatterSemantics:
    def test_zero_cells_stay_absent(self):
        exp = Experiment.from_program(uniform_tree(6, 2))
        attribute(exp.cct, columnar=True)
        for node in exp.cct.walk():
            assert 0.0 not in node.inclusive.values()
            assert 0.0 not in node.exclusive.values()
            if node.kind in (CCTKind.STATEMENT, CCTKind.CALL_SITE):
                assert node.exclusive == node.raw

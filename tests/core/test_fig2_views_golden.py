"""Golden tests for Figures 2b (Callers View) and 2c (Flat View).

Every (inclusive, exclusive) pair printed in the paper's Figure 2 is
asserted here, including the recursion-sensitive values: the top-level
Callers View entry for the recursive procedure ``g`` is (9, 4) — the sum
over *exposed* instances g1=(6,1) and g3=(3,3); the nested instance g2
contributes only to the recursive-caller child g←g = (5, 1).
"""

from __future__ import annotations

import pytest

from repro.core.attribution import attribute
from repro.core.callers import CallersView
from repro.core.flat import FlatView
from repro.core.metrics import MetricFlavor, MetricSpec
from repro.core.views import NodeCategory
from repro.hpcprof.correlate import correlate
from repro.hpcstruct.synthstruct import build_structure
from repro.sim.executor import execute
from repro.sim.workloads import fig1


@pytest.fixture(scope="module")
def setup():
    program = fig1.build()
    profile = execute(program)
    structure = build_structure(program)
    cct = correlate(profile, structure)
    attribute(cct)
    mid = profile.metrics.by_name(fig1.METRIC).mid
    return cct, profile.metrics, mid


def pair(node, mid):
    return (node.inclusive.get(mid, 0.0), node.exclusive.get(mid, 0.0))


def child(node_or_view, name):
    rows = node_or_view.roots if hasattr(node_or_view, "roots") else node_or_view.children
    matches = [r for r in rows if r.name == name]
    assert matches, f"no child {name!r}; have {[r.name for r in rows]}"
    assert len(matches) == 1, f"ambiguous child {name!r}"
    return matches[0]


class TestFig2bCallersView:
    @pytest.fixture(scope="class")
    def view(self, setup):
        cct, metrics, _ = setup
        return CallersView(cct, metrics)

    def test_top_level_procedures(self, setup, view):
        _, _, mid = setup
        assert pair(child(view, "g"), mid) == (9.0, 4.0)   # g_a
        assert pair(child(view, "f"), mid) == (7.0, 1.0)   # f_a
        assert pair(child(view, "h"), mid) == (4.0, 4.0)   # h
        assert pair(child(view, "m"), mid) == (10.0, 0.0)  # m

    def test_callers_of_g(self, setup, view):
        _, _, mid = setup
        g = child(view, "g")
        assert pair(child(g, "g"), mid) == (5.0, 1.0)   # g_b: g called from g
        assert pair(child(g, "f"), mid) == (6.0, 1.0)   # f_b: g called from f
        assert pair(child(g, "m"), mid) == (3.0, 3.0)   # m_a: g called from m

    def test_chain_g_from_g_from_f_from_m(self, setup, view):
        _, _, mid = setup
        g = child(view, "g")
        gb = child(g, "g")
        fc = child(gb, "f")
        assert pair(fc, mid) == (5.0, 1.0)              # f_c
        md = child(fc, "m")
        assert pair(md, mid) == (5.0, 1.0)              # m_d
        assert md.children == []                        # m is an entry point

    def test_chain_g_from_f_from_m(self, setup, view):
        _, _, mid = setup
        g = child(view, "g")
        fb = child(g, "f")
        mc = child(fb, "m")
        assert pair(mc, mid) == (6.0, 1.0)              # m_c

    def test_callers_of_h(self, setup, view):
        _, _, mid = setup
        h = child(view, "h")
        gc = child(h, "g")
        assert pair(gc, mid) == (4.0, 4.0)              # g_c
        gd = child(gc, "g")
        assert pair(gd, mid) == (4.0, 4.0)              # g_d
        fd = child(gd, "f")
        assert pair(fd, mid) == (4.0, 4.0)              # f_d
        me = child(fd, "m")
        assert pair(me, mid) == (4.0, 4.0)              # m_e

    def test_callers_of_f(self, setup, view):
        _, _, mid = setup
        f = child(view, "f")
        mb = child(f, "m")
        assert pair(mb, mid) == (7.0, 1.0)              # m_b

    def test_lazy_construction(self, setup):
        cct, metrics, _ = setup
        view = CallersView(cct, metrics)
        roots = view.roots
        assert all(not r.is_expanded for r in roots)
        roots[0].children  # expanding one row leaves the others untouched
        assert sum(1 for r in roots if r.is_expanded) == 1


class TestFig2cFlatView:
    @pytest.fixture(scope="class")
    def view(self, setup):
        cct, metrics, _ = setup
        return FlatView(cct, metrics)

    def test_files(self, setup, view):
        _, _, mid = setup
        assert pair(child(view, "file2.c"), mid) == (9.0, 8.0)
        assert pair(child(view, "file1.c"), mid) == (10.0, 1.0)

    def test_procedures(self, setup, view):
        _, _, mid = setup
        file2 = child(view, "file2.c")
        file1 = child(view, "file1.c")
        assert pair(child(file2, "g"), mid) == (9.0, 4.0)   # g_x
        assert pair(child(file2, "h"), mid) == (4.0, 4.0)   # h_x
        assert pair(child(file1, "f"), mid) == (7.0, 1.0)   # f_x
        assert pair(child(file1, "m"), mid) == (10.0, 0.0)  # m

    def test_loops_under_h(self, setup, view):
        _, _, mid = setup
        h = child(child(view, "file2.c"), "h")
        l1 = child(h, "loop at file2.c:8-10")
        assert pair(l1, mid) == (4.0, 0.0)
        l2 = child(l1, "loop at file2.c:9-10")
        assert pair(l2, mid) == (4.0, 4.0)

    def test_fused_call_sites(self, setup, view):
        """g_y, g_z, g_v, f_y: call sites fused with callee aggregates."""
        _, _, mid = setup
        file1 = child(view, "file1.c")
        f = child(file1, "f")
        m = child(file1, "m")
        gy = child(f, "g")                     # f's call to g -> g1
        assert pair(gy, mid) == (6.0, 1.0)
        fy = child(m, "f")                     # m's call to f
        assert pair(fy, mid) == (7.0, 1.0)
        gv = child(m, "g")                     # m's call to g -> g3
        assert pair(gv, mid) == (3.0, 3.0)
        g = child(child(view, "file2.c"), "g")
        gz = child(g, "g")                     # g's recursive call -> g2
        assert pair(gz, mid) == (5.0, 1.0)

    def test_rule1_call_site_h_y(self, setup):
        """h_y of Figure 2c: as a dynamic call-site scope, h's exclusive
        cost only includes the cost of its invocation (rule 1) — zero here."""
        cct, metrics, mid = setup
        view = FlatView(cct, metrics, fused=False)
        g = child(child(view, "file2.c"), "g")
        hy = child(g, "h")
        assert pair(hy, mid) == (4.0, 0.0)

    def test_flatten_exposes_procedures(self, setup, view):
        cct, metrics, mid = setup
        view = FlatView(cct, metrics)
        view.flatten()
        names = sorted(r.name for r in view.current_roots())
        assert names == ["f", "g", "h", "m"]
        view.unflatten()
        assert sorted(r.name for r in view.current_roots()) == ["file1.c", "file2.c"]

    def test_flatten_keeps_leaves(self, setup):
        cct, metrics, mid = setup
        view = FlatView(cct, metrics)
        for _ in range(10):
            view.flatten()
        rows = view.current_roots()
        assert rows, "flattening to the bottom must keep leaf scopes"
        assert all(r.is_leaf for r in rows)
        # total inclusive cost of leaves never exceeds the program total
        assert sum(r.inclusive.get(mid, 0.0) for r in rows) >= 10.0

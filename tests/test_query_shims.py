"""Shim identity: the legacy entry points must be *bit*-compatible.

``repro.core.search.search`` and ``repro.core.filters.FilterSet`` are
now thin shims over the vectorized query engine
(:mod:`repro.query.compat`).  This suite freezes verbatim copies of the
original per-node implementations and asserts the shims reproduce them
exactly — same hit objects, same float bits, same forest shapes, same
splice order — on every view of several workloads.  It also pins the
deprecation contract: the old call forms still work but warn.
"""

from __future__ import annotations

import fnmatch
import warnings

import pytest

from repro.core.filters import (
    FilterAction,
    FilterSet,
    ScopeFilter,
    ThresholdFilter,
)
from repro.core.metrics import MetricFlavor, MetricSpec
from repro.core.search import SearchHit, search
from repro.core.views import NodeCategory
from repro.hpcprof.experiment import Experiment
from repro.sim.workloads import fig1, moab, s3d


# --------------------------------------------------------------------- #
# frozen reference implementations (verbatim pre-shim code paths)
# --------------------------------------------------------------------- #
def _reference_search(view, pattern, spec=None, categories=(), limit=50,
                      max_nodes=200_000):
    spec = spec or MetricSpec(0, MetricFlavor.INCLUSIVE)
    total = view.total(MetricSpec(spec.mid, MetricFlavor.INCLUSIVE))
    hits = []
    visited = 0
    stack = [(root, (root.name,)) for root in reversed(view.roots)]
    while stack and visited < max_nodes:
        node, path = stack.pop()
        visited += 1
        if (not categories or node.category in categories) and \
                fnmatch.fnmatchcase(node.name, pattern):
            value = view.value(node, spec)
            hits.append(SearchHit(
                node=node, value=value,
                share=(value / total) if total else 0.0, path=path,
            ))
        for child in reversed(node.children):
            stack.append((child, path + (child.name,)))
    hits.sort(key=lambda h: -h.value)
    return hits[:limit]


def _reference_visit(fset, view, node):
    action = fset._action_for(node)
    if action is FilterAction.PRUNE:
        return []
    if action is FilterAction.ELIDE:
        spliced = []
        for child in node.children:
            spliced.extend(_reference_visit(fset, view, child))
        return spliced
    if fset.threshold is not None and not fset.threshold.passes(view, node):
        return []
    return [node]


def _reference_apply(fset, view, roots=None):
    rows = list(view.roots if roots is None else roots)
    out = []
    for row in rows:
        out.extend(_reference_visit(fset, view, row))
    return out


def _reference_children_of(fset, view, node):
    out = []
    for child in node.children:
        out.extend(_reference_visit(fset, view, child))
    return out


# --------------------------------------------------------------------- #
@pytest.fixture(scope="module", params=["fig1", "s3d", "moab"])
def exp(request):
    build = {"fig1": fig1.build, "s3d": s3d.build, "moab": moab.build}
    return Experiment.from_program(build[request.param]())


def _hit_key(hit):
    # node identity + exact float bits + exact path
    return (id(hit.node), hit.value.hex() if hasattr(hit.value, "hex")
            else hit.value, hit.share, hit.path)


PATTERNS = ["*", "m*", "*loop*", "file*", "no-such-scope", "?", "[abc]*"]


class TestSearchShimIdentity:
    def test_every_view_every_pattern(self, exp):
        for view in exp.views():
            for pattern in PATTERNS:
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", DeprecationWarning)
                    got = search(view, pattern)
                want = _reference_search(view, pattern)
                assert list(map(_hit_key, got)) == list(map(_hit_key, want))

    def test_exclusive_ranking_and_limit(self, exp):
        spec = MetricSpec(0, MetricFlavor.EXCLUSIVE)
        for view in exp.views():
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                got = search(view, "*", spec=spec, limit=5)
            want = _reference_search(view, "*", spec=spec, limit=5)
            assert list(map(_hit_key, got)) == list(map(_hit_key, want))

    def test_categories_and_max_nodes(self, exp):
        cats = (NodeCategory.LOOP, NodeCategory.PROCEDURE_FRAME)
        for view in exp.views():
            for cap in (1, 3, 7, 200_000):
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", DeprecationWarning)
                    got = search(view, "*", categories=cats, max_nodes=cap)
                want = _reference_search(view, "*", categories=cats,
                                         max_nodes=cap)
                assert list(map(_hit_key, got)) == list(map(_hit_key, want))

    def test_search_warns_deprecation(self, exp):
        view = exp.views()[0]
        with pytest.warns(DeprecationWarning, match="repro.query"):
            search(view, "*", limit=1)


FILTER_SETS = [
    FilterSet(),
    FilterSet([ScopeFilter("*loop*", FilterAction.PRUNE)]),
    FilterSet([ScopeFilter("file*", FilterAction.ELIDE)]),
    FilterSet([
        ScopeFilter("*loop*", FilterAction.ELIDE,
                    (NodeCategory.LOOP,)),
        ScopeFilter("m*", FilterAction.PRUNE),
    ]),
    FilterSet([ScopeFilter("*", FilterAction.ELIDE)]),
    FilterSet([ScopeFilter("f*", FilterAction.PRUNE)],
              ThresholdFilter(MetricSpec(0, MetricFlavor.INCLUSIVE), 0.05)),
    FilterSet(threshold=ThresholdFilter(
        MetricSpec(0, MetricFlavor.INCLUSIVE), 0.25)),
]


class TestFilterShimIdentity:
    def test_apply_matches_reference(self, exp):
        for view in exp.views():
            for fset in FILTER_SETS:
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", DeprecationWarning)
                    got = fset.apply(view)
                want = _reference_apply(fset, view)
                assert [id(n) for n in got] == [id(n) for n in want]

    def test_children_of_matches_reference(self, exp):
        view = exp.views()[0]
        for fset in FILTER_SETS:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                forest = fset.apply(view)
            for node in forest:
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", DeprecationWarning)
                    got = fset.children_of(view, node)
                want = _reference_children_of(fset, view, node)
                assert [id(n) for n in got] == [id(n) for n in want]

    def test_apply_warns_deprecation(self, exp):
        view = exp.views()[0]
        with pytest.warns(DeprecationWarning, match="repro.query"):
            FilterSet().apply(view)

    def test_subset_roots(self, exp):
        view = exp.views()[0]
        roots = view.roots[:1]
        for fset in FILTER_SETS:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                got = fset.apply(view, roots)
            want = _reference_apply(fset, view, roots)
            assert [id(n) for n in got] == [id(n) for n in want]

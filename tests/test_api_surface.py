"""Public-API drift guard.

``tests/api_surface.txt`` is the checked-in snapshot of the v1 public
surface: every ``__all__`` name of the blessed modules plus every
``(method, /v1 path)`` in the server's endpoint registry.  This test
regenerates the surface in-memory and fails on any difference, so
removing a name, renaming an endpoint, or dropping a method cannot
land unnoticed.  When a change is intentional::

    PYTHONPATH=src python tools/gen_api_surface.py --write
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SNAPSHOT = REPO / "tests" / "api_surface.txt"
GENERATOR = REPO / "tools" / "gen_api_surface.py"


def _load_generator():
    spec = importlib.util.spec_from_file_location("gen_api_surface", GENERATOR)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_surface_matches_snapshot():
    generated = _load_generator().surface_lines()
    recorded = SNAPSHOT.read_text().splitlines()
    added = sorted(set(generated) - set(recorded))
    removed = sorted(set(recorded) - set(generated))
    assert not added and not removed, (
        "public API surface drifted from tests/api_surface.txt\n"
        f"  added:   {added}\n"
        f"  removed: {removed}\n"
        "if intentional: PYTHONPATH=src python tools/gen_api_surface.py --write"
    )
    assert generated == recorded, "snapshot is not sorted; regenerate it"


def test_snapshot_covers_both_halves():
    lines = SNAPSHOT.read_text().splitlines()
    assert any(line.startswith("python repro.api.") for line in lines)
    assert any(line.startswith("python repro.obs.") for line in lines)
    assert any(line.startswith("http GET /v1/") for line in lines)
    assert any(line.startswith("http POST /v1/") for line in lines)


def test_facade_is_subset_of_snapshot():
    import repro.api as api

    lines = set(SNAPSHOT.read_text().splitlines())
    for name in api.__all__:
        assert f"python repro.api.{name}" in lines

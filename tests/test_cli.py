"""End-to-end tests of the command-line tools."""

from __future__ import annotations

import os
import textwrap

import pytest

from repro.cli import (
    main_diff,
    main_experiments,
    main_prof_merge,
    main_profile,
    main_sim,
    main_sim_scale,
    main_view,
)


class TestSimAndView:
    def test_sim_writes_database(self, tmp_path, capsys):
        out = str(tmp_path / "fig1.rpdb")
        assert main_sim(["fig1", "-o", out]) == 0
        assert os.path.exists(out)
        assert "wrote" in capsys.readouterr().out

    def test_sim_parallel(self, tmp_path, capsys):
        out = str(tmp_path / "pf.rpdb")
        assert main_sim(["pflotran", "-n", "4", "-o", out]) == 0
        assert "4 rank(s)" in capsys.readouterr().out

    def test_view_all_views(self, tmp_path, capsys):
        db = str(tmp_path / "fig1.xml")
        main_sim(["fig1", "-o", db])
        capsys.readouterr()
        assert main_view([db, "--view", "all", "--depth", "2"]) == 0
        out = capsys.readouterr().out
        assert "Calling Context View" in out
        assert "Callers View" in out
        assert "Flat View" in out

    def test_view_hot_path(self, tmp_path, capsys):
        db = str(tmp_path / "s3d.rpdb")
        main_sim(["s3d", "-o", db])
        capsys.readouterr()
        assert main_view([db, "--hot-path"]) == 0
        out = capsys.readouterr().out
        assert "hot path:" in out
        assert "chemkin_m_reaction_rate" in out

    def test_view_exclusive_sort(self, tmp_path, capsys):
        db = str(tmp_path / "fig1.rpdb")
        main_sim(["fig1", "-o", db])
        capsys.readouterr()
        assert main_view([db, "--view", "flat", "--exclusive"]) == 0
        assert "Flat View" in capsys.readouterr().out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main_sim(["not-a-workload"])


class TestProfile:
    def test_profile_script(self, tmp_path, capsys):
        script = tmp_path / "job.py"
        script.write_text(textwrap.dedent(
            """
            def work(n):
                total = 0
                for i in range(n):
                    total += i
                return total

            if __name__ == "__main__":
                work(500)
            """
        ))
        out = str(tmp_path / "job.rpdb")
        assert main_profile([str(script), "-o", out]) == 0
        assert os.path.exists(out)
        capsys.readouterr()
        assert main_view([out, "--view", "flat"]) == 0
        assert "work" in capsys.readouterr().out


class TestExperiments:
    def test_list(self, capsys):
        assert main_experiments(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "gprof" in out

    def test_run_single(self, capsys):
        assert main_experiments(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "REPRODUCED" in out

    def test_markdown_output(self, tmp_path, capsys):
        md = str(tmp_path / "report.md")
        assert main_experiments(["fig4", "--markdown", md]) == 0
        content = open(md).read()
        assert "| quantity | paper | measured |" in content
        assert "Sequence_data::create" in content

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            main_experiments(["not-an-experiment"])


class TestAdviseFlag:
    def test_view_with_advise(self, tmp_path, capsys):
        db = str(tmp_path / "s3d.rpdb")
        main_sim(["s3d", "-o", db])
        capsys.readouterr()
        assert main_view([db, "--view", "flat", "--advise"]) == 0
        out = capsys.readouterr().out
        assert "tuning suggestions:" in out
        assert "[memory-bound-loop]" in out


class TestParallelSim:
    def test_parallel_flag(self, tmp_path, capsys):
        out = str(tmp_path / "pf.rpdb")
        assert main_sim(["pflotran", "-n", "4", "--parallel", "-o", out]) == 0
        assert "4 rank(s)" in capsys.readouterr().out


class TestOutOfCorePipeline:
    """repro-sim-scale -> repro-prof-merge -> repro-view on a .rpstore."""

    def test_scale_merge_view(self, tmp_path, capsys):
        ranks = str(tmp_path / "ranks")
        assert main_sim_scale([ranks, "-n", "6", "--fanout", "2",
                               "--depth", "2"]) == 0
        assert "wrote 6 rank databases" in capsys.readouterr().out
        rank_files = sorted(
            os.path.join(ranks, f) for f in os.listdir(ranks)
        )
        store = str(tmp_path / "merged.rpstore")
        assert main_prof_merge(rank_files + ["-o", store]) == 0
        assert "merged 6 rank database(s)" in capsys.readouterr().out
        assert main_view([store, "--view", "all", "--depth", "2"]) == 0
        out = capsys.readouterr().out
        assert "Calling Context View" in out
        assert "cycles (mean)" in out  # summaries rode along

    def test_merge_working_set_flag(self, tmp_path, capsys):
        ranks = str(tmp_path / "ranks")
        main_sim_scale([ranks, "-n", "3", "--fanout", "2", "--depth", "1"])
        capsys.readouterr()
        rank_files = sorted(
            os.path.join(ranks, f) for f in os.listdir(ranks)
        )
        store = str(tmp_path / "m.rpstore")
        with pytest.raises(Exception, match="working-set budget"):
            main_prof_merge(rank_files + ["-o", store,
                                          "--working-set-mib", "0.001"])

    def test_view_out_of_core_flag(self, tmp_path, capsys):
        db = str(tmp_path / "fig1.rpdb")
        main_sim(["fig1", "-o", db])
        capsys.readouterr()
        assert main_view([db, "--out-of-core", "--view", "cct"]) == 0
        assert "Calling Context View" in capsys.readouterr().out


class TestDiff:
    @pytest.fixture()
    def rank_files(self, tmp_path):
        ranks = str(tmp_path / "ranks")
        main_sim_scale([ranks, "-n", "4", "--fanout", "2", "--depth", "2"])
        return sorted(os.path.join(ranks, f) for f in os.listdir(ranks))

    def test_diff_renders_and_reports(self, rank_files, capsys):
        capsys.readouterr()
        assert main_diff(rank_files + ["--baseline", "mean",
                                       "--target", "-1",
                                       "--depth", "2"]) == 0
        captured = capsys.readouterr()
        assert "Flat View" in captured.out
        assert "vs mean" in captured.out
        assert "aligned 4 experiment(s)" in captured.err

    def test_diff_json_output(self, rank_files, capsys):
        import json

        capsys.readouterr()
        assert main_diff(rank_files + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ensemble"]["n_experiments"] == 4
        assert "findings" in payload

    def test_diff_fail_on_regression_exit_code(self, tmp_path, capsys):
        from repro.core.attribution import attribute
        from repro.hpcprof import database

        ranks = str(tmp_path / "r")
        main_sim_scale([ranks, "-n", "3", "--fanout", "2", "--depth", "2"])
        files = sorted(os.path.join(ranks, f) for f in os.listdir(ranks))
        # plant a regression into the last member
        exp = database.load(files[-1])
        for node in exp.cct.walk():
            if any(f.name == "p1_1" for f in node.call_path()):
                for mid, value in list(node.raw.items()):
                    node.raw[mid] = value * 3.0
        attribute(exp.cct)
        bad = str(tmp_path / "bad.rpdb")
        database.save(exp, bad)
        capsys.readouterr()
        assert main_diff(files[:-1] + [bad, "--target", "-1",
                                       "--fail-on-regression"]) == 3
        assert "[regression] p1_1" in capsys.readouterr().out

    def test_diff_factor_and_views(self, rank_files, capsys):
        capsys.readouterr()
        assert main_diff(rank_files[:2] + ["--baseline", "0",
                                           "--target", "1",
                                           "--factor", "2.0",
                                           "--view", "cct",
                                           "--no-detect"]) == 0
        out = capsys.readouterr().out
        assert "Calling Context View" in out
        assert "vs 2*" in out

    def test_diff_needs_two_members(self, rank_files):
        with pytest.raises(Exception, match="at least two"):
            main_diff([rank_files[0]])

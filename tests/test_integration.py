"""Cross-cutting integration tests of the whole toolkit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.attribution import attribute
from repro.core.views import NodeCategory
from repro.hpcprof.correlate import correlate
from repro.hpcprof.experiment import Experiment
from repro.hpcrun.counters import CYCLES
from repro.hpcstruct.synthstruct import build_structure
from repro.sim.executor import execute
from repro.sim.workloads import fig1, moab, pflotran, s3d


class TestSamplingRobustness:
    """The paper's premise: asynchronous sampling yields accurate and
    precise profiles — the presentation must reach the same conclusions
    from noisy sampled data as from exact costs."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_hot_path_stable_under_poisson_sampling(self, seed):
        program = s3d.build()
        structure = build_structure(program)
        exact = execute(program)
        # simulate a sampling run: one sample per ~1e6 cycles of cost
        noisy = exact.resampled(period=1.0e6, rng=np.random.default_rng(seed))
        exp = Experiment.from_profile(noisy, structure)
        result = exp.hot_path(CYCLES)
        assert result.hotspot.name == "chemkin_m_reaction_rate"

    def test_shares_converge_with_sampling_rate(self):
        """Finer sampling periods give smaller relative error on a big
        scope's share — the statistical-accuracy story."""
        program = s3d.build()
        structure = build_structure(program)
        exact = execute(program)

        def rhsf_share(profile):
            exp = Experiment.from_profile(profile, structure)
            cyc = exp.metric_id(CYCLES)
            rhsf = exp.flat_view().find("rhsf", category=NodeCategory.PROCEDURE)
            return rhsf.inclusive[cyc] / exp.total(CYCLES)

        truth = rhsf_share(exact)

        def error(period, n=8):
            errs = []
            for seed in range(n):
                noisy = exact.resampled(period,
                                        rng=np.random.default_rng(seed))
                errs.append(abs(rhsf_share(noisy) - truth))
            return float(np.mean(errs))

        coarse = error(5.0e7)   # ~20 samples total
        fine = error(5.0e5)     # ~2000 samples total
        assert fine < coarse

    def test_zero_period_profile_views_are_empty_safe(self):
        """A run whose sampling drew nothing must not break presentation."""
        program = fig1.build()
        structure = build_structure(program)
        exact = execute(program)
        rng = np.random.default_rng(0)
        empty = exact.resampled(period=1.0e9, rng=rng)  # ~0 samples expected
        exp = Experiment.from_profile(empty, structure)
        for view in exp.views():
            assert isinstance(view.roots, list)


class TestEndToEndWorkloads:
    @pytest.mark.parametrize("builder", [fig1.build, s3d.build, moab.build,
                                         pflotran.build])
    def test_every_workload_supports_all_views(self, builder):
        exp = Experiment.from_program(builder())
        for view in exp.views():
            assert view.roots, f"{view.title} empty for {exp.name}"
            # materialize everything once; no exceptions, no empty labels
            for root in view.roots:
                for node in root.walk():
                    assert node.name

    @pytest.mark.parametrize("builder", [fig1.build, s3d.build, moab.build])
    def test_database_round_trip_preserves_hot_path(self, builder, tmp_path):
        from repro.hpcprof import database

        exp = Experiment.from_program(builder())
        metric = exp.metrics.by_id(0).name
        want = [n.name for n in exp.hot_path(metric).path]
        path = str(tmp_path / "db.rpdb")
        database.save(exp, path)
        loaded = database.load(path)
        got = [n.name for n in loaded.hot_path(metric).path]
        assert got == want

    def test_consistency_across_views(self):
        """For every workload, each procedure's inclusive cost agrees
        between the Callers and Flat views (the paper's consistency
        claim), and no view invents cost beyond the execution total."""
        for builder in (fig1.build, s3d.build, moab.build):
            exp = Experiment.from_program(builder())
            mid = 0
            total = exp.cct.root.inclusive.get(mid, 0.0)
            callers = {r.name: r for r in exp.callers_view().roots}
            flat = exp.flat_view()
            for file_row in flat.roots:
                for row in file_row.children:
                    if row.category is not NodeCategory.PROCEDURE:
                        continue
                    twin = callers[row.name]
                    assert twin.inclusive.get(mid, 0.0) == pytest.approx(
                        row.inclusive.get(mid, 0.0)
                    )
                    assert row.inclusive.get(mid, 0.0) <= total * (1 + 1e-9)


class TestMultiToolAgreement:
    def test_tracer_and_simulator_agree_on_shape(self):
        """Profile REAL Python code mimicking Figure 1 and check the
        Callers View splits g's cost by caller just like the synthetic
        model does: context sensitivity end to end."""
        import os
        import tempfile
        import textwrap

        src = textwrap.dedent(
            """
            def g(n):
                total = 0
                for i in range(n):
                    total += i
                return total

            def f():
                return g(60000)

            def m():
                return f() + g(30000)
            """
        )
        workdir = tempfile.mkdtemp(prefix="repro-int-")
        path = os.path.join(workdir, "mini.py")
        with open(path, "w") as fh:
            fh.write(src)
        namespace: dict = {}
        exec(compile(src, path, "exec"), namespace)

        from repro.hpcrun.tracer import trace_call
        from repro.hpcstruct.pystruct import build_python_structure

        _result, profile = trace_call(namespace["m"], roots=[workdir])
        structure = build_python_structure([path])
        exp = Experiment.from_profile(profile, structure)
        events = exp.metric_id("line events")
        callers = exp.callers_view()
        g_row = next(r for r in callers.roots if r.name == "g")
        shares = {c.name: c.inclusive[events] for c in g_row.children}
        assert shares["f"] > shares["m"] * 1.5  # 60k vs 30k iterations

"""Salvage-loading properties: the fault-tolerant ingestion contract.

Exhaustive (every byte position of a small round-tripped ``.rpdb``) and
property-based checks of the two loading modes:

* **strict** (`database.loads(strict=True)`) — corrupt or truncated
  input raises :class:`DatabaseError`, never ``struct.error``,
  ``UnicodeDecodeError``, ``MemoryError``, or any other leak;
* **salvage** (`strict=False`) — never raises on corrupt/truncated
  input; returns an :class:`Experiment` whose recovered prefix passes
  the same validation as a clean load, tagged with an accurate
  :class:`LoadReport`.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import DatabaseError
from repro.hpcprof import binio, database
from repro.hpcprof.experiment import Experiment
from repro.hpcprof.recovery import salvage_loads, validate_experiment
from repro.sim.workloads import fig1
from repro.testing import bit_flip, frame_boundaries, truncate


@pytest.fixture(scope="module")
def experiment():
    return Experiment.from_program(fig1.build())


@pytest.fixture(scope="module")
def blob(experiment):
    return binio.dumps_binary(experiment)


@pytest.fixture(scope="module")
def blob_v1(experiment):
    return binio.dumps_binary(experiment, version=1)


def _strict_must_contain(data: bytes) -> None:
    """Strict loads: success or DatabaseError, nothing else."""
    try:
        exp = database.loads(data, strict=True)
    except DatabaseError:
        return
    validate_experiment(exp)


def _salvage_must_hold(data: bytes) -> None:
    """Salvage loads: never raise once the header is intact; the
    recovered experiment validates; the report's accounting closes."""
    exp = database.loads(data, origin="<fault>", strict=False)
    validate_experiment(exp)
    report = exp.load_report
    assert report.mode == "salvage"
    assert report.bytes_total == len(data)
    assert report.bytes_recovered + report.bytes_lost == report.bytes_total
    assert 0 <= report.bytes_recovered <= report.bytes_total
    assert report.nodes_recovered == len(exp.cct)
    if report.nodes_declared is not None:
        assert report.nodes_dropped == max(
            0, report.nodes_declared - report.nodes_recovered
        )


# --------------------------------------------------------------------- #
# exhaustive sweeps (satellite: every byte position of a small database)
# --------------------------------------------------------------------- #
class TestExhaustiveTruncation:
    def test_every_offset_strict(self, blob):
        for cut in range(len(blob)):
            try:
                database.loads(truncate(blob, cut), strict=True)
            except DatabaseError:
                continue
            except Exception as exc:  # noqa: BLE001 - the assertion
                pytest.fail(f"cut={cut} leaked {type(exc).__name__}: {exc}")
            pytest.fail(f"cut={cut}: truncated database loaded strictly")

    def test_every_offset_salvage(self, blob):
        for cut in range(6, len(blob) + 1):
            try:
                _salvage_must_hold(truncate(blob, cut))
            except Exception as exc:  # noqa: BLE001
                pytest.fail(f"cut={cut}: salvage raised {type(exc).__name__}: {exc}")

    def test_every_offset_salvage_v1(self, blob_v1):
        for cut in range(6, len(blob_v1) + 1):
            try:
                _salvage_must_hold(truncate(blob_v1, cut))
            except Exception as exc:  # noqa: BLE001
                pytest.fail(f"v1 cut={cut}: salvage raised {type(exc).__name__}: {exc}")


class TestExhaustiveBitFlips:
    def test_every_byte_strict(self, blob):
        for offset in range(len(blob)):
            try:
                _strict_must_contain(bit_flip(blob, offset, offset % 8))
            except Exception as exc:  # noqa: BLE001
                pytest.fail(
                    f"offset={offset} leaked {type(exc).__name__}: {exc}"
                )

    def test_every_byte_salvage(self, blob):
        for offset in range(len(blob)):
            mutated = bit_flip(blob, offset, offset % 8)
            if mutated[:4] != b"RPDB" or offset in (4, 5):
                # the magic/version prefix is identity, not payload:
                # salvage refuses input it cannot recognize at all
                with pytest.raises(DatabaseError):
                    salvage_loads(mutated)
                continue
            try:
                _salvage_must_hold(mutated)
            except Exception as exc:  # noqa: BLE001
                pytest.fail(
                    f"offset={offset}: salvage raised {type(exc).__name__}: {exc}"
                )


# --------------------------------------------------------------------- #
# frame-boundary recovery guarantees
# --------------------------------------------------------------------- #
class TestFrameBoundaries:
    def test_boundaries_cover_all_sections(self, blob):
        cuts = frame_boundaries(blob)
        assert 0 in cuts and len(blob) in cuts
        assert len(cuts) >= 2 * len(binio.section_frames(blob))

    def test_cut_at_each_boundary_recovers_prefix(self, blob, experiment):
        """Cutting exactly at a frame boundary loses whole trailing
        sections and nothing else: every section fully before the cut is
        recovered intact."""
        frames = binio.section_frames(blob)
        for _sid, header, _payload, end in frames:
            exp = salvage_loads(truncate(blob, header))
            report = exp.load_report
            # sections whose frames end at or before the cut survive whole
            survived = [f for f in frames if f[3] <= header]
            if any(f[0] == binio.SEC_METRICS for f in survived):
                assert report.metrics_recovered == len(experiment.metrics)
            if any(f[0] == binio.SEC_CCT for f in survived):
                assert report.nodes_recovered == len(experiment.cct)
                assert report.nodes_dropped == 0
            else:
                assert "cct" in (
                    report.sections_skipped + report.sections_truncated
                ) or report.nodes_recovered <= len(experiment.cct)

    def test_full_stream_salvage_is_clean(self, blob, experiment):
        exp = salvage_loads(blob)
        report = exp.load_report
        assert report.clean
        assert report.bytes_lost == 0
        assert report.nodes_recovered == len(experiment.cct)
        assert report.nodes_dropped == 0
        assert not report.sections_skipped and not report.sections_truncated

    def test_corrupt_middle_section_localized(self, blob, experiment):
        """Corrupting the STRUCTURE payload (CRC fails) skips only that
        section — the framing still recovers the CCT after it."""
        frames = {sid: f for sid, *f in binio.section_frames(blob)}
        _header, payload_at, _end = frames[binio.SEC_STRUCTURE]
        mutated = bit_flip(blob, payload_at + 8)
        exp = salvage_loads(mutated)
        report = exp.load_report
        assert "structure" in report.sections_skipped
        assert report.metrics_recovered == len(experiment.metrics)
        validate_experiment(exp)


# --------------------------------------------------------------------- #
# version compatibility
# --------------------------------------------------------------------- #
class TestV1Compatibility:
    def test_v1_round_trip_bit_identical(self, blob_v1):
        """An unframed v1 database loads and re-serializes to the very
        same bytes — backward compatibility is exact, not approximate."""
        exp = binio.loads_binary(blob_v1)
        assert binio.dumps_binary(exp, version=1) == blob_v1

    def test_v1_and_v2_load_identically(self, blob, blob_v1):
        e2, e1 = binio.loads_binary(blob), binio.loads_binary(blob_v1)
        assert binio.dumps_binary(e1) == binio.dumps_binary(e2)

    def test_v2_round_trip_stable(self, blob):
        assert binio.dumps_binary(binio.loads_binary(blob)) == blob


# --------------------------------------------------------------------- #
# randomized reinforcement of the exhaustive sweeps
# --------------------------------------------------------------------- #
class TestRandomizedCorruption:
    @settings(max_examples=100, deadline=None)
    @given(offset=st.integers(min_value=0, max_value=10_000),
           bit=st.integers(min_value=0, max_value=7))
    def test_flip_then_both_modes(self, blob, offset, bit):
        mutated = bit_flip(blob, offset % len(blob), bit)
        _strict_must_contain(mutated)
        if mutated[:6] == blob[:6]:
            _salvage_must_hold(mutated)

    @settings(max_examples=100, deadline=None)
    @given(data=st.binary(min_size=0, max_size=300))
    def test_salvage_arbitrary_bytes(self, data):
        """Salvage accepts anything carrying a valid header; everything
        else raises DatabaseError — never another exception type."""
        try:
            _salvage_must_hold(b"RPDB" + data)
        except DatabaseError:
            pass

"""Differential properties of the time dimension.

The trace layer promises three exact contracts, and Hypothesis attacks
all of them with random event streams over a fixed program structure:

* **backend bit-identity** — a windowed query returns bit-identical
  results (``float.hex`` on every cell) whether the trace lives in
  memory (:class:`TraceSet`) or in a time-partitioned chunked store
  (:class:`TraceStore`), for *any* window;
* **exact partitioning** — disjoint windows covering the trace sum
  *exactly* (int64, not approximately) to the whole-trace tick matrix,
  because costs are integer ticks and integer addition is associative;
* **``window(None, None)`` ≡ untimed** — the unbounded window *is* the
  trace's untimed profile, with no float drift whatsoever.

Events are generated against the context table of a real simulated
trace, so every random stream exercises genuine call paths through the
correlation pipeline rather than synthetic one-frame stubs.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query import Query, query, run_query
from repro.trace import TraceData, TraceSet, create_trace_store

NRANKS = 2
T_SPAN = 10.0  # event timestamps live in [0, T_SPAN)


def _template():
    """A sealed simulated trace supplying real contexts + structure."""
    from repro.sim.spmd import trace_spmd
    from repro.sim.workloads import fig1

    return trace_spmd(fig1.build(), nranks=NRANKS, seed=7, trace_slices=2,
                      name="prop-trace")


TEMPLATE = _template()
CONTEXTS = TEMPLATE.contexts
N_METRICS = len(TEMPLATE.metrics)


@st.composite
def trace_events(draw):
    """Per-rank lists of ``(ctx index, t, ticks row)`` random events."""
    out = []
    for _ in range(NRANKS):
        n = draw(st.integers(min_value=0, max_value=12))
        events = []
        for _ in range(n):
            ci = draw(st.integers(0, len(CONTEXTS) - 1))
            t = draw(st.floats(min_value=0.0, max_value=T_SPAN,
                               exclude_max=True, allow_nan=False,
                               allow_infinity=False))
            ticks = {
                mid: draw(st.integers(min_value=0, max_value=1_000_000))
                for mid in range(N_METRICS)
            }
            events.append((ci, t, ticks))
        out.append(events)
    return out


def _build_set(rank_events) -> TraceSet:
    traces = []
    for rank, events in enumerate(rank_events):
        td = TraceData(
            TEMPLATE.metrics,
            resolutions=TEMPLATE.resolutions,
            rank=rank,
            program=TEMPLATE.program,
            time_metric=TEMPLATE.time_metric,
            time_scale=TEMPLATE.time_scale,
        )
        # anchor every rank with one whole-table event so ranks never
        # disagree about which contexts exist (the store requires one
        # global context table; real tracers share structure the same way)
        for ci, (frames, leaf_line) in enumerate(CONTEXTS):
            td.record(frames, leaf_line, 0.0, {0: 0})
        for ci, t, ticks in events:
            frames, leaf_line = CONTEXTS[ci]
            td.record(frames, leaf_line, t, ticks)
        traces.append(td)
    return TraceSet(traces, TEMPLATE.structure, name="prop-trace")


def _windows(draw_cuts):
    """Random window bounds including open/unbounded/degenerate ones."""
    a, b = sorted(draw_cuts)
    return [(None, None), (a, b), (None, a), (b, None), (a, a)]


def _fingerprint(result):
    # exact float bits: float.hex() distinguishes every representable value
    cols = result.to_columns()
    return {
        k: [v.hex() if isinstance(v, float) else v for v in vals]
        for k, vals in cols.items()
    }, [
        tuple(v.hex() if isinstance(v, float) else v for v in row)
        for row in result.to_rows()
    ], result.truncated


QUERIES = [
    query("**/*"),
    query("**/*").sort("cycles"),
    query("** / *").groupby("name").sort("cycles", "exclusive"),
]


@settings(max_examples=15, deadline=None)
@given(rank_events=trace_events(),
       cuts=st.tuples(st.floats(0, T_SPAN, allow_nan=False),
                      st.floats(0, T_SPAN, allow_nan=False)))
def test_window_bit_identical_across_backends(rank_events, cuts):
    """In-memory TraceSet vs chunked TraceStore: same bytes, any window."""
    traces = _build_set(rank_events)
    with tempfile.TemporaryDirectory() as tmp:
        store = create_trace_store(
            traces, os.path.join(tmp, "t.rpstore"), chunk_duration=2.5)
        try:
            for t0, t1 in _windows(cuts):
                for q in QUERIES:
                    wq = q.window(t0, t1)
                    want = _fingerprint(run_query(wq, traces))
                    assert _fingerprint(run_query(wq, store)) == want
        finally:
            store.close()


@settings(max_examples=15, deadline=None)
@given(rank_events=trace_events(),
       cuts=st.lists(st.floats(0, T_SPAN, allow_nan=False),
                     min_size=1, max_size=4))
def test_disjoint_windows_partition_exactly(rank_events, cuts):
    """Half-open windows covering the axis sum to the whole trace,
    int64-exactly — on both backends."""
    traces = _build_set(rank_events)
    bounds = [None] + sorted(cuts) + [None]
    whole = traces.window_ticks(None, None)
    parts = np.zeros_like(whole)
    for lo, hi in zip(bounds, bounds[1:]):
        parts += traces.window_ticks(lo, hi)
    assert np.array_equal(parts, whole)

    with tempfile.TemporaryDirectory() as tmp:
        store = create_trace_store(
            traces, os.path.join(tmp, "t.rpstore"), chunk_duration=1.0)
        try:
            store_parts = np.zeros_like(whole)
            for lo, hi in zip(bounds, bounds[1:]):
                store_parts += store.window_ticks(lo, hi)
            assert np.array_equal(store_parts, whole)
        finally:
            store.close()


@settings(max_examples=15, deadline=None)
@given(rank_events=trace_events())
def test_unbounded_window_is_the_untimed_profile(rank_events):
    """``window(None, None)`` reproduces the untimed profile exactly:
    same tick sums per rank, same query results as the profile-built
    experiment, bit for bit."""
    traces = _build_set(rank_events)

    # tick-level: the unbounded window is the exact per-rank sum
    ticks = traces.window_ticks(None, None)
    for r, td in enumerate(traces.traces):
        assert np.array_equal(
            ticks[r][traces._remap[r]], td.window_ticks(None, None))

    # query-level: windowed-trace results == untimed-experiment results
    untimed = traces.window_experiment(None, None)
    for q in QUERIES:
        want = _fingerprint(run_query(q, untimed))
        assert _fingerprint(run_query(q.window(None, None), traces)) == want
        assert _fingerprint(run_query(q, traces)) == want


@settings(max_examples=15, deadline=None)
@given(rank_events=trace_events(),
       cuts=st.tuples(st.floats(0, T_SPAN, allow_nan=False),
                      st.floats(0, T_SPAN, allow_nan=False)))
def test_windowed_spec_round_trip(rank_events, cuts):
    """Query.window survives to_spec()/from_spec() with identical results."""
    traces = _build_set(rank_events)
    t0, t1 = sorted(cuts)
    for q in QUERIES:
        wq = q.window(t0, t1)
        rebuilt = Query.from_spec(wq.to_spec())
        assert rebuilt.time_window == wq.time_window
        assert _fingerprint(run_query(rebuilt, traces)) == \
            _fingerprint(run_query(wq, traces))

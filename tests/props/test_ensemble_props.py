"""Differential properties of the ensemble alignment and diff engine.

The exactness claims :mod:`repro.core.ensemble` documents are checked
here over random canonical CCTs:

* **identity** — ``diff(A, A)`` is *exactly* zero everywhere (IEEE
  ``x - x == 0.0`` plus the sparse add's exact-zero drop);
* **antisymmetry** — ``diff(A, B)`` is the exact negation of
  ``diff(B, A)``, node for node, in raw, inclusive, and exclusive;
* **totals** — every member's matrix root row equals that member's own
  inclusive totals, bit for bit;
* **loader equivalence** — aligning the in-memory experiments, their
  ``.rpdb`` files, and their ``.rpstore`` directories produces
  bit-identical matrices and names (the streaming loaders add nothing
  and lose nothing).
"""

from __future__ import annotations

import os
import tempfile

import numpy as np
from hypothesis import given, settings

from repro.core.ensemble import align_experiments
from repro.core.store import create_store
from repro.hpcprof import database
from repro.hpcprof.experiment import Experiment
from tests.props.strategies import NUM_METRICS, cct_experiments


def _experiment(data, name: str) -> Experiment:
    cct, model, metrics = data
    return Experiment(name, metrics, model, cct)


def _all_value_dicts(exp: Experiment):
    for node in exp.cct.walk():
        yield node.raw
        yield node.inclusive
        yield node.exclusive


@settings(max_examples=30, deadline=None)
@given(data=cct_experiments())
def test_self_diff_is_exactly_zero(data):
    """diff(A, A): every raw/inclusive/exclusive dict is empty (0.0)."""
    exp = _experiment(data, "self")
    ensemble = align_experiments([exp, exp])
    diff = ensemble.diff(0, 1)
    for values in _all_value_dicts(diff):
        assert values == {}


@settings(max_examples=30, deadline=None)
@given(a=cct_experiments(), b=cct_experiments())
def test_diff_is_antisymmetric(a, b):
    """diff(A, B) == -diff(B, A) bitwise, over the identical skeleton."""
    ensemble = align_experiments(
        [_experiment(a, "a"), _experiment(b, "b")]
    )
    forward = ensemble.diff(0, 1)
    backward = ensemble.diff(1, 0)
    f_nodes = list(forward.cct.walk())
    b_nodes = list(backward.cct.walk())
    assert len(f_nodes) == len(b_nodes)
    for fn, bn in zip(f_nodes, b_nodes):
        assert (fn.kind, fn.line) == (bn.kind, bn.line)
        for flavor in ("raw", "inclusive", "exclusive"):
            fv = getattr(fn, flavor)
            bv = getattr(bn, flavor)
            assert fv.keys() == bv.keys()
            for mid, value in fv.items():
                assert value == -bv[mid]


@settings(max_examples=30, deadline=None)
@given(a=cct_experiments(), b=cct_experiments(), c=cct_experiments())
def test_matrix_root_rows_are_member_totals(a, b, c):
    """Row i of the inclusive matrix carries member i's own totals."""
    members = [_experiment(a, "a"), _experiment(b, "b"),
               _experiment(c, "c")]
    ensemble = align_experiments(members)
    for mid in range(NUM_METRICS):
        matrix = ensemble.alignment.matrix(mid, "inclusive")
        for i, member in enumerate(members):
            assert matrix[i, 0] == member.cct.root.inclusive.get(mid, 0.0)


@settings(max_examples=10, deadline=None)
@given(a=cct_experiments(), b=cct_experiments())
def test_loaders_align_bit_identically(a, b):
    """in-memory vs .rpdb vs .rpstore members: identical alignment."""
    members = [_experiment(a, "a"), _experiment(b, "b")]
    reference = align_experiments(members)
    with tempfile.TemporaryDirectory() as tmp:
        rpdb_paths = []
        store_paths = []
        for i, member in enumerate(members):
            rpdb = os.path.join(tmp, f"m{i}.rpdb")
            database.save(member, rpdb)
            rpdb_paths.append(rpdb)
            store = os.path.join(tmp, f"m{i}.rpstore")
            create_store(member, store).release()
            store_paths.append(store)
        for paths in (rpdb_paths, store_paths):
            aligned = align_experiments(paths)
            assert aligned.names == reference.names
            assert aligned.alignment.matrices.keys() \
                == reference.alignment.matrices.keys()
            for key, matrix in reference.alignment.matrices.items():
                assert np.array_equal(
                    matrix, aligned.alignment.matrices[key]
                ), key

"""Property-based tests for filters, search and rendering invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ccview import CallingContextView
from repro.core.filters import FilterAction, FilterSet
from repro.core.metrics import MetricFlavor, MetricSpec
from repro.core.search import search
from repro.core.views import NodeCategory
from repro.viewer.format import format_cell, format_percent, format_value
from repro.viewer.navigation import NavigationState
from repro.viewer.table import TableOptions, render_table
from tests.props.strategies import cct_experiments


def _visible_names(filters, view, roots):
    out = []

    def visit(node):
        out.append(node)
        for child in filters.children_of(view, node):
            visit(child)

    for row in roots:
        visit(row)
    return out


class TestFilterProps:
    @settings(max_examples=30, deadline=None)
    @given(data=cct_experiments(),
           pattern=st.sampled_from(["p0", "p1", "p2", "p3", "*"]))
    def test_elide_preserves_total_cost(self, data, pattern):
        """Eliding any set of scopes never changes the roots' total
        inclusive cost coverage."""
        cct, _model, metrics = data
        view = CallingContextView(cct, metrics)
        filters = FilterSet().add(pattern,
                                  categories=[NodeCategory.PROCEDURE_FRAME,
                                              NodeCategory.CALL_SITE])
        roots = filters.apply(view)
        covered = sum(r.inclusive.get(0, 0.0) for r in roots)
        original = sum(r.inclusive.get(0, 0.0) for r in view.roots)
        # elided roots are replaced by their children, whose inclusive
        # totals can only drop by the elided scopes' own raw cost — but
        # with frame/call-site elision, statements remain, so coverage
        # never exceeds the original and never goes negative
        assert 0.0 <= covered <= original + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(data=cct_experiments())
    def test_prune_removes_whole_subtrees(self, data):
        cct, _model, metrics = data
        view = CallingContextView(cct, metrics)
        filters = FilterSet().add("p0", action=FilterAction.PRUNE)
        visible = _visible_names(filters, view, filters.apply(view))
        assert all(n.name != "p0" for n in visible)

    @settings(max_examples=30, deadline=None)
    @given(data=cct_experiments())
    def test_empty_filterset_is_identity(self, data):
        cct, _model, metrics = data
        view = CallingContextView(cct, metrics)
        filters = FilterSet()
        assert filters.apply(view) == view.roots


class TestSearchProps:
    @settings(max_examples=30, deadline=None)
    @given(data=cct_experiments())
    def test_search_star_finds_every_scope(self, data):
        cct, _model, metrics = data
        view = CallingContextView(cct, metrics)
        hits = search(view, "*", limit=100_000)
        walked = sum(1 for r in view.roots for _ in r.walk())
        assert len(hits) == walked

    @settings(max_examples=30, deadline=None)
    @given(data=cct_experiments())
    def test_hits_sorted_and_paths_valid(self, data):
        cct, _model, metrics = data
        view = CallingContextView(cct, metrics)
        spec = MetricSpec(0, MetricFlavor.INCLUSIVE)
        hits = search(view, "*", spec=spec, limit=100_000)
        values = [h.value for h in hits]
        assert values == sorted(values, reverse=True)
        for hit in hits:
            assert hit.path[-1] == hit.node.name


class TestFormatProps:
    @settings(max_examples=200, deadline=None)
    @given(value=st.floats(allow_nan=False, allow_infinity=False,
                           min_value=-1e30, max_value=1e30))
    def test_blank_iff_zero(self, value):
        text = format_value(value)
        assert (text == "") == (value == 0.0)

    @settings(max_examples=200, deadline=None)
    @given(value=st.floats(min_value=0.0, max_value=1e12, allow_nan=False),
           total=st.floats(min_value=1e-6, max_value=1e12, allow_nan=False))
    def test_percent_parses_back(self, value, total):
        text = format_percent(value, total)
        if text:
            assert text.endswith("%")
            float(text[:-1])  # must parse

    @settings(max_examples=100, deadline=None)
    @given(value=st.floats(min_value=0.0, max_value=1e9, allow_nan=False))
    def test_cell_composition(self, value):
        cell = format_cell(value, 1e9)
        if value == 0.0:
            assert cell == ""
        else:
            assert cell.startswith(format_value(value))


class TestRenderProps:
    @settings(max_examples=20, deadline=None)
    @given(data=cct_experiments())
    def test_render_row_count_bounded(self, data):
        cct, _model, metrics = data
        view = CallingContextView(cct, metrics)
        state = NavigationState(view)
        state.expand_to_depth(10)
        out = render_table(view, state, options=TableOptions(max_rows=7))
        body = out.splitlines()[2:]
        data_rows = [l for l in body if not l.startswith("...")]
        assert len(data_rows) <= 7

"""Property: the columnar wire format equals the JSON table, bit for bit.

For random CCT experiments, every view's table must decode from the
framed columnar bytes to exactly the dict the JSON encoding would
deliver to a client — including float equality at the bit level, since
JSON's ``repr``-based float printing round-trips binary64 exactly and
the column slabs carry the identical bytes.  The comparison goes
through a real ``json.dumps``/``json.loads`` cycle so the JSON side is
what a client actually parses, not an in-process shortcut.
"""

from __future__ import annotations

import json
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.views import ViewKind
from repro.hpcprof.experiment import Experiment
from repro.server.sessions import table_snapshot
from repro.server.wire import decode_columnar, encode_columnar
from repro.viewer.session import ViewerSession
from tests.props.strategies import cct_experiments

VIEW_KINDS = tuple(ViewKind)


class TestColumnarParity:
    @settings(max_examples=25, deadline=None)
    @given(data=cct_experiments(),
           kind=st.sampled_from(VIEW_KINDS),
           depth=st.integers(min_value=0, max_value=6),
           max_rows=st.integers(min_value=1, max_value=200),
           descending=st.booleans())
    def test_decoded_columnar_equals_json_rows(
        self, data, kind, depth, max_rows, descending
    ) -> None:
        cct, model, metrics = data
        session = ViewerSession(Experiment("prop", metrics, model, cct))
        snapshot = table_snapshot(session, kind, depth=depth,
                                  max_rows=max_rows, descending=descending)

        as_json = json.loads(
            json.dumps(snapshot.to_json_payload("s1"), sort_keys=True)
        )
        reference = {k: v for k, v in as_json.items() if k != "session"}
        decoded = decode_columnar(encode_columnar(snapshot))
        assert decoded == reference
        # dict equality treats 0.0 == -0.0 and would hide a NaN by
        # failing; make bit-identity explicit for every float cell
        for json_row, col_row in zip(reference["rows"], decoded["rows"]):
            for json_cell, col_cell in zip(json_row[2:], col_row[2:]):
                assert math.copysign(1.0, json_cell) == math.copysign(
                    1.0, col_cell
                )
                assert json_cell == col_cell

    @settings(max_examples=25, deadline=None)
    @given(data=cct_experiments(), kind=st.sampled_from(VIEW_KINDS))
    def test_frame_is_deterministic(self, data, kind) -> None:
        """Same snapshot, same bytes — the premise of both the response
        cache (encode once per generation) and the golden pin."""
        cct, model, metrics = data
        session = ViewerSession(Experiment("prop", metrics, model, cct))
        snapshot = table_snapshot(session, kind, depth=3, max_rows=50)
        assert encode_columnar(snapshot) == encode_columnar(snapshot)

"""Differential properties: dict engine vs columnar engine vs mmap store.

The out-of-core tier promises *bit-identical* presentation: the same
CCT pushed through (a) the per-node dict engine, (b) the in-memory
columnar :class:`MetricEngine`, and (c) the mmap-backed column store
must produce identical Eq. 1/2 attribution, identical recursion sums,
identical hot-path selections and byte-identical rendered tables — and
the streaming k-way merge must match the in-memory merge exactly.
Hypothesis drives random canonical CCTs through all paths at once.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np
from hypothesis import given, settings

from repro.core.metrics import MetricFlavor, MetricSpec
from repro.core.store import create_store
from repro.hpcprof import binio, database
from repro.hpcprof.experiment import Experiment
from repro.hpcprof.merge import merge_experiments, merge_rank_files
from repro.viewer.table import TableOptions, render_view
from tests.props.strategies import NUM_METRICS, cct_experiments

_OPTS = TableOptions(max_rows=200, name_width=56)


def _renders(exp: Experiment) -> list[str]:
    spec = MetricSpec(0, MetricFlavor.INCLUSIVE)
    return [render_view(v, metric=spec, depth=5, options=_OPTS)
            for v in exp.views()]


def _node_values(exp: Experiment) -> list[tuple]:
    return [
        (node.kind.value, node.line,
         dict(node.raw), dict(node.inclusive), dict(node.exclusive))
        for node in exp.cct.walk()
    ]


@settings(max_examples=20, deadline=None)
@given(data=cct_experiments())
def test_store_round_trip_is_bit_identical(data):
    """In-memory experiment vs its mmap store: same attribution, same
    recursion sums, same hot paths, byte-identical rendered views."""
    cct, model, metrics = data
    exp = Experiment("prop", metrics, model, cct)
    with tempfile.TemporaryDirectory() as tmp:
        store_exp = create_store(exp, os.path.join(tmp, "s.rpstore"))
        try:
            # Eq. 1/2 attribution, node for node, bit-exact (== on floats)
            assert _node_values(exp) == _node_values(store_exp)
            # recursion sums survive: root-frame inclusives (which fold
            # recursive instances exactly once) agree bit-for-bit
            for a, b in zip(exp.cct.root.children, store_exp.cct.root.children):
                assert dict(a.inclusive) == dict(b.inclusive)
            assert _renders(exp) == _renders(store_exp)
            # the store engine really is the mmap one, not a fallback
            assert isinstance(store_exp.engine.raw, np.memmap)
            for mid in range(NUM_METRICS):
                a = exp.hot_path(metrics.by_id(mid).name)
                b = store_exp.hot_path(metrics.by_id(mid).name)
                assert [n.name for n in a.path] == [n.name for n in b.path]
                assert a.values == b.values
        finally:
            store_exp.close()


@settings(max_examples=20, deadline=None)
@given(data=cct_experiments())
def test_columnar_engine_matches_node_dicts(data):
    """The columnar matrices agree element-wise with the per-node dicts
    (the dict gather IS the engine's source here; this pins the row
    order and the dense scatter against the tree)."""
    cct, model, metrics = data
    exp = Experiment("prop", metrics, model, cct)
    engine = exp.engine
    for row, node in enumerate(engine.nodes):
        for mid in range(NUM_METRICS):
            assert engine.raw[row, mid] == node.raw.get(mid, 0.0)
            assert engine.inclusive[row, mid] == node.inclusive.get(mid, 0.0)
            assert engine.exclusive[row, mid] == node.exclusive.get(mid, 0.0)


@settings(max_examples=20, deadline=None)
@given(data=cct_experiments())
def test_salvage_of_intact_dump_matches_strict(data):
    """strict=False on an intact database is presentation-identical to
    strict=True, for both binary format versions."""
    cct, model, metrics = data
    exp = Experiment("prop", metrics, model, cct)
    for version in (1, 2):
        blob = binio.dumps_binary(exp, version=version)
        strict = database.loads(blob, strict=True)
        salvaged = database.loads(blob, strict=False)
        assert _renders(strict) == _renders(salvaged)
        assert _node_values(strict) == _node_values(salvaged)


@settings(max_examples=10, deadline=None)
@given(data=cct_experiments(), data2=cct_experiments())
def test_streaming_merge_matches_in_memory_merge(data, data2):
    """merge_rank_files (bounded-memory, mmap store) vs merge_experiments
    (all in RAM): same union CCT, same Eq. 1/2 values, same summary
    statistics, byte-identical views."""
    ranks = []
    for i, (cct, model, metrics) in enumerate((data, data2, data)):
        ranks.append(Experiment(f"r{i}", metrics, model, cct))
    with tempfile.TemporaryDirectory() as tmp:
        paths = []
        for i, exp in enumerate(ranks):
            path = os.path.join(tmp, f"rank{i}.rpdb")
            database.save(exp, path)
            paths.append(path)
        loaded = [database.load(p) for p in paths]
        reference = merge_experiments(loaded, name="merged", summarize="all")
        merge_rank_files(paths, os.path.join(tmp, "m.rpstore"),
                         name="merged", summarize="all")
        streamed = database.load(os.path.join(tmp, "m.rpstore"))
        try:
            assert _node_values(reference) == _node_values(streamed)
            assert _renders(reference) == _renders(streamed)
            assert streamed.nranks == 3
            # per-rank vectors match what each input contributed
            ref_nodes = list(reference.cct.walk())
            st_nodes = list(streamed.cct.walk())
            for rn, sn in zip(ref_nodes[:25], st_nodes[:25]):
                for mid in range(NUM_METRICS):
                    name = reference.metrics.by_id(mid).name
                    a = reference.rank_vector(rn, name)
                    b = streamed.rank_vector(sn, name)
                    assert np.array_equal(a, b)
        finally:
            streamed.close()

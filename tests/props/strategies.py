"""Hypothesis strategies for property-based testing.

The central strategy builds *random canonical CCTs* directly through the
tree API: random call chains over a small procedure pool (repeats create
recursion), random loop nests, random statements with random raw costs.
This exercises attribution, view construction and serialization over a
far wider class of shapes than the hand-built workloads.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.attribution import attribute
from repro.core.cct import CCT, CCTNode
from repro.hpcstruct.model import StructureModel

__all__ = [
    "cct_experiments",
    "metric_values",
    "NUM_METRICS",
    "derived_formulas",
    "hot_thresholds",
    "view_kind_names",
    "server_render_params",
]

NUM_METRICS = 2
_POOL_SIZE = 4


def _make_structure() -> tuple[StructureModel, list]:
    model = StructureModel("prop")
    lm = model.add_load_module("prop.x")
    file_scope = model.add_file(lm, "prop.c")
    procs = [
        model.add_procedure(file_scope, f"p{i}", 10 * (i + 1), 10 * (i + 1) + 9)
        for i in range(_POOL_SIZE)
    ]
    return model, procs


@st.composite
def _subtree(draw, node: CCTNode, procs, depth: int) -> None:
    """Recursively grow a random region inside a frame or loop scope."""
    n_children = draw(st.integers(min_value=0, max_value=3 if depth > 0 else 2))
    proc = node.procedure
    base_line = proc.location.line if proc is not None else 0
    for _ in range(n_children):
        kind = draw(st.sampled_from(["stmt", "call", "loop"]))
        if kind == "stmt" or depth == 0:
            line = base_line + draw(st.integers(1, 8))
            stmt = node.ensure_statement(line, struct=proc)
            stmt.add_raw(draw(metric_values()))
        elif kind == "call":
            line = base_line + draw(st.integers(1, 8))
            site = node.ensure_call_site(line, struct=proc)
            if draw(st.booleans()):
                site.add_raw(draw(metric_values()))
            callee = draw(st.sampled_from(procs))
            frame = site.ensure_frame(callee)
            draw(_subtree(frame, procs, depth - 1))
        else:
            # a loop scope: reuse the procedure's line space deterministically
            loop_struct = _ensure_loop_struct(proc, base_line + draw(st.integers(1, 4)))
            loop = node.ensure_loop(loop_struct)
            draw(_subtree(loop, procs, depth - 1))


def _ensure_loop_struct(proc, line):
    from repro.hpcstruct.model import SourceLocation, StructKind, StructureNode

    key = (StructKind.LOOP.value, f"loop@{line}", proc.location.file, line)
    existing = proc.child_by_key(key)
    if existing is not None:
        return existing
    return StructureNode(
        StructKind.LOOP,
        name=f"loop@{line}",
        location=SourceLocation(file=proc.location.file, line=line,
                                end_line=line + 1),
        parent=proc,
    )


@st.composite
def metric_values(draw):
    """A sparse raw cost vector over NUM_METRICS metrics."""
    out = {}
    for mid in range(NUM_METRICS):
        if draw(st.booleans()):
            out[mid] = draw(
                st.floats(min_value=1.0, max_value=1000.0,
                          allow_nan=False, allow_infinity=False)
            )
    return out


# --------------------------------------------------------------------- #
# analysis-server operation parameters (the stateful equivalence suite)
# --------------------------------------------------------------------- #
@st.composite
def derived_formulas(draw, num_metrics: int = 1):
    """A valid derived-metric formula over the first *num_metrics* columns.

    Shapes cover the grammar's interesting corners: plain arithmetic,
    functions, division (including by a column that may be zero — the
    language defines x/0 == 0), and references to previously *derived*
    columns (composition)."""
    mid = draw(st.integers(0, max(0, num_metrics - 1)))
    a = draw(st.integers(1, 9))
    b = draw(st.integers(0, 9))
    template = draw(st.sampled_from([
        "{a} * ${mid} + {b}",
        "${mid} / {a}",
        "${mid} - {b}",
        "sqrt(abs(${mid}))",
        "max(${mid}, {b})",
        "min(${mid}, {a} * {b})",
        "${mid} / (${mid} + {b})",
        "log(${mid} + {a})",
    ]))
    return template.format(a=a, b=b, mid=mid)


def hot_thresholds():
    """Valid Eq. 3 thresholds, biased toward the paper's 50% default."""
    return st.one_of(
        st.just(0.5),
        st.floats(min_value=0.05, max_value=1.0,
                  allow_nan=False, allow_infinity=False),
    )


def view_kind_names():
    return st.sampled_from(["cct", "callers", "flat"])


@st.composite
def server_render_params(draw):
    """A render request body minus the metric column (drawn separately,
    since valid metric names depend on the session's mutation history)."""
    params: dict = {"view": draw(view_kind_names())}
    if draw(st.booleans()):
        params["depth"] = draw(st.integers(0, 6))
    if draw(st.booleans()):
        params["max_rows"] = draw(st.integers(1, 80))
    if draw(st.booleans()):
        params["descending"] = draw(st.booleans())
    if draw(st.booleans()):
        params["hot_path"] = True
        if draw(st.booleans()):
            params["threshold"] = draw(hot_thresholds())
    return params


@st.composite
def cct_experiments(draw):
    """A random attributed CCT plus its structure model and metric table."""
    from repro.core.metrics import MetricTable

    model, procs = _make_structure()
    cct = CCT()
    n_roots = draw(st.integers(min_value=1, max_value=2))
    for _ in range(n_roots):
        entry = draw(st.sampled_from(procs))
        frame = cct.root.ensure_frame(entry)
        draw(_subtree(frame, procs, depth=draw(st.integers(1, 4))))
    attribute(cct)
    metrics = MetricTable()
    for mid in range(NUM_METRICS):
        metrics.add(f"m{mid}", unit="units")
    return cct, model, metrics

"""Property-based tests of view construction over random CCTs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.callers import CallersView
from repro.core.ccview import CallingContextView
from repro.core.flat import FlatView
from repro.core.metrics import MetricFlavor, MetricSpec, total
from repro.core.views import NodeCategory
from tests.props.strategies import NUM_METRICS, cct_experiments


@settings(max_examples=40, deadline=None)
@given(data=cct_experiments())
def test_callers_and_flat_agree_per_procedure(data):
    """The paper's consistency claim (Sec. IV-B): a procedure's inclusive
    cost 'is consistently the same' in the Callers View and Flat View."""
    cct, _model, metrics = data
    callers = {r.name: r for r in CallersView(cct, metrics).roots}
    flat = FlatView(cct, metrics)
    flat_procs = {
        r.name: r
        for file_row in flat.roots
        for r in file_row.children
        if r.category is NodeCategory.PROCEDURE
    }
    assert set(callers) == set(flat_procs)
    for name, caller_row in callers.items():
        flat_row = flat_procs[name]
        for mid in range(NUM_METRICS):
            assert caller_row.inclusive.get(mid, 0.0) == pytest.approx(
                flat_row.inclusive.get(mid, 0.0)
            )
            assert caller_row.exclusive.get(mid, 0.0) == pytest.approx(
                flat_row.exclusive.get(mid, 0.0)
            )


@settings(max_examples=40, deadline=None)
@given(data=cct_experiments())
def test_callers_exclusive_totals_bounded_and_exact_without_recursion(data):
    """Top-level Callers View exclusives sum to at most the execution
    total (nested recursive instances are deliberately excluded by the
    exposed-instance rule — Figure 2 shows g at 4 of its 5 raw units),
    with equality exactly when no procedure recurses."""
    from repro.core.attribution import exposed_instances

    cct, _model, metrics = data
    view = CallersView(cct, metrics)
    view_total = total(r.exclusive for r in view.roots)
    raw_total = total(node.raw for node in cct.walk())
    by_proc = cct.frames_by_procedure()
    has_recursion = any(
        len(exposed_instances(frames)) != len(frames)
        for frames in by_proc.values()
    )
    for mid in range(NUM_METRICS):
        assert view_total.get(mid, 0.0) <= raw_total.get(mid, 0.0) + 1e-9
        if not has_recursion:
            assert view_total.get(mid, 0.0) == pytest.approx(
                raw_total.get(mid, 0.0)
            )


@settings(max_examples=40, deadline=None)
@given(data=cct_experiments())
def test_ccview_fused_preserves_subtree_costs(data):
    """Fusing call-site/callee lines must not change inclusive costs of
    the visible rows' union."""
    cct, _model, metrics = data
    fused_roots = CallingContextView(cct, metrics, fused=True).roots
    plain_roots = CallingContextView(cct, metrics, fused=False).roots
    fused_total = total(r.inclusive for r in fused_roots)
    plain_total = total(r.inclusive for r in plain_roots)
    for mid in range(NUM_METRICS):
        assert fused_total.get(mid, 0.0) == pytest.approx(
            plain_total.get(mid, 0.0)
        )


@settings(max_examples=40, deadline=None)
@given(data=cct_experiments())
def test_ccview_never_longer_than_unfused(data):
    """Fusion can only shorten the rendered tree."""
    cct, _model, metrics = data

    def count(view):
        return sum(1 for r in view.roots for _ in r.walk())

    fused = count(CallingContextView(cct, metrics, fused=True))
    plain = count(CallingContextView(cct, metrics, fused=False))
    assert fused <= plain


@settings(max_examples=40, deadline=None)
@given(data=cct_experiments())
def test_flat_view_files_cover_everything(data):
    """Flat View file rows' exclusive values equal the sum of their
    procedures' exclusives (the Figure 2c rule file2 = g:4 + h:4), and
    never exceed the execution total."""
    cct, _model, metrics = data
    flat = FlatView(cct, metrics)
    raw_total = total(node.raw for node in cct.walk())
    view_total = total(r.exclusive for r in flat.roots)
    for file_row in flat.roots:
        children_total = total(c.exclusive for c in file_row.children)
        for mid in range(NUM_METRICS):
            assert file_row.exclusive.get(mid, 0.0) == pytest.approx(
                children_total.get(mid, 0.0)
            )
    for mid in range(NUM_METRICS):
        assert view_total.get(mid, 0.0) <= raw_total.get(mid, 0.0) + 1e-9


@settings(max_examples=40, deadline=None)
@given(data=cct_experiments())
def test_flattening_preserves_leaf_reachability(data):
    """Repeated flattening terminates with all-leaf roots and never loses
    the heaviest leaf."""
    cct, _model, metrics = data
    flat = FlatView(cct, metrics)
    spec = MetricSpec(0, MetricFlavor.INCLUSIVE)
    leaves_before = {
        id(n) for r in flat.roots for n in r.walk() if n.is_leaf
    }
    for _ in range(30):
        flat.flatten()
    rows = flat.current_roots()
    assert all(r.is_leaf for r in rows)
    assert {id(r) for r in rows} <= leaves_before
    if leaves_before:
        assert rows, "leaves must survive flattening"


@settings(max_examples=40, deadline=None)
@given(data=cct_experiments())
def test_sorted_children_ordering(data):
    cct, _model, metrics = data
    view = CallingContextView(cct, metrics)
    spec = MetricSpec(0, MetricFlavor.INCLUSIVE)
    rows = view.sorted_children(None, spec)
    values = [view.value(r, spec) for r in rows]
    assert values == sorted(values, reverse=True)

"""Fuzzing the database loaders: garbage in, DatabaseError out — never
a crash, hang, or silent misparse."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import DatabaseError
from repro.hpcprof import binio, xmlio
from repro.hpcprof.experiment import Experiment
from repro.sim.workloads import fig1


@pytest.fixture(scope="module")
def blob():
    return binio.dumps_binary(Experiment.from_program(fig1.build()))


class TestBinaryFuzz:
    @settings(max_examples=100, deadline=None)
    @given(data=st.binary(min_size=0, max_size=256))
    def test_random_bytes_never_crash(self, data):
        try:
            binio.loads_binary(data)
        except DatabaseError:
            pass  # the only acceptable failure mode

    @settings(max_examples=100, deadline=None)
    @given(offset=st.integers(min_value=6, max_value=2000),
           value=st.integers(min_value=0, max_value=255))
    def test_single_byte_corruption(self, blob, offset, value):
        """Flip one byte anywhere: load must either succeed (the byte was
        a metric value or harmless string char) or raise DatabaseError —
        never an unhandled exception."""
        if offset >= len(blob):
            offset = offset % len(blob)
        mutated = blob[:offset] + bytes([value]) + blob[offset + 1:]
        try:
            binio.loads_binary(mutated)
        except DatabaseError:
            pass
        except (UnicodeDecodeError, ValueError, KeyError, IndexError,
                MemoryError, OverflowError) as exc:
            pytest.fail(f"leaked {type(exc).__name__} at offset {offset}")

    @settings(max_examples=50, deadline=None)
    @given(cut=st.integers(min_value=0, max_value=4000))
    def test_any_truncation(self, blob, cut):
        if cut >= len(blob):
            return
        with pytest.raises(DatabaseError):
            binio.loads_binary(blob[:cut])


class TestXmlFuzz:
    @settings(max_examples=100, deadline=None)
    @given(data=st.text(max_size=200))
    def test_random_text_never_crashes(self, data):
        try:
            xmlio.loads_xml(data.encode("utf-8"))
        except DatabaseError:
            pass

    @settings(max_examples=50, deadline=None)
    @given(tag=st.sampled_from(["Metric", "S", "N", "M"]),
           attr=st.sampled_from(["i", "k", "v", "l", "s"]))
    def test_dropped_attributes(self, tag, attr):
        """Strip an attribute from every element of one kind: DatabaseError
        or success, never a raw TypeError/KeyError."""
        import re

        exp = Experiment.from_program(fig1.build())
        doc = xmlio.dumps_xml(exp).decode("utf-8")
        mutated = re.sub(
            rf'(<{tag}\b[^>]*?)\s{attr}="[^"]*"', r"\1", doc
        ).encode("utf-8")
        try:
            xmlio.loads_xml(mutated)
        except DatabaseError:
            pass
        except (TypeError, KeyError, AttributeError, ValueError) as exc:
            pytest.fail(f"leaked {type(exc).__name__} dropping {tag}@{attr}")

"""Property-based tests of metric attribution (Eqs. 1 & 2) and exposure."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.attribution import exposed_instances
from repro.core.cct import CCTKind
from repro.core.metrics import add_into, total
from tests.props.strategies import NUM_METRICS, cct_experiments


@settings(max_examples=60, deadline=None)
@given(data=cct_experiments())
def test_root_inclusive_equals_total_raw(data):
    """Eq. 2: the root's inclusive value is the sum of all raw costs."""
    cct, _model, _metrics = data
    raw_total = total(node.raw for node in cct.walk())
    for mid in range(NUM_METRICS):
        assert cct.root.inclusive.get(mid, 0.0) == pytest.approx(
            raw_total.get(mid, 0.0)
        )


@settings(max_examples=60, deadline=None)
@given(data=cct_experiments())
def test_inclusive_is_recursive_sum(data):
    """Eq. 2 pointwise: incl(x) = raw(x) + sum of children's inclusive."""
    cct, _m, _t = data
    for node in cct.walk():
        expected = dict(node.raw)
        for child in node.children:
            add_into(expected, child.inclusive)
        for mid in range(NUM_METRICS):
            assert node.inclusive.get(mid, 0.0) == pytest.approx(
                expected.get(mid, 0.0)
            )


@settings(max_examples=60, deadline=None)
@given(data=cct_experiments())
def test_frame_exclusives_partition_total(data):
    """Every raw cost lands in exactly one frame's exclusive value."""
    cct, _m, _t = data
    frame_sum = total(f.exclusive for f in cct.frames())
    raw_total = total(node.raw for node in cct.walk())
    for mid in range(NUM_METRICS):
        assert frame_sum.get(mid, 0.0) == pytest.approx(raw_total.get(mid, 0.0))


@settings(max_examples=60, deadline=None)
@given(data=cct_experiments())
def test_exclusive_bounded_by_inclusive(data):
    cct, _m, _t = data
    for node in cct.walk():
        for mid, value in node.exclusive.items():
            assert value <= node.inclusive.get(mid, 0.0) + 1e-9


@settings(max_examples=60, deadline=None)
@given(data=cct_experiments())
def test_exposed_instances_form_an_antichain(data):
    """No exposed instance is an ancestor of another; non-exposed
    instances all sit under some exposed one."""
    cct, _m, _t = data
    for _proc, frames in cct.frames_by_procedure().items():
        exposed = exposed_instances(frames)
        exposed_uids = {n.uid for n in exposed}
        for node in exposed:
            assert not any(a.uid in exposed_uids for a in node.ancestors())
        for node in frames:
            if node.uid not in exposed_uids:
                assert any(a.uid in exposed_uids for a in node.ancestors())


@settings(max_examples=60, deadline=None)
@given(data=cct_experiments())
def test_exposed_sum_never_exceeds_plain_sum(data):
    cct, _m, _t = data
    for _proc, frames in cct.frames_by_procedure().items():
        exposed = exposed_instances(frames)
        exp_sum = total(n.inclusive for n in exposed)
        plain_sum = total(n.inclusive for n in frames)
        for mid in range(NUM_METRICS):
            assert exp_sum.get(mid, 0.0) <= plain_sum.get(mid, 0.0) + 1e-9


@settings(max_examples=60, deadline=None)
@given(data=cct_experiments())
def test_loop_exclusive_counts_only_direct_statements(data):
    """Eq. 1 case 2: a loop's exclusive value is its raw plus its direct
    statement/call-site children's raw — never nested loops."""
    cct, _m, _t = data
    for node in cct.walk():
        if node.kind is not CCTKind.LOOP:
            continue
        expected = dict(node.raw)
        for child in node.children:
            if child.kind in (CCTKind.STATEMENT, CCTKind.CALL_SITE):
                add_into(expected, child.raw)
        for mid in range(NUM_METRICS):
            assert node.exclusive.get(mid, 0.0) == pytest.approx(
                expected.get(mid, 0.0)
            )

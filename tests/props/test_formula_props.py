"""Property-based tests of the derived-metric formula language."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.derived import evaluate, formula_columns, parse_formula

# ---------------------------------------------------------------------- #
# random expression generator: builds (source-string, reference-fn) pairs
# ---------------------------------------------------------------------- #
_numbers = st.floats(min_value=0.1, max_value=100.0, allow_nan=False)
_columns = st.integers(min_value=0, max_value=5)


@st.composite
def expressions(draw, depth=3):
    """A random formula plus a reference evaluator."""
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            n = draw(_numbers)
            return f"{n!r}", (lambda cols, n=n: n)
        c = draw(_columns)
        return f"${c}", (lambda cols, c=c: cols.get(c, 0.0))
    kind = draw(st.sampled_from(["+", "-", "*", "/", "neg", "func"]))
    if kind == "neg":
        src, fn = draw(expressions(depth=depth - 1))
        return f"-({src})", (lambda cols, fn=fn: -fn(cols))
    if kind == "func":
        name = draw(st.sampled_from(["abs", "sqrt", "min", "max"]))
        a_src, a_fn = draw(expressions(depth=depth - 1))
        if name in ("min", "max"):
            b_src, b_fn = draw(expressions(depth=depth - 1))
            py = min if name == "min" else max
            return (
                f"{name}({a_src}, {b_src})",
                lambda cols, a=a_fn, b=b_fn, py=py: float(py(a(cols), b(cols))),
            )
        if name == "abs":
            return f"abs({a_src})", (lambda cols, a=a_fn: abs(a(cols)))
        return (
            f"sqrt({a_src})",
            lambda cols, a=a_fn: math.sqrt(a(cols)) if a(cols) >= 0 else 0.0,
        )
    a_src, a_fn = draw(expressions(depth=depth - 1))
    b_src, b_fn = draw(expressions(depth=depth - 1))
    if kind == "+":
        return f"({a_src} + {b_src})", (lambda cols: a_fn(cols) + b_fn(cols))
    if kind == "-":
        return f"({a_src} - {b_src})", (lambda cols: a_fn(cols) - b_fn(cols))
    if kind == "*":
        return f"({a_src} * {b_src})", (lambda cols: a_fn(cols) * b_fn(cols))
    return (
        f"({a_src} / {b_src})",
        lambda cols: a_fn(cols) / b_fn(cols) if b_fn(cols) != 0.0 else 0.0,
    )


@st.composite
def column_values(draw):
    return {
        mid: draw(st.floats(min_value=0.0, max_value=1000.0, allow_nan=False))
        for mid in range(6)
    }


class TestFormulaProperties:
    @settings(max_examples=150, deadline=None)
    @given(expr=expressions(), cols=column_values())
    def test_evaluation_matches_reference(self, expr, cols):
        src, reference = expr
        got = evaluate(src, resolver=lambda mid: cols.get(mid, 0.0))
        want = reference(cols)
        if math.isfinite(want):
            assert got == pytest.approx(want, rel=1e-9, abs=1e-9)

    @settings(max_examples=100, deadline=None)
    @given(expr=expressions())
    def test_parse_is_deterministic_and_cached(self, expr):
        src, _ = expr
        assert parse_formula(src) is parse_formula(src)

    @settings(max_examples=100, deadline=None)
    @given(expr=expressions(), cols=column_values())
    def test_columns_are_sufficient(self, expr, cols):
        """Zeroing every unreferenced column never changes the result."""
        src, _ = expr
        used = formula_columns(src)
        full = evaluate(src, resolver=lambda mid: cols.get(mid, 0.0))
        masked = evaluate(
            src,
            resolver=lambda mid: cols.get(mid, 0.0) if mid in used else 0.0,
        )
        assert masked == pytest.approx(full, rel=1e-9, abs=1e-9)

    @settings(max_examples=100, deadline=None)
    @given(cols=column_values(),
           a=st.floats(min_value=0.1, max_value=50, allow_nan=False),
           b=st.floats(min_value=0.1, max_value=50, allow_nan=False))
    def test_linearity_of_linear_formulas(self, cols, a, b):
        """a*$0 + b*$1 evaluates linearly — the reason linear derived
        metrics commute with view aggregation."""
        src = f"{a!r} * $0 + {b!r} * $1"
        got = evaluate(src, resolver=lambda mid: cols.get(mid, 0.0))
        assert got == pytest.approx(a * cols[0] + b * cols[1], rel=1e-9)

"""Differential properties of the query engine across storage backends.

The query language promises backend uniformity: the same query over the
same profile must return *bit-identical* results whether the profile is
an in-memory experiment, a ``.rpdb`` binary round-trip, or an
mmap-backed ``.rpstore`` column store.  Hypothesis drives random
canonical CCTs through all three backends at once and compares
``to_rows()`` / ``to_columns()`` with exact float equality.  A second
group pins language invariants (spec round-trips, operator algebra) on
the same random trees.
"""

from __future__ import annotations

import os
import tempfile

from hypothesis import given, settings

from repro.core.store import create_store
from repro.hpcprof import binio, database
from repro.hpcprof.experiment import Experiment
from repro.query import Query, query, run_query
from tests.props.strategies import cct_experiments

#: query shapes covering the operators: match, any-depth, predicate
#: filter, prune, squash, groupby, sort + limit
QUERIES = [
    query("**/*"),
    query("p0 / ** / *"),
    query('** / {"category": "loop"}'),
    query("**/*").filter("m0.exclusive >= 5%"),
    query("**/*").filter("m1.inclusive > 10"),
    query("**/*").prune("p1"),
    query("** / p*").squash(),
    query("**/*").groupby("category"),
    query("**/*").groupby("name").sort("m0", "exclusive"),
    query("**/*").sort("m0").limit(5),
    query("** / *").select(metrics=["m1"], flavors=("raw", "exclusive")),
]


def _fingerprint(result):
    # exact float bits: float.hex() distinguishes every representable value
    cols = result.to_columns()
    return {
        k: [v.hex() if isinstance(v, float) else v for v in vals]
        for k, vals in cols.items()
    }, [
        tuple(v.hex() if isinstance(v, float) else v for v in row)
        for row in result.to_rows()
    ], result.truncated


@settings(max_examples=15, deadline=None)
@given(data=cct_experiments())
def test_backends_bit_identical(data):
    """dict/in-memory vs .rpdb round-trip vs mmap store: same bytes."""
    cct, model, metrics = data
    exp = Experiment("prop", metrics, model, cct)
    rpdb_exp = database.loads(binio.dumps_binary(exp))
    with tempfile.TemporaryDirectory() as tmp:
        store_exp = create_store(exp, os.path.join(tmp, "s.rpstore"))
        try:
            for q in QUERIES:
                want = _fingerprint(run_query(q, exp))
                assert _fingerprint(run_query(q, rpdb_exp)) == want
                assert _fingerprint(run_query(q, store_exp)) == want
        finally:
            store_exp.close()


@settings(max_examples=15, deadline=None)
@given(data=cct_experiments())
def test_spec_round_trip_preserves_results(data):
    """Query -> to_spec() -> from_spec() evaluates identically."""
    cct, model, metrics = data
    exp = Experiment("prop", metrics, model, cct)
    for q in QUERIES:
        rebuilt = Query.from_spec(q.to_spec())
        assert _fingerprint(run_query(rebuilt, exp)) == \
            _fingerprint(run_query(q, exp))


@settings(max_examples=15, deadline=None)
@given(data=cct_experiments())
def test_operator_invariants(data):
    """Language algebra on random trees."""
    cct, model, metrics = data
    exp = Experiment("prop", metrics, model, cct)

    # match-all returns every scope (the root row included), preorder
    everything = run_query(query("**/*"), exp)
    assert everything.row_count == sum(1 for _ in exp.cct.walk())

    # a filter never grows the result, and the survivors are a sub-
    # sequence of the unfiltered preorder rows
    filtered = run_query(query("**/*").filter("m0.exclusive > 0"), exp)
    assert filtered.row_count <= everything.row_count
    rows = list(everything.rows)
    it = iter(rows)
    assert all(r in it for r in filtered.rows)

    # limit truncates and reports exactly what it dropped
    limited = run_query(query("**/*").limit(3), exp)
    assert limited.row_count == min(3, everything.row_count)
    assert limited.truncated == everything.row_count - limited.row_count

    # groupby partitions: group values sum to the ungrouped column sums
    grouped = run_query(query("**/*").groupby("category"), exp)
    if everything.row_count:
        for j, label in enumerate(everything.labels):
            if "(E)" not in label:
                continue
            whole = sum(everything.values[:, j])
            parts = sum(grouped.values[:, grouped.labels.index(label)])
            assert abs(whole - parts) <= 1e-9 * max(1.0, abs(whole))

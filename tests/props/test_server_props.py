"""Stateful equivalence: the cached server == a fresh ViewerSession.

A :class:`RuleBasedStateMachine` drives one server session through any
interleaving of the paper's operations — sort, hot-path expansion,
flatten/unflatten, derived-metric definition, render — while recording
the mutation history.  After every render (and hot path), the same
history is replayed onto a *fresh, uncached* :class:`ViewerSession`
built from scratch, and the outputs must be byte-identical.

This is the cache-correctness theorem in executable form: if a cache
key failed to capture something a render depends on, or an invalidation
were missed after a mutation, some interleaving found here would return
a stale render that differs from the fresh replay.  The cache is sized
small (8 entries) so eviction and re-population paths run constantly.
"""

from __future__ import annotations

import json

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, rule

from repro.core.metrics import MetricFlavor
from repro.core.views import ViewKind
from repro.hpcprof.experiment import Experiment
from repro.server import AnalysisApp
from repro.server.sessions import hot_path_snapshot, render_snapshot
from repro.sim.workloads import fig1
from repro.viewer.session import ViewerSession

from .strategies import (
    derived_formulas,
    hot_thresholds,
    server_render_params,
    view_kind_names,
)

from hypothesis import strategies as st

_KINDS = {
    "cct": ViewKind.CALLING_CONTEXT,
    "callers": ViewKind.CALLERS,
    "flat": ViewKind.FLAT,
}
_FLAVORS = {
    "inclusive": MetricFlavor.INCLUSIVE,
    "exclusive": MetricFlavor.EXCLUSIVE,
}


class CachedServerEquivalence(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.app = AnalysisApp(cache_size=8)
        status, payload = self.app.handle(
            "POST", "/sessions", b'{"workload": "fig1"}'
        )
        assert status == 201
        self.sid = payload["session"]["id"]
        #: render-visible mutations, in order, for the fresh replay
        self.mutations: list[tuple] = []
        #: the session's last-accepted sort op (metric, flavor, descending)
        self.sort: tuple[str, str, bool] | None = None
        self.metric_names = ["cycles"]

    # ------------------------------------------------------------------ #
    def _post(self, tail: str, body: dict | None = None) -> tuple[int, dict]:
        raw = json.dumps(body).encode() if body is not None else b""
        return self.app.handle("POST", f"/sessions/{self.sid}/{tail}", raw)

    def _fresh_session(self) -> ViewerSession:
        """An uncached ViewerSession with the mutation history replayed."""
        session = ViewerSession(Experiment.from_program(fig1.build()))
        for mutation in self.mutations:
            if mutation[0] == "derived":
                session.experiment.add_derived_metric(mutation[1], mutation[2])
            elif mutation[0] == "flatten":
                session.flatten()
            else:
                session.unflatten()
        return session

    def _effective(self, body: dict) -> tuple[str | None, MetricFlavor, bool]:
        """Mirror the server's sort-resolution rules for the replay."""
        metric = body.get("metric")
        if body.get("flavor") is not None:
            flavor = _FLAVORS[body["flavor"]]
        elif metric is None and self.sort is not None:
            flavor = _FLAVORS[self.sort[1]]
        else:
            flavor = MetricFlavor.INCLUSIVE
        if metric is None and self.sort is not None:
            metric = self.sort[0]
        descending = body.get("descending")
        if descending is None:
            descending = self.sort[2] if self.sort is not None else True
        return metric, flavor, descending

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #
    @rule(idx=st.integers(0, 7),
          flavor=st.sampled_from(["inclusive", "exclusive"]),
          descending=st.booleans())
    def sort(self, idx: int, flavor: str, descending: bool) -> None:
        metric = self.metric_names[idx % len(self.metric_names)]
        status, payload = self._post(
            "sort",
            {"metric": metric, "flavor": flavor, "descending": descending},
        )
        assert status == 200, payload
        self.sort = (metric, flavor, descending)

    @rule(formula=derived_formulas(num_metrics=1))
    def derive(self, formula: str) -> None:
        name = f"d{len(self.metric_names)}"
        status, payload = self._post(
            "metrics", {"name": name, "formula": formula}
        )
        assert status == 201, payload
        self.mutations.append(("derived", name, formula))
        self.metric_names.append(name)

    @rule(a=st.integers(1, 5))
    def derive_composed(self, a: int) -> None:
        """A derived metric referencing the latest (possibly derived) column."""
        last_mid = len(self.metric_names) - 1
        formula = f"{a} * ${last_mid} + $0"
        name = f"d{len(self.metric_names)}"
        status, payload = self._post(
            "metrics", {"name": name, "formula": formula}
        )
        assert status == 201, payload
        self.mutations.append(("derived", name, formula))
        self.metric_names.append(name)

    @rule()
    def flatten(self) -> None:
        status, payload = self._post("flatten")
        assert status == 200, payload
        self.mutations.append(("flatten",))

    @rule()
    def unflatten(self) -> None:
        status, payload = self._post("unflatten")
        assert status == 200, payload
        self.mutations.append(("unflatten",))

    # ------------------------------------------------------------------ #
    # observations — each one is an equivalence check
    # ------------------------------------------------------------------ #
    @rule(params=server_render_params(),
          midx=st.integers(0, 7),
          explicit_metric=st.booleans(),
          flavor=st.sampled_from([None, "inclusive", "exclusive"]))
    def render(self, params: dict, midx: int,
               explicit_metric: bool, flavor: str | None) -> None:
        body = dict(params)
        if explicit_metric:
            body["metric"] = self.metric_names[midx % len(self.metric_names)]
        if flavor is not None:
            body["flavor"] = flavor
        status, payload = self._post("render", body)
        assert status == 200, payload

        metric, eff_flavor, descending = self._effective(body)
        expected = render_snapshot(
            self._fresh_session(),
            _KINDS[body["view"]],
            metric=metric,
            flavor=eff_flavor,
            descending=descending,
            depth=body.get("depth", 3),
            hot_path=body.get("hot_path", False),
            threshold=body.get("threshold"),
            max_rows=body.get("max_rows", 60),
        )
        assert payload["text"] == expected["text"]
        assert payload.get("hot_path") == expected.get("hot_path")

    @rule(kind=view_kind_names(),
          threshold=st.none() | hot_thresholds(),
          midx=st.integers(0, 7),
          explicit_metric=st.booleans())
    def hotpath(self, kind: str, threshold: float | None,
                midx: int, explicit_metric: bool) -> None:
        body: dict = {"view": kind}
        if threshold is not None:
            body["threshold"] = threshold
        if explicit_metric:
            body["metric"] = self.metric_names[midx % len(self.metric_names)]
        status, payload = self._post("hotpath", body)
        assert status == 200, payload

        metric = body.get("metric")
        if metric is None and self.sort is not None:
            metric = self.sort[0]
        expected = hot_path_snapshot(
            self._fresh_session(), _KINDS[kind],
            metric=metric, threshold=threshold,
        )
        assert payload["path"] == expected["path"]
        assert payload["values"] == expected["values"]
        assert payload["hotspot"] == expected["hotspot"]


CachedServerEquivalence.TestCase.settings = settings(
    max_examples=25, stateful_step_count=10, deadline=None
)
TestCachedServerEquivalence = CachedServerEquivalence.TestCase

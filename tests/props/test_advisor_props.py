"""Property-based sanity of the tuning advisor over random trees."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.advisor import Advisor
from repro.hpcprof.experiment import Experiment
from repro.hpcrun.counters import CYCLES
from tests.props.strategies import cct_experiments


def experiment_of(data):
    cct, model, metrics = data
    # the advisor keys rules off standard counter names; rename metric 0
    if CYCLES not in metrics:
        renamed = type(metrics)()
        renamed.add(CYCLES, unit="cycles")
        for desc in list(metrics)[1:]:
            renamed.add(desc.name, unit=desc.unit)
        metrics = renamed
    return Experiment("prop", metrics, model, cct)


class TestAdvisorProps:
    @settings(max_examples=25, deadline=None)
    @given(data=cct_experiments())
    def test_never_crashes_and_respects_min_impact(self, data):
        exp = experiment_of(data)
        advisor = Advisor(exp)
        suggestions = advisor.advise()
        loop_rules = {"memory-bound-loop", "low-efficiency-compute",
                      "already-tight"}
        for s in suggestions:
            assert s.evidence, "every suggestion must carry evidence"
            if s.rule in loop_rules:
                assert s.impact >= advisor.min_impact - 1e-12

    @settings(max_examples=25, deadline=None)
    @given(data=cct_experiments())
    def test_sorted_by_impact(self, data):
        suggestions = Advisor(experiment_of(data)).advise()
        impacts = [s.impact for s in suggestions]
        assert impacts == sorted(impacts, reverse=True)

    @settings(max_examples=25, deadline=None)
    @given(data=cct_experiments())
    def test_at_most_one_loop_rule_per_scope(self, data):
        suggestions = Advisor(experiment_of(data)).advise()
        loop_rules = {"memory-bound-loop", "low-efficiency-compute",
                      "already-tight"}
        seen: set[str] = set()
        for s in suggestions:
            if s.rule in loop_rules:
                key = s.location
                assert key not in seen, "rules must be mutually exclusive"
                seen.add(key)

    @settings(max_examples=15, deadline=None)
    @given(data=cct_experiments())
    def test_describe_always_renders(self, data):
        for s in Advisor(experiment_of(data)).advise():
            text = s.describe()
            assert s.rule in text and "evidence:" in text

"""Property-based tests: merge algebra, databases, hot path, summaries."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hotpath import hot_path_cct
from repro.core.metrics import total
from repro.hpcprof import binio, xmlio
from repro.hpcprof.experiment import Experiment
from repro.hpcprof.merge import merge_ccts
from repro.hpcprof.summarize import Moments
from tests.props.strategies import NUM_METRICS, cct_experiments


def snapshot(cct):
    out = []

    def visit(node, depth):
        out.append((
            depth, node.kind.value,
            node.struct.name if node.struct is not None else None,
            node.line,
            tuple(sorted((k, round(v, 6)) for k, v in node.raw.items())),
            tuple(sorted((k, round(v, 6)) for k, v in node.inclusive.items())),
            tuple(sorted((k, round(v, 6)) for k, v in node.exclusive.items())),
        ))
        for child in sorted(node.children, key=lambda c: c.key):
            visit(child, depth + 1)

    visit(cct.root, 0)
    return tuple(out)


class TestMergeAlgebra:
    @settings(max_examples=30, deadline=None)
    @given(a=cct_experiments(), b=cct_experiments())
    def test_merge_totals_add(self, a, b):
        # both strategies build against their own structure models; merge
        # requires a shared model, so merge a tree with itself and with b's
        # re-rooted copy is out of scope — totals additivity uses a+a.
        cct_a, _m, _t = a
        merged = merge_ccts([cct_a, cct_a])
        for mid in range(NUM_METRICS):
            assert merged.root.inclusive.get(mid, 0.0) == pytest.approx(
                2 * cct_a.root.inclusive.get(mid, 0.0)
            )

    @settings(max_examples=30, deadline=None)
    @given(a=cct_experiments(), n=st.integers(min_value=1, max_value=4))
    def test_merge_idempotent_shape(self, a, n):
        cct_a, _m, _t = a
        merged = merge_ccts([cct_a] * n)
        assert len(merged) == len(cct_a)

    @settings(max_examples=30, deadline=None)
    @given(a=cct_experiments())
    def test_merge_associativity_with_self(self, a):
        cct_a, _m, _t = a
        left = merge_ccts([merge_ccts([cct_a, cct_a]), cct_a])
        flat = merge_ccts([cct_a, cct_a, cct_a])
        assert snapshot(left) == snapshot(flat)


class TestDatabaseRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(data=cct_experiments())
    def test_binary_round_trip_identity(self, data):
        cct, model, metrics = data
        exp = Experiment("prop", metrics, model, cct)
        loaded = binio.loads_binary(binio.dumps_binary(exp))
        assert snapshot(loaded.cct) == snapshot(exp.cct)

    @settings(max_examples=25, deadline=None)
    @given(data=cct_experiments())
    def test_xml_round_trip_identity(self, data):
        cct, model, metrics = data
        exp = Experiment("prop", metrics, model, cct)
        loaded = xmlio.loads_xml(xmlio.dumps_xml(exp))
        assert snapshot(loaded.cct) == snapshot(exp.cct)

    @settings(max_examples=25, deadline=None)
    @given(data=cct_experiments())
    def test_formats_agree(self, data):
        cct, model, metrics = data
        exp = Experiment("prop", metrics, model, cct)
        via_bin = binio.loads_binary(binio.dumps_binary(exp))
        via_xml = xmlio.loads_xml(xmlio.dumps_xml(exp))
        assert snapshot(via_bin.cct) == snapshot(via_xml.cct)


class TestHotPathProps:
    @settings(max_examples=40, deadline=None)
    @given(data=cct_experiments(),
           threshold=st.floats(min_value=0.05, max_value=1.0))
    def test_path_connected_and_noninflating(self, data, threshold):
        cct, _m, _t = data
        result = hot_path_cct(cct.root, mid=0, threshold=threshold)
        assert result.path[0] is cct.root
        for parent, child in zip(result.path, result.path[1:]):
            assert child in parent.children
        values = list(result.values)
        assert values == sorted(values, reverse=True)

    @settings(max_examples=40, deadline=None)
    @given(data=cct_experiments())
    def test_termination_condition(self, data):
        """At the hotspot, no child reaches the threshold share."""
        cct, _m, _t = data
        result = hot_path_cct(cct.root, mid=0, threshold=0.5)
        hotspot = result.hotspot
        value = result.hotspot_value
        if hotspot.children and value > 0:
            heaviest = max(
                c.inclusive.get(0, 0.0) for c in hotspot.children
            )
            assert heaviest < 0.5 * value

    @settings(max_examples=40, deadline=None)
    @given(data=cct_experiments(),
           t_low=st.floats(min_value=0.05, max_value=0.45),
           t_high=st.floats(min_value=0.55, max_value=1.0))
    def test_lower_threshold_never_shorter(self, data, t_low, t_high):
        cct, _m, _t = data
        low = hot_path_cct(cct.root, mid=0, threshold=t_low)
        high = hot_path_cct(cct.root, mid=0, threshold=t_high)
        assert len(low) >= len(high)


class TestMomentsProps:
    @settings(max_examples=80, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=40,
        ),
        split=st.integers(min_value=0, max_value=40),
    )
    def test_merge_equals_batch(self, values, split):
        split = min(split, len(values))
        a = Moments.of(values[:split])
        b = Moments.of(values[split:])
        a.merge(b)
        ref = Moments.of(values)
        assert a.count == ref.count
        assert a.mean == pytest.approx(ref.mean, rel=1e-9, abs=1e-6)
        assert a.stddev == pytest.approx(ref.stddev, rel=1e-6, abs=1e-6)
        assert a.minimum == ref.minimum and a.maximum == ref.maximum

    @settings(max_examples=60, deadline=None)
    @given(
        chunks=st.lists(
            st.lists(st.floats(min_value=0, max_value=1e3, allow_nan=False),
                     min_size=0, max_size=10),
            min_size=2, max_size=6,
        )
    )
    def test_merge_is_order_independent(self, chunks):
        import itertools

        forward = Moments()
        for chunk in chunks:
            forward.merge(Moments.of(chunk))
        backward = Moments()
        for chunk in reversed(chunks):
            backward.merge(Moments.of(chunk))
        assert forward.count == backward.count
        assert forward.mean == pytest.approx(backward.mean, abs=1e-6)
        assert forward.m2 == pytest.approx(backward.m2, rel=1e-6, abs=1e-6)

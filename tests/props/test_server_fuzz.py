"""Fuzzing the analysis server's request decoder and router.

Same contract as ``test_database_fuzz.py`` one layer up: garbage in,
structured 4xx JSON out — never a 5xx, an unhandled exception, or a
hung handler.  The full pipeline (method dispatch, path routing, body
decoding, field validation, domain-error translation) runs in-process
through :meth:`AnalysisApp.handle`, which is exactly the code the HTTP
shell calls per request.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.server import AnalysisApp

MAX_BODY = 4096


@pytest.fixture(scope="module")
def app():
    """One app with a live session; fuzz must not corrupt it either."""
    instance = AnalysisApp(max_body=MAX_BODY)
    status, payload = instance.handle(
        "POST", "/sessions", json.dumps({"workload": "fig1"}).encode()
    )
    assert status == 201
    return instance


SID = "s1"

_METHODS = st.sampled_from(["GET", "POST", "DELETE", "PUT", "PATCH", "HEAD"])

_PATHS = st.one_of(
    st.sampled_from([
        "/", "/stats", "/sessions", f"/sessions/{SID}",
        f"/sessions/{SID}/render", f"/sessions/{SID}/sort",
        f"/sessions/{SID}/hotpath", f"/sessions/{SID}/metrics",
        f"/sessions/{SID}/flatten", f"/sessions/{SID}/unflatten",
        "/sessions/sNOPE/render", "/sessions//render",
    ]),
    st.text(
        alphabet=st.characters(codec="utf-8", exclude_characters="\r\n"),
        max_size=40,
    ).map(lambda s: "/" + s),
)

_JSON_VALUES = st.recursive(
    st.one_of(
        st.none(), st.booleans(),
        st.integers(min_value=-(10 ** 12), max_value=10 ** 12),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=20),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=10,
)


def _no_internal_error(status: int, payload: dict) -> None:
    """The invariant every fuzz case asserts."""
    assert isinstance(payload, dict)
    assert 200 <= status < 500, (status, payload)
    if status >= 400:
        err = payload["error"]
        assert err["status"] == status
        assert isinstance(err["code"], str) and err["code"] != "internal"
        assert isinstance(err["message"], str)
    # whatever happened must be JSON-serializable for the wire
    json.dumps(payload)


class TestDecoderFuzz:
    @settings(max_examples=150, deadline=None)
    @given(data=st.binary(min_size=0, max_size=256))
    def test_random_bytes_body(self, app, data):
        status, payload = app.handle("POST", f"/sessions/{SID}/render", data)
        _no_internal_error(status, payload)

    @settings(max_examples=100, deadline=None)
    @given(cut=st.integers(min_value=0, max_value=200), data=st.data())
    def test_truncated_json(self, app, cut, data):
        body = json.dumps({
            "view": "cct", "metric": "cycles", "depth": 3,
            "hot_path": True, "threshold": 0.5, "max_rows": 10,
        }).encode()
        status, payload = app.handle(
            "POST", f"/sessions/{SID}/render", body[: cut % (len(body) + 1)]
        )
        _no_internal_error(status, payload)

    @settings(max_examples=150, deadline=None)
    @given(fields=st.dictionaries(
        st.sampled_from(["view", "metric", "flavor", "descending", "depth",
                         "hot_path", "threshold", "max_rows", "name",
                         "formula", "unit", "database", "workload",
                         "nranks", "seed", "junk"]),
        _JSON_VALUES, max_size=6,
    ), endpoint=st.sampled_from(["render", "sort", "hotpath", "metrics"]))
    def test_wrong_typed_fields(self, app, fields, endpoint):
        """Arbitrary JSON values in known fields: 2xx or structured 4xx."""
        raw = json.dumps(fields).encode()
        if len(raw) > MAX_BODY:
            return
        status, payload = app.handle(
            "POST", f"/sessions/{SID}/{endpoint}", raw
        )
        _no_internal_error(status, payload)

    @settings(max_examples=30, deadline=None)
    @given(extra=st.integers(min_value=1, max_value=4096))
    def test_oversized_payload_413(self, app, extra):
        status, payload = app.handle(
            "POST", "/sessions", b"x" * (MAX_BODY + extra)
        )
        assert status == 413
        assert payload["error"]["code"] == "payload-too-large"

    @settings(max_examples=150, deadline=None)
    @given(method=_METHODS, path=_PATHS)
    def test_random_method_path(self, app, method, path):
        """Arbitrary routes never 5xx; GET/unknown paths give 404/405."""
        # DELETE /sessions/s1 is a *valid* request that would close the
        # shared fixture session; everything else is fair game
        assume((method, path) != ("DELETE", f"/sessions/{SID}"))
        status, payload = app.handle(method, path, b"")
        _no_internal_error(status, payload)

    @settings(max_examples=100, deadline=None)
    @given(method=_METHODS, path=_PATHS, data=st.binary(max_size=128))
    def test_random_everything(self, app, method, path, data):
        assume((method, path) != ("DELETE", f"/sessions/{SID}"))
        status, payload = app.handle(method, path, data)
        _no_internal_error(status, payload)

    @settings(max_examples=50, deadline=None)
    @given(query=st.text(max_size=60))
    def test_random_query_strings(self, app, query):
        status, payload = app.handle(
            "GET", f"/sessions/{SID}/render?" + query, b""
        )
        _no_internal_error(status, payload)


class TestMutationFuzz:
    """Formula/name garbage through the derived-metric endpoint."""

    @settings(max_examples=100, deadline=None)
    @given(name=st.text(max_size=20), formula=st.text(max_size=40))
    def test_arbitrary_formulas(self, app, name, formula):
        status, payload = app.handle(
            "POST", f"/sessions/{SID}/metrics",
            json.dumps({"name": name, "formula": formula}).encode(),
        )
        _no_internal_error(status, payload)
        # successful definitions must remain renderable afterwards
        if status == 201:
            rstatus, rpayload = app.handle(
                "GET", f"/sessions/{SID}/render?view=cct&depth=1", b""
            )
            _no_internal_error(rstatus, rpayload)


def test_session_survives_the_fuzz(app):
    """After every battery above, the session still answers correctly."""
    status, payload = app.handle(
        "GET", f"/sessions/{SID}/render?view=cct&depth=2&metric=%22cycles%22",
        b"",
    )
    assert status == 200
    assert payload["text"].startswith("== Calling Context View: fig1 ==")

#!/usr/bin/env python
"""Mesh-library analysis: the paper's MOAB case study (Figs. 4 & 5).

Two presentations of one profile of the ``mbperf_IMesh`` benchmark model:

* the **Callers View** (bottom-up) answers "who is responsible for the
  L1 misses of the compiler's optimized memset?" — two callers, with
  Sequence_data::create carrying 9.6 of the 9.7 percentage points;
* the **Flat View** tracks MBCore::get_coords' cycles into a loop and
  down a hierarchy of *inlined* code — an inlined sequence-manager find,
  an inlined STL red-black-tree search loop, and the SequenceCompare
  operator inlined into it, which alone accounts for ~19.8% of all L1
  data cache misses.

Run:  python examples/mesh_analysis.py
"""

from __future__ import annotations

import repro
from repro.core.metrics import MetricFlavor
from repro.core.views import NodeCategory
from repro.hpcrun.counters import CYCLES, L1_DCM
from repro.sim.workloads import moab


def main() -> None:
    exp = repro.Experiment.from_program(moab.build())
    session = repro.ViewerSession(exp)
    l1 = exp.metric_id(L1_DCM)
    total_l1 = exp.total(L1_DCM)

    # -- Figure 4: Callers View on L1 misses ---------------------------- #
    print("Callers View, sorted by L1 data cache misses:")
    session.show(repro.ViewKind.CALLERS)
    session.sort_by(L1_DCM)
    memset = session.select("_intel_fast_memset.A")
    session.state().expand(memset)
    print(session.render(columns=[exp.spec(L1_DCM),
                                  exp.spec(L1_DCM, MetricFlavor.EXCLUSIVE)]))
    print()
    print(f"_intel_fast_memset.A: "
          f"{100 * memset.inclusive[l1] / total_l1:.1f}% of all L1 misses "
          f"from {len(memset.children)} callers:")
    for caller in memset.children:
        print(f"  via {caller.name:<34} "
              f"{100 * caller.inclusive[l1] / total_l1:5.1f}%")
    print()

    # -- Figure 5: Flat View through the inlined hierarchy --------------- #
    print("Flat View: MBCore::get_coords, cycles and L1 misses:")
    flat = session.show(repro.ViewKind.FLAT)
    cyc = exp.metric_id(CYCLES)
    gc = flat.find("MBCore::get_coords", category=NodeCategory.PROCEDURE)
    print(f"  {'scope':<44} {'cycles%':>8} {'L1 miss%':>9}")

    def show(node, depth):
        c = 100 * node.inclusive.get(cyc, 0.0) / exp.total(CYCLES)
        m = 100 * node.inclusive.get(l1, 0.0) / total_l1
        print(f"  {'  ' * depth + node.name:<44} {c:>7.1f}% {m:>8.1f}%")
        for child in sorted(node.children,
                            key=lambda n: -n.inclusive.get(cyc, 0.0)):
            show(child, depth + 1)

    show(gc, 0)
    print()
    compare = flat.find("SequenceCompare::operator()")
    print(f"=> the inlined comparison operator alone: "
          f"{100 * compare.inclusive[l1] / total_l1:.1f}% of L1 misses "
          "(the paper reports 19.8%)")


if __name__ == "__main__":
    main()

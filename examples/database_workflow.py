#!/usr/bin/env python
"""Experiment databases: measure once, analyze anywhere.

``hpcprof`` writes experiment databases that ``hpcviewer`` opens later;
this example shows the equivalent round trip here — including the
compact binary format the paper names as ongoing work — and verifies the
views are identical after reload.

Run:  python examples/database_workflow.py
"""

from __future__ import annotations

import os
import tempfile

import repro
from repro.hpcrun.counters import CYCLES
from repro.sim.workloads import s3d


def main() -> None:
    exp = repro.Experiment.from_program(s3d.build())
    workdir = tempfile.mkdtemp(prefix="repro-db-")

    xml_path = os.path.join(workdir, "s3d.xml")
    bin_path = os.path.join(workdir, "s3d.rpdb")
    xml_size = repro.save(exp, xml_path)
    bin_size = repro.save(exp, bin_path)
    print(f"XML database:    {xml_size / 1024:8.1f} KiB  ({xml_path})")
    print(f"binary database: {bin_size / 1024:8.1f} KiB  ({bin_path})")
    print(f"binary is {xml_size / bin_size:.1f}x smaller\n")

    loaded = repro.load(bin_path)
    print(f"reloaded: {loaded!r}\n")

    # identical analysis results after the round trip
    before = exp.hot_path(CYCLES)
    after = loaded.hot_path(CYCLES)
    print("hot path before save:", " -> ".join(n.name for n in before.path))
    print("hot path after load: ", " -> ".join(n.name for n in after.path))
    assert [n.name for n in before.path] == [n.name for n in after.path]
    print("\nviews and analyses are identical after the round trip.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Turbulent-combustion analysis: the paper's S3D case study (Figs. 3 & 6).

Walks the analyst workflow of Section VI on the S3D workload model:

1. open the Calling Context View and press the flame — hot path analysis
   drills through the time-step and Runge-Kutta loops into the chemistry
   (chemkin reaction rates, ~41% of cycles);
2. define the floating-point *waste* and *relative efficiency* derived
   metrics (Section V-D);
3. flatten the Flat View to loop granularity and sort by waste — the
   flux-diffusion loop surfaces first (most waste, ~6% efficiency: a fat
   tuning target), the math-library exp loop second (~39%: already tight);
4. compare against the tuned binary: the transformed flux loop runs 2.9x
   faster.

Run:  python examples/combustion_analysis.py
"""

from __future__ import annotations

import repro
from repro.core.metrics import MetricFlavor
from repro.core.views import NodeCategory
from repro.hpcrun.counters import CYCLES, FLOPS
from repro.sim.workloads import s3d


def main() -> None:
    exp = repro.Experiment.from_program(s3d.build())
    session = repro.ViewerSession(exp)
    total = exp.total(CYCLES)

    # -- 1. hot path on the Calling Context View ------------------------ #
    session.show(repro.ViewKind.CALLING_CONTEXT)
    session.sort_by(CYCLES)
    result = session.expand_hot_path()
    print("hot path (flame) through the calling contexts:")
    for node, value in zip(result.path, result.values):
        print(f"  {node.name:<42} {100 * value / total:5.1f}% inclusive cycles")
    print(f"\n=> bottleneck: {result.hotspot.name} at "
          f"{100 * result.hotspot_value / total:.1f}% of cycles "
          "(the paper reports 41.4%)\n")

    print(session.render(columns=[exp.spec(CYCLES),
                                  exp.spec(CYCLES, MetricFlavor.EXCLUSIVE)]))
    print()

    # -- 2. derived metrics --------------------------------------------- #
    cyc, fl = exp.metric_id(CYCLES), exp.metric_id(FLOPS)
    session.add_derived_metric(
        "fp waste", repro.flop_waste_formula(cyc, fl, s3d.PEAK_FLOPS_PER_CYCLE)
    )
    session.add_derived_metric(
        "efficiency",
        repro.relative_efficiency_formula(cyc, fl, s3d.PEAK_FLOPS_PER_CYCLE),
    )

    # -- 3. flatten + sort by waste -------------------------------------- #
    flat = session.view(repro.ViewKind.FLAT)
    session.flatten()   # files -> procedures
    session.flatten()   # procedures -> loops
    waste = exp.spec("fp waste", MetricFlavor.EXCLUSIVE)
    eff = exp.spec("efficiency", MetricFlavor.EXCLUSIVE)
    loops = sorted(
        (r for r in flat.current_roots() if r.category is NodeCategory.LOOP),
        key=lambda r: flat.value(r, waste),
        reverse=True,
    )
    total_waste = flat.total(exp.spec("fp waste"))
    print("loops ranked by floating-point waste (flattened Flat View):")
    print(f"  {'loop':<36} {'waste share':>12} {'efficiency':>11}")
    for row in loops[:6]:
        print(
            f"  {row.name:<36} "
            f"{100 * flat.value(row, waste) / total_waste:>11.1f}% "
            f"{100 * flat.value(row, eff):>10.1f}%"
        )
    print()

    # -- 4. the tuning payoff --------------------------------------------- #
    tuned = repro.Experiment.from_program(s3d.build(tuned=True))

    def flux_loop_cycles(e: repro.Experiment) -> float:
        view = e.flat_view()
        proc = view.find("compute_diffusive_flux",
                         category=NodeCategory.PROCEDURE)
        loop = next(c for c in proc.children
                    if c.category is NodeCategory.LOOP)
        return loop.inclusive[e.metric_id(CYCLES)]

    before, after = flux_loop_cycles(exp), flux_loop_cycles(tuned)
    print(f"flux-diffusion loop after scalarization/fusion/unroll-and-jam: "
          f"{before / after:.1f}x faster "
          f"({before:.3g} -> {after:.3g} cycles; the paper reports 2.9x)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: profile real Python code and explore all three views.

This example exercises the whole toolkit on *actual measurement* (no
simulation): a small numeric workload is profiled with the deterministic
tracing profiler, its static structure is recovered from the AST, the
profile is correlated into a canonical calling context tree, and the
three complementary views plus hot path analysis are rendered.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import os
import tempfile
import textwrap

import repro

WORKLOAD_SOURCE = '''
"""A toy numeric workload with recursion and shared subroutines."""


def dot(n):
    total = 0.0
    for i in range(n):          # the hot inner loop
        total += i * 1.000001
    return total


def smooth(n):
    acc = 0.0
    for _ in range(4):
        acc += dot(n)
    return acc


def refine(depth, n):
    if depth == 0:
        return dot(n)
    return refine(depth - 1, n) + dot(n // 4)


def simulate(n=4000):
    a = smooth(n)               # dot called from smooth: heavy
    b = refine(3, n // 10)      # dot called from recursion: light
    return a + b
'''


def main() -> None:
    # write the workload to a real file so the source pane works too
    workdir = tempfile.mkdtemp(prefix="repro-quickstart-")
    path = os.path.join(workdir, "workload.py")
    with open(path, "w") as fh:
        fh.write(textwrap.dedent(WORKLOAD_SOURCE))

    namespace: dict = {}
    exec(compile(open(path).read(), path, "exec"), namespace)

    # 1. measure: deterministic call path profile (hpcrun substrate)
    result, profile = repro.trace_call(
        namespace["simulate"], 2000, roots=[workdir]
    )
    print(f"workload result: {result:.1f}")
    print(f"profiled {profile.sample_count} events, "
          f"{len(profile.metrics)} metrics\n")

    # 2. recover structure (hpcstruct substrate) and correlate (hpcprof)
    structure = repro.build_python_structure([path], load_module="workload")
    exp = repro.Experiment.from_profile(profile, structure, name="quickstart")

    # 3. present: the three complementary views
    session = repro.ViewerSession(exp)
    events = exp.spec("line events")

    print(session.render(repro.ViewKind.CALLING_CONTEXT,
                         columns=[events], expand_depth=3))
    print()

    # bottom-up: who is responsible for dot()'s cost?
    print(session.render(repro.ViewKind.CALLERS,
                         columns=[events], expand_depth=2))
    print()

    # static: files -> procedures -> loops
    print(session.render(repro.ViewKind.FLAT, columns=[events],
                         expand_depth=3))
    print()

    # 4. hot path analysis: press the flame
    session.show(repro.ViewKind.CALLING_CONTEXT)
    result = session.expand_hot_path()
    print("hot path:", " -> ".join(n.name for n in result.path))
    print(f"bottleneck: {result.hotspot.name} "
          f"({100 * result.hotspot_value / exp.total('line events'):.1f}% "
          "of line events)\n")

    # 5. the source pane follows the navigation pane
    print("source at the bottleneck:")
    print(session.source_pane(result.hotspot))


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""A scripted hpcviewer session — the TUI driven end to end.

Replays a realistic analysis conversation against the S3D model: open
the Calling Context View, press the flame, pivot to the Callers View for
cache misses, search for the chemistry, define the waste metric and sort
by it, filter out loop scaffolding, and annotate the hottest file.

Run:  python examples/interactive_session.py
(For a live session, run ``InteractiveViewer(exp).cmdloop()`` instead.)
"""

from __future__ import annotations

import sys

import repro
from repro.sim.workloads import s3d
from repro.viewer.tui import InteractiveViewer

SCRIPT = [
    "views",
    "ls",
    "hot",                       # the flame: drill to the bottleneck
    "view callers",              # pivot: who causes the L1 misses?
    "sort PAPI_L1_DCM",
    "view cct",
    "find chemkin*",             # search, ranked by the sorted metric
    "derive waste := 4 * $0 - $1",
    "view flat",
    "flatten",                   # files -> procedures
    "sort waste excl",
    "top 8",
    "ls",
    "annotate diffflux.f90 PAPI_TOT_CYC",
    "advise",
    "quit",
]


def main() -> None:
    exp = repro.Experiment.from_program(s3d.build())
    viewer = InteractiveViewer(exp, stdout=sys.stdout)
    for command in SCRIPT:
        print(f"\n(hpcviewer) {command}")
        if viewer.onecmd(command):
            break


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Load-imbalance identification: the paper's PFLOTRAN case study (Fig. 7).

Simulates an SPMD run of the PFLOTRAN model — groundwater flow in
heterogeneous porous media, where uneven permeability makes per-rank
solver work uneven — then applies the paper's workflow:

1. merge per-rank call path profiles and summarize metrics
   (mean/min/max/stddev) so memory stays O(1) in rank count;
2. sort by total inclusive idleness and press the flame — hot path
   analysis drills into the imbalance context, the main iteration loop
   at timestepper.F90:384;
3. plot the per-rank inclusive cycles at that context: scatter, sorted,
   histogram (the three panels of Figure 7).

Run:  python examples/load_imbalance.py [nranks]
"""

from __future__ import annotations

import sys

import repro
from repro.hpcprof.summarize import imbalance_factor
from repro.hpcrun.counters import CYCLES
from repro.sim.workloads import pflotran
from repro.viewer.charts import render_rank_panel


def main(nranks: int = 64) -> None:
    print(f"simulating PFLOTRAN on {nranks} ranks "
          f"(grid {pflotran.DEFAULT_PARAMS['nx']}x"
          f"{pflotran.DEFAULT_PARAMS['ny']}x{pflotran.DEFAULT_PARAMS['nz']}, "
          f"{pflotran.DEFAULT_PARAMS['species']} species)...")
    exp = repro.spmd_experiment(pflotran.build(), nranks=nranks)

    # -- summarization: 4 statistics instead of nranks values ----------- #
    ids = exp.summarize(CYCLES)
    root = exp.cct.root
    print(f"root cycles over ranks: mean={root.inclusive[ids.mean]:.3e} "
          f"min={root.inclusive[ids.minimum]:.3e} "
          f"max={root.inclusive[ids.maximum]:.3e} "
          f"stddev={root.inclusive[ids.stddev]:.3e}\n")

    # -- hot path on total inclusive idleness --------------------------- #
    session = repro.ViewerSession(exp)
    session.sort_by(pflotran.IDLENESS)
    result = session.expand_hot_path()
    print("hot path on inclusive idleness:")
    for node in result.path:
        print(f"  {node.name}")
    loop = next(n for n in result.path
                if n.name.startswith("loop at timestepper"))
    print(f"\n=> imbalance context: {loop.name} "
          "(the paper's main iteration loop at timestepper.F90:384)\n")

    # -- the Figure 7 panel ----------------------------------------------- #
    vec = exp.rank_vector(loop, CYCLES)
    print(render_rank_panel(
        vec, title=f"inclusive cycles at {loop.name} across {nranks} ranks"
    ))
    print(f"\nimbalance factor (max/mean): {imbalance_factor(vec):.2f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 64)

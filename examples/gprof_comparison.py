#!/usr/bin/env python
"""Why calling context matters: exact views vs a gprof-style baseline.

The paper's related-work section positions hpcviewer against call-graph
profilers.  This example makes the difference concrete on the recursive
program of Figure 1 and on a planted context-dependent kernel: gprof's
uniform-cost-per-call apportionment splits costs by call counts, while
the Callers View attributes each context exactly.

Run:  python examples/gprof_comparison.py
"""

from __future__ import annotations

import repro
from repro.baselines.compare import compare_attribution
from repro.baselines.gprof import GprofProfile
from repro.sim.workloads import fig1


def main() -> None:
    exp = repro.Experiment.from_program(fig1.build())
    mid = exp.metric_id(fig1.METRIC)

    # -- what gprof would have reported ----------------------------------- #
    gprof = GprofProfile.from_cct(exp.cct, mid)
    print("gprof-style output for the Figure 1 program:")
    print(gprof.report())
    print()

    # -- what the Callers View reports ------------------------------------- #
    print("Callers View (exact, recursion-aware):")
    print(repro.render_view(exp.callers_view(), depth=2,
                            metric=exp.spec(fig1.METRIC)))
    print()

    # -- side by side --------------------------------------------------------- #
    rows = compare_attribution(exp.cct, mid)
    print(f"{'arc':<12} {'exact':>8} {'gprof':>8} {'abs err':>8}")
    for row in rows:
        print(f"{row.caller + '->' + row.callee:<12} {row.exact:>8.1f} "
              f"{row.gprof_estimate:>8.1f} {row.absolute_error:>8.1f}")
    print()
    print("gprof splits the recursive procedure g's 9 cost units 3/3/3 by")
    print("call counts; the truth is 6 via f, 5 via the recursive call, 3")
    print("via m — the Callers View's exposed-instance rule gets it right.")


if __name__ == "__main__":
    main()
